//! Integration tests for the scenario subsystem and the DTM policy
//! library: the registry is runnable end-to-end, scenario output is
//! byte-identical at any worker count, and each new policy produces its
//! paper-shaped effect on a hot workload.

use distfront::scenarios::{self, RunOptions};
use distfront::{
    run_app, AppResult, DtmSpec, DvfsPolicy, ExperimentConfig, FetchGatePolicy, MigrationPolicy,
};
use distfront_trace::AppProfile;

/// A short hot run of `cfg` on the test profile.
fn quick(cfg: ExperimentConfig) -> AppResult {
    run_app(&cfg.with_uops(60_000), &AppProfile::test_tiny())
}

#[test]
fn registry_names_at_least_six_runnable_scenarios() {
    let reg = scenarios::registry();
    assert!(reg.len() >= 6, "only {} scenarios", reg.len());
    for s in &reg {
        s.config()
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
    }
}

#[test]
fn scenario_csv_is_byte_identical_across_worker_counts() {
    // A plain scenario and a DTM scenario (policy state is rebuilt per
    // cell, so it must not leak across workers).
    for name in ["drc", "dtm-emergency", "dtm-dvfs"] {
        let s = scenarios::by_name(name).unwrap();
        let opts = RunOptions::smoke().with_uops(30_000);
        let serial = scenarios::to_csv(&[s.run(&opts.with_workers(1))]);
        for workers in [2, 5] {
            let parallel = scenarios::to_csv(&[s.run(&opts.with_workers(workers))]);
            assert_eq!(serial, parallel, "{name} diverged at {workers} workers");
        }
    }
}

#[test]
fn dvfs_lowers_peak_temperature_on_the_hot_profile() {
    let free = quick(ExperimentConfig::baseline());
    let trip = free.temps.processor.abs_max_c - 2.0;
    let managed = quick(
        ExperimentConfig::baseline().with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::with_trip(trip))),
    );
    assert!(
        managed.temps.processor.abs_max_c < free.temps.processor.abs_max_c,
        "DVFS peak {} vs free {}",
        managed.temps.processor.abs_max_c,
        free.temps.processor.abs_max_c
    );
    assert!(
        managed.emergencies >= 1,
        "DVFS armed below the peak never engaged"
    );
    assert!(
        managed.wall_time_s > free.wall_time_s,
        "running slower must cost wall-clock time"
    );
}

#[test]
fn fetch_gating_cools_the_frontend_at_an_ipc_cost() {
    let free = quick(ExperimentConfig::baseline());
    let trip = free.temps.processor.abs_max_c - 2.0;
    let managed = quick(
        ExperimentConfig::baseline().with_dtm(DtmSpec::FetchGate(FetchGatePolicy::with_trip(trip))),
    );
    assert!(
        managed.emergencies >= 1,
        "gate armed below the peak never engaged"
    );
    assert!(
        managed.temps.frontend.abs_max_c < free.temps.frontend.abs_max_c,
        "gated frontend peak {} vs free {}",
        managed.temps.frontend.abs_max_c,
        free.temps.frontend.abs_max_c
    );
    assert!(
        managed.cycles > free.cycles,
        "fetch starvation must cost cycles: {} vs {}",
        managed.cycles,
        free.cycles
    );
}

#[test]
fn migration_narrows_the_partition_temperature_gap() {
    let free = quick(ExperimentConfig::distributed_rename_commit());
    // Well below the natural peak: the policy stays engaged.
    let trip = free.temps.processor.abs_max_c - 12.0;
    let managed = quick(ExperimentConfig::distributed_rename_commit().with_dtm(
        DtmSpec::Migration(MigrationPolicy {
            trip_c: trip,
            margin_c: 0.1,
        }),
    ));
    assert!(managed.throttled_intervals >= 1, "migration never engaged");
    // Migration may not lower the global peak (work lands somewhere), but
    // the RAT/ROB of the hot partition must shed heat relative to the
    // unmanaged run's hottest rename block.
    assert!(
        managed.temps.rat.abs_max_c < free.temps.rat.abs_max_c + 0.5,
        "migration heated the RAT: {} vs {}",
        managed.temps.rat.abs_max_c,
        free.temps.rat.abs_max_c
    );
}

#[test]
fn emergency_throttle_counts_continuous_violations_once() {
    // Integration-level twin of the unit test: a threshold far below the
    // operating range keeps the chip continuously over the limit, which
    // must register as ONE emergency spanning many throttled intervals.
    let r = quick(
        ExperimentConfig::baseline()
            .with_emergency(distfront::EmergencyPolicy::with_threshold(50.0)),
    );
    assert_eq!(
        r.emergencies, 1,
        "a continuous violation is a single emergency"
    );
    assert!(
        r.throttled_intervals > r.emergencies,
        "the single emergency spans every interval: {} throttled",
        r.throttled_intervals
    );
    assert!(r.over_limit_s > 0.0, "violation residency must be recorded");
}

#[test]
fn over_limit_residency_tracks_workload_heat() {
    // The calibrated test profile brushes the 381 K limit (the paper
    // reports peaks right at it); a memory-bound application idles the
    // frontend and never gets near it.
    let hot = quick(ExperimentConfig::baseline());
    assert!(hot.over_limit_s > 0.0, "hot run should brush the limit");
    assert!(hot.over_limit_s <= hot.wall_time_s + 1e-12);
    let cool = run_app(
        &ExperimentConfig::baseline().with_uops(60_000),
        AppProfile::by_name("mcf").unwrap(),
    );
    assert_eq!(cool.over_limit_s, 0.0, "mcf must stay legal");
}

#[test]
fn scenario_bytes_identical_across_workers_for_both_integrators() {
    use distfront::Integrator;
    // The integrator choice changes the numbers, never the determinism:
    // CSV and JSON stay byte-identical at 1, 2 and 5 workers under both
    // the matrix-exponential default and the RK4 reference.
    let s = scenarios::by_name("dtm-dvfs").unwrap();
    for integrator in [Integrator::Expm, Integrator::Rk4] {
        let opts = RunOptions::smoke()
            .with_uops(30_000)
            .with_integrator(integrator);
        let serial = s.run(&opts.with_workers(1));
        let (csv1, json1) = (
            scenarios::to_csv(std::slice::from_ref(&serial)),
            scenarios::to_json(std::slice::from_ref(&serial)),
        );
        for workers in [2, 5] {
            let parallel = s.run(&opts.with_workers(workers));
            assert_eq!(
                csv1,
                scenarios::to_csv(std::slice::from_ref(&parallel)),
                "{integrator:?} CSV diverged at {workers} workers"
            );
            assert_eq!(
                json1,
                scenarios::to_json(std::slice::from_ref(&parallel)),
                "{integrator:?} JSON diverged at {workers} workers"
            );
        }
    }
}
