//! Backward compatibility with DFAT v1: a committed v1 `.dft` fixture
//! must keep decoding under the current reader — as a nominal-only
//! point family — and replaying byte-identically to its pinned CSV row.
//!
//! The fixture pair under `tests/golden/` (`baseline-v1.dft` plus
//! `baseline-v1.csv`) is generated from a live baseline recording,
//! down-encoded through a local copy of the v1 writer (the production
//! encoder always writes the current version — that is the version
//! policy). To regenerate
//! after an *intentional* core-side change (the replay validation
//! fingerprint will say so):
//!
//! ```sh
//! BLESS=1 cargo test -p distfront --test trace_v1_compat
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use distfront::engine::CoupledEngine;
use distfront::scenarios::csv_row;
use distfront::ExperimentConfig;
use distfront_trace::record::{ActivityTrace, PointKey, TRACE_MAGIC};
use distfront_trace::AppProfile;

fn fixture_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// The recording cell the fixture pins: the baseline configuration over
/// gzip at a fixed run length.
fn fixture_cfg() -> ExperimentConfig {
    ExperimentConfig::baseline().with_uops(30_000)
}

fn fixture_app() -> AppProfile {
    *AppProfile::by_name("gzip").unwrap()
}

/// A from-scratch v1 encoder, byte-for-byte the historical layout: the
/// production `encode()` deliberately cannot write v1 anymore, so the
/// fixture generator keeps its own copy. v1 knew no point families — one
/// counter row and one done flag per interval, no capability section.
fn encode_v1(trace: &ActivityTrace) -> Vec<u8> {
    let mut out = Vec::new();
    let u8b = |out: &mut Vec<u8>, v: u8| out.push(v);
    let u16b = |out: &mut Vec<u8>, v: u16| out.extend_from_slice(&v.to_le_bytes());
    let u32b = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
    let u64b = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    let strb = |out: &mut Vec<u8>, s: &str| {
        u32b(out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    };
    let words = |out: &mut Vec<u8>, ws: &[u64]| {
        u32b(out, ws.len() as u32);
        for &w in ws {
            u64b(out, w);
        }
    };
    out.extend_from_slice(&TRACE_MAGIC);
    u32b(&mut out, 1); // TRACE_FORMAT_V1
    strb(&mut out, &trace.meta.workload);
    strb(&mut out, &trace.meta.config);
    u64b(&mut out, trace.meta.processor_fingerprint);
    u64b(&mut out, trace.meta.seed);
    u64b(&mut out, trace.meta.uops_per_app);
    u64b(&mut out, trace.meta.interval_cycles);
    u32b(&mut out, trace.meta.shape.partitions);
    u32b(&mut out, trace.meta.shape.backends);
    u32b(&mut out, trace.meta.shape.tc_banks);
    u8b(&mut out, u8::from(trace.meta.hop));
    u8b(&mut out, u8::from(trace.meta.replay_safe));
    match &trace.meta.dtm {
        None => u8b(&mut out, 0),
        Some(name) => {
            u8b(&mut out, 1);
            strb(&mut out, name);
        }
    }
    words(&mut out, &trace.pilot);
    u32b(&mut out, trace.intervals.len() as u32);
    for rec in &trace.intervals {
        u16b(&mut out, rec.gated_bank.map_or(u16::MAX, u16::from));
        u8b(&mut out, u8::from(rec.nominal().done));
        words(&mut out, &rec.nominal().counters);
    }
    u64b(&mut out, trace.finals.cycles);
    u64b(&mut out, trace.finals.uops);
    u64b(&mut out, trace.finals.tc_hit_rate.to_bits());
    u64b(&mut out, trace.finals.mispredict_rate.to_bits());
    out
}

#[test]
fn committed_v1_fixture_decodes_and_replays_byte_identically() {
    let cfg = fixture_cfg();
    let app = fixture_app();
    let dft_path = fixture_dir().join("baseline-v1.dft");
    let csv_path = fixture_dir().join("baseline-v1.csv");

    if std::env::var_os("BLESS").is_some() {
        let (recorded, _) = CoupledEngine::new(&cfg, &app).run_recorded();
        let (live, trace) = recorded.expect("fixture recording failed");
        std::fs::write(&dft_path, encode_v1(&trace)).unwrap();
        let mut row = csv_row("baseline-v1-fixture", &live);
        row.push('\n');
        std::fs::write(&csv_path, row).unwrap();
        eprintln!("blessed {} and its pinned CSV", dft_path.display());
        return;
    }

    let bytes = std::fs::read(&dft_path).unwrap_or_else(|e| {
        panic!(
            "missing v1 fixture {} ({e}); run with BLESS=1 to create it",
            dft_path.display()
        )
    });
    let trace = ActivityTrace::decode(&bytes).expect("v1 fixture no longer decodes");
    // The current reader presents a v1 stream as a nominal-only point
    // family.
    assert_eq!(trace.meta.version, 1);
    assert_eq!(trace.meta.points, vec![PointKey::Nominal]);
    assert!(trace.meta.replay_safe);
    assert_eq!(trace.meta.capability_id(), "nominal");
    // Re-encoding upgrades: the version policy is "write current, read
    // back to v1", never "write old formats".
    let upgraded = ActivityTrace::decode(&trace.encode()).unwrap();
    assert_eq!(upgraded.meta.version, 3);
    assert_eq!(upgraded.intervals, trace.intervals);

    // And the decoded fixture still drives a replay to the exact bytes
    // pinned when it was recorded.
    let replayed = CoupledEngine::new(&cfg, &app)
        .with_replay(Arc::new(trace))
        .run()
        .expect("v1 fixture no longer replays; if the core changed intentionally, re-bless");
    let pinned = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(
        format!("{}\n", csv_row("baseline-v1-fixture", &replayed)),
        pinned,
        "v1 fixture replay diverged from its pinned CSV"
    );
}
