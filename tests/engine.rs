//! Integration tests for the staged engine refactor: the LU-factored
//! steady-state solve, the parallel sweep executor, and the shared
//! warm-start cache — all exercised through the public API.

use std::sync::Arc;

use distfront::engine::{CoupledEngine, SweepRunner, WarmStartCache};
use distfront::{run_app, run_suite, ExperimentConfig};
use distfront_power::Machine;
use distfront_thermal::{Floorplan, PackageConfig, ThermalNetwork, ThermalSolver};
use distfront_trace::AppProfile;

/// (a) The factored LU steady-state solve matches the single-shot
/// Gaussian-elimination reference to 1e-9 on every paper machine shape.
#[test]
fn lu_steady_state_matches_gaussian_reference() {
    for (parts, backends, banks) in [(1, 4, 2), (1, 4, 3), (2, 4, 2), (2, 4, 3)] {
        let fp = Floorplan::for_machine(Machine::new(parts, backends, banks));
        let solver =
            ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()));
        let nb = solver.network().block_count();
        let power: Vec<f64> = (0..nb).map(|i| 0.05 + 0.07 * (i % 9) as f64).collect();
        let lu = solver.solve_steady(&power);
        let dense = solver.solve_steady_dense(&power);
        for (i, (a, b)) in lu.iter().zip(&dense).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "shape ({parts},{backends},{banks}) node {i}: LU {a} vs Gaussian {b}"
            );
        }
    }
}

/// (b) A parallel sweep of the grid is bit-identical to the serial path,
/// at several worker counts.
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let configs = [
        ExperimentConfig::baseline().with_uops(40_000),
        ExperimentConfig::distributed_rename_commit().with_uops(40_000),
        ExperimentConfig::hopping_and_biasing().with_uops(40_000),
    ];
    let apps = [
        AppProfile::test_tiny(),
        *AppProfile::by_name("gzip").unwrap(),
        *AppProfile::by_name("mcf").unwrap(),
    ];
    let serial = SweepRunner::serial().grid(&configs, &apps);
    for workers in [2, 4, 8] {
        let parallel = SweepRunner::with_threads(workers).grid(&configs, &apps);
        assert_eq!(serial, parallel, "{workers}-worker sweep diverged");
    }
    // And the grid agrees cell-by-cell with the plain serial entry points.
    for (c, cfg) in configs.iter().enumerate() {
        assert_eq!(serial[c], run_suite(cfg, &apps), "config row {c}");
    }
}

/// (c) A warm-start cache hit produces the same `AppResult` as a cold
/// solve.
#[test]
fn warm_start_cache_hit_matches_cold_solve() {
    let cfg = ExperimentConfig::baseline().with_uops(40_000);
    let app = AppProfile::test_tiny();
    let cold = run_app(&cfg, &app);

    let cache = Arc::new(WarmStartCache::new());
    let first = CoupledEngine::new(&cfg, &app)
        .with_warm_cache(Arc::clone(&cache))
        .run()
        .unwrap();
    assert_eq!(cache.len(), 1, "first run should populate the cache");
    assert_eq!(cache.hits(), 0);
    assert_eq!(first, cold);

    let second = CoupledEngine::new(&cfg, &app)
        .with_warm_cache(Arc::clone(&cache))
        .run()
        .unwrap();
    assert_eq!(cache.hits(), 1, "second run should hit the cache");
    assert_eq!(second, cold, "cache hit changed the result");
}

/// The cache discriminates on machine shape and nominal power: different
/// configurations and applications never share a warm start incorrectly.
#[test]
fn warm_start_cache_keys_are_exact() {
    let cache = Arc::new(WarmStartCache::new());
    let apps = [
        AppProfile::test_tiny(),
        *AppProfile::by_name("gzip").unwrap(),
    ];
    let configs = [
        ExperimentConfig::baseline().with_uops(30_000),
        ExperimentConfig::combined().with_uops(30_000),
    ];
    for cfg in &configs {
        for app in &apps {
            let via_cache = CoupledEngine::new(cfg, app)
                .with_warm_cache(Arc::clone(&cache))
                .run()
                .unwrap();
            assert_eq!(via_cache, run_app(cfg, app), "{}/{}", cfg.name, app.name);
        }
    }
    assert_eq!(cache.len() as u64, cache.misses());
}

/// More workers than cells: the runner clamps to the cell count instead of
/// spawning idle threads, and the results stay bit-identical to serial.
#[test]
fn worker_count_clamps_to_cell_count() {
    let configs = [ExperimentConfig::baseline().with_uops(30_000)];
    let apps = [
        AppProfile::test_tiny(),
        *AppProfile::by_name("gzip").unwrap(),
    ];
    let serial = SweepRunner::serial().grid(&configs, &apps);
    // 2 cells, way more threads than cells — including a count far above
    // any machine's parallelism.
    for workers in [3, 64, 1024] {
        let runner = SweepRunner::with_threads(workers);
        assert_eq!(runner.threads(), workers, "requested count is preserved");
        let grid = runner.grid(&configs, &apps);
        assert_eq!(grid, serial, "{workers}-worker sweep of 2 cells diverged");
    }
    // Degenerate single cell under many workers.
    let one = SweepRunner::with_threads(16).grid(&configs, &apps[..1]);
    assert_eq!(one[0][0], run_app(&configs[0], &apps[0]));
}

/// A sweep runner reuses its warm-start cache across `grid` calls.
#[test]
fn sweep_runner_cache_persists_across_grids() {
    let runner = SweepRunner::with_threads(2);
    let configs = [ExperimentConfig::baseline().with_uops(30_000)];
    let apps = [AppProfile::test_tiny()];
    let first = runner.grid(&configs, &apps);
    let hits_before = runner.warm_cache().hits();
    let second = runner.grid(&configs, &apps);
    assert!(runner.warm_cache().hits() > hits_before);
    assert_eq!(first, second);
}

/// The figure tables ride on the sweep executor and keep their row output.
#[test]
fn figure_rows_unchanged_on_the_engine() {
    use distfront::figures::ComparisonData;
    let apps = [AppProfile::test_tiny()];
    let cfgs = [ExperimentConfig::distributed_rename_commit()];
    let parallel = ComparisonData::collect(&apps, &cfgs, 40_000);
    let serial = ComparisonData::collect_with(&SweepRunner::serial(), &apps, &cfgs, 40_000);
    let pr = parallel.reduction_rows();
    let sr = serial.reduction_rows();
    assert_eq!(pr, sr);
    assert_eq!(pr[0].label, "drc");
    assert_eq!(pr[0].values.len(), 10);
}

/// (d) The default (matrix-exponential) engine and the RK4 reference
/// engine agree on the physics: same committed work, temperatures within
/// the RK4 integrator's own error band.
#[test]
fn expm_and_rk4_engines_agree_closely() {
    use distfront::Integrator;
    let app = AppProfile::test_tiny();
    let expm = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_integrator(Integrator::Expm),
        &app,
    );
    let rk4 = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_integrator(Integrator::Rk4),
        &app,
    );
    assert_eq!(expm.uops, rk4.uops);
    assert!(
        (expm.temps.processor.abs_max_c - rk4.temps.processor.abs_max_c).abs() < 0.1,
        "peak: expm {} vs rk4 {}",
        expm.temps.processor.abs_max_c,
        rk4.temps.processor.abs_max_c
    );
    assert!((expm.temps.processor.average_c - rk4.temps.processor.average_c).abs() < 0.1);
    assert!((expm.avg_power_w - rk4.avg_power_w).abs() / rk4.avg_power_w < 1e-3);
}

/// (e) A warm start whose leakage↔temperature fixed point diverges is an
/// error, and the non-converged state never enters the shared cache.
#[test]
fn non_converged_warm_start_is_an_error_and_never_cached() {
    use distfront::engine::{EngineCx, EngineError, Stage, WarmStartStage};
    use distfront::engine::{IntervalLoopStage, PilotStage};
    use distfront_power::LeakageModel;

    /// Installs a leakage model whose feedback gain exceeds one with no
    /// emergency cap: every fixed-point iteration heats the chip further,
    /// so the warm start can never settle.
    struct DivergentLeakage;
    impl Stage for DivergentLeakage {
        fn name(&self) -> &'static str {
            "divergent-leakage"
        }
        fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
            cx.model.set_leakage_model(LeakageModel {
                ratio_at_ambient: 6.0,
                doubling_celsius: 4.0,
                emergency_c: f64::MAX,
                ..LeakageModel::paper()
            });
            Ok(())
        }
    }

    let cfg = ExperimentConfig::baseline().with_uops(30_000);
    let app = AppProfile::test_tiny();
    let cache = Arc::new(WarmStartCache::new());
    let err = CoupledEngine::new(&cfg, &app)
        .with_stages(vec![
            Box::new(PilotStage),
            Box::new(DivergentLeakage),
            Box::new(WarmStartStage::with_cache(Arc::clone(&cache))),
            Box::new(IntervalLoopStage),
        ])
        .run()
        .unwrap_err();
    assert!(
        matches!(err, EngineError::NotConverged(_)),
        "expected NotConverged, got {err:?}"
    );
    assert!(
        cache.is_empty(),
        "a non-converged warm start poisoned the shared cache"
    );

    // The same pipeline with the stock leakage model converges and caches.
    let ok = CoupledEngine::new(&cfg, &app)
        .with_warm_cache(Arc::clone(&cache))
        .run()
        .unwrap();
    assert_eq!(cache.len(), 1);
    assert_eq!(ok, run_app(&cfg, &app));
}
