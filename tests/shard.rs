//! Multi-process sharding: partition coverage, merge-by-index equality
//! against serial runs (error cells included), cross-process
//! byte-identity for every registered scenario at 1/2/3 worker
//! processes, and the coordinator's re-queue path under a worker
//! SIGKILLed mid-shard.

use std::path::PathBuf;

use distfront::engine::{SweepReport, SweepRunner};
use distfront::job::{JobEnv, JobSpec, StatusCode};
use distfront::shard::{partition, ShardRunner, ShardSpec};
use distfront::{scenarios, ExperimentConfig};
use distfront_power::LeakageModel;
use distfront_trace::{AppProfile, Workload};

/// The built `distfront-scenarios` binary — Cargo builds it for this
/// integration test and exports its path.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_distfront-scenarios")
}

/// A fresh per-test state directory: tests share one process (and pid),
/// so the name must carry the test, not just the pid.
fn test_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("distfront-shard-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The 2×3 fault-tolerance grid: exactly cell (1, 0) — the uncapped
/// hot profile — fails to converge, so merges must carry error cells.
fn faulty_grid() -> (Vec<ExperimentConfig>, Vec<Workload>) {
    let mut uncapped = ExperimentConfig::baseline()
        .with_uops(40_000)
        .with_leakage(LeakageModel {
            emergency_c: f64::MAX,
            ..LeakageModel::paper()
        });
    uncapped.name = "uncapped-leakage";
    (
        vec![ExperimentConfig::baseline().with_uops(40_000), uncapped],
        vec![
            Workload::Single(AppProfile::test_tiny()),
            Workload::Single(*AppProfile::by_name("gzip").unwrap()),
            Workload::Single(*AppProfile::by_name("mcf").unwrap()),
        ],
    )
}

mod partition_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// For arbitrary grid sizes and shard counts the ranges are
        /// contiguous, ordered, and cover every cell exactly once.
        #[test]
        fn ranges_cover_every_cell_exactly_once(
            cells in 0usize..240,
            shards in 1usize..18,
        ) {
            let ranges = partition(cells, shards);
            prop_assert_eq!(ranges.len(), shards);
            let mut next = 0;
            for range in &ranges {
                prop_assert!(range.start == next, "gap or overlap at {}", next);
                prop_assert!(range.end >= range.start);
                next = range.end;
            }
            prop_assert!(next == cells, "ranges must end at the grid size");
            // Balanced: sizes differ by at most one, larger first.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            prop_assert!(max - min <= 1);
            let mut sorted = sizes.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert!(sizes == sorted, "larger ranges must come first");
            // ShardSpec::range agrees with the full partition.
            for (i, range) in ranges.iter().enumerate() {
                let spec = ShardSpec { index: i, of: shards };
                prop_assert_eq!(&spec.range(cells), range);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Merging shard slices by grid index reconstructs the serial
        /// report exactly — error cells included — for any shard count
        /// and any shard completion order.
        #[test]
        fn shuffled_shard_merge_equals_the_serial_report(
            shards in 1usize..9,
            rot in 0usize..9,
        ) {
            let (serial, cells) = serial_cells();
            let mut slices: Vec<Vec<_>> = partition(cells.len(), shards)
                .into_iter()
                .map(|r| cells[r].to_vec())
                .collect();
            // "Shuffled": rotate and reverse the shard completion order.
            slices.rotate_left(rot % shards);
            slices.reverse();
            let merged =
                SweepReport::assemble(2, 3, slices.into_iter().flatten()).unwrap();
            prop_assert_eq!(&merged, serial);
        }
    }

    /// The serial faulty-grid run, computed once: per-shard cell slices
    /// are bit-identical to serial cells (pinned by the engine's own
    /// tests), so merge properties need no engine re-runs per case.
    fn serial_cells() -> (
        &'static SweepReport,
        &'static [distfront::engine::CellOutcome],
    ) {
        use std::sync::OnceLock;
        static SERIAL: OnceLock<(SweepReport, Vec<distfront::engine::CellOutcome>)> =
            OnceLock::new();
        let (report, cells) = SERIAL.get_or_init(|| {
            let (cfgs, workloads) = faulty_grid();
            let runner = SweepRunner::serial();
            let cells = runner.try_cells(&cfgs, &workloads, 0..6);
            let report = SweepReport::assemble(2, 3, cells.clone()).unwrap();
            (report, cells)
        });
        (report, cells)
    }
}

/// Per-shard engine runs (not slices of one run) reassemble into the
/// serial report: the worker-side `try_cells` contract across process
/// boundaries, error cell included.
#[test]
fn per_shard_engine_runs_merge_into_the_serial_report() {
    let (cfgs, workloads) = faulty_grid();
    let serial = SweepRunner::serial().try_cells(&cfgs, &workloads, 0..6);
    let serial = SweepReport::assemble(2, 3, serial).unwrap();
    assert_eq!(serial.failed(), 1);
    for shards in [2, 3, 5] {
        let mut slices: Vec<_> = partition(6, shards)
            .into_iter()
            .map(|r| SweepRunner::serial().try_cells(&cfgs, &workloads, r))
            .collect();
        slices.reverse();
        let merged = SweepReport::assemble(2, 3, slices.into_iter().flatten()).unwrap();
        assert_eq!(merged, serial, "{shards}-shard merge diverged");
    }
}

/// The acceptance gate: for every registered scenario (plus the
/// all-cells-fail fault-injection one), the multi-process merged report
/// is byte-identical to an in-process serial run at 1, 2 and 3 worker
/// processes — rows and failure lines both.
#[test]
fn every_scenario_is_byte_identical_across_1_2_3_processes() {
    let mut names: Vec<&str> = scenarios::registry().iter().map(|s| s.name).collect();
    names.push(scenarios::fault_injection().name);
    for name in names {
        let spec = JobSpec::scenario(name).with_smoke(true).with_uops(12_000);
        let serial = spec
            .clone()
            .with_workers(1)
            .execute(&JobEnv::default(), |_| {})
            .unwrap();
        let expected_status = serial.status();
        for processes in 1..=3usize {
            let dir = test_dir(&format!("grid-{name}-{processes}"));
            let outcome = ShardRunner::new(spec.clone(), processes)
                .with_dir(&dir)
                .with_worker(worker_bin())
                .run()
                .unwrap();
            assert_eq!(
                outcome.csv_rows,
                serial.csv_rows(),
                "{name} at {processes} processes: rows diverged"
            );
            assert_eq!(
                outcome.failures,
                serial.failure_lines(),
                "{name} at {processes} processes: failure lines diverged"
            );
            assert_eq!(outcome.status, expected_status, "{name} at {processes}");
            assert_eq!(outcome.failed_shards, Vec::<usize>::new());
            assert!(
                outcome.attempts.iter().all(|&a| a == 1),
                "{name} at {processes}: unexpected retries {:?}",
                outcome.attempts
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A worker SIGKILLed mid-shard is re-queued and the final merged rows
/// are byte-identical to an undisturbed run — the satellite
/// fault-injection contract, process granularity.
#[test]
fn sigkilled_worker_is_requeued_and_merge_stays_byte_identical() {
    let spec = JobSpec::scenario("baseline")
        .with_smoke(true)
        .with_uops(12_000);
    let serial = spec
        .clone()
        .with_workers(1)
        .execute(&JobEnv::default(), |_| {})
        .unwrap();

    let dir = test_dir("kill-requeue");
    std::fs::create_dir_all(&dir).unwrap();
    // Arm the kill hook for shard 1 of 3: its worker removes the marker,
    // computes its cells, then SIGKILLs itself *before persisting* — so
    // the first attempt leaves no artifact and the retry (marker gone)
    // completes cleanly.
    std::fs::write(dir.join("shard-001.kill"), b"").unwrap();
    let outcome = ShardRunner::new(spec, 3)
        .with_dir(&dir)
        .with_worker(worker_bin())
        .run()
        .unwrap();
    assert_eq!(outcome.status, StatusCode::Ok);
    assert_eq!(
        outcome.attempts,
        vec![1, 2, 1],
        "exactly the killed shard retried"
    );
    assert_eq!(outcome.failed_shards, Vec::<usize>::new());
    assert_eq!(outcome.csv_rows, serial.csv_rows());
    assert_eq!(outcome.failures, serial.failure_lines());
    let _ = std::fs::remove_dir_all(&dir);
}

/// With retries exhausted a dead shard is reported — not an error —
/// and every surviving shard's cells are still merged, under the
/// distinct `shard-failed` status the CLI maps to exit 5.
#[test]
fn dead_shard_after_retries_reports_shard_failed_and_keeps_survivors() {
    let spec = JobSpec::scenario("baseline")
        .with_smoke(true)
        .with_uops(12_000);
    let serial = spec
        .clone()
        .with_workers(1)
        .execute(&JobEnv::default(), |_| {})
        .unwrap();
    let serial_rows = serial.csv_rows();

    let dir = test_dir("shard-failed");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("shard-002.kill"), b"").unwrap();
    let outcome = ShardRunner::new(spec, 3)
        .with_retries(0)
        .with_dir(&dir)
        .with_worker(worker_bin())
        .run()
        .unwrap();
    assert_eq!(outcome.status, StatusCode::ShardFailed);
    assert_eq!(outcome.failed_shards, vec![2]);
    assert_eq!(outcome.attempts, vec![1, 1, 1], "retries were disabled");
    // The smoke suite has 4 cells; shard 2 of 3 owned exactly the last.
    assert_eq!(outcome.cells, 4);
    assert_eq!(outcome.merged, 3);
    assert_eq!(outcome.csv_rows, serial_rows[..3].to_vec());
    assert_eq!(StatusCode::ShardFailed.code(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}
