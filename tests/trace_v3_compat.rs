//! Forward-pinning the DFAT v3 writer: a committed v3 `.dft` fixture —
//! the *current* write format, whose delta-encoded point rows were until
//! now only pinned implicitly via encode/decode round-trips — must keep
//! decoding, must re-encode to the **exact committed bytes** (so any
//! accidental writer change trips this test, not just reader changes),
//! and must replay byte-identically to its pinned CSV row.
//!
//! The fixture pair under `tests/golden/` (`dvfs-v3.dft` plus
//! `dvfs-v3.csv`) is the same recording cell the v2 fixture pins,
//! written by the production encoder. To regenerate after an
//! *intentional* core- or format-side change:
//!
//! ```sh
//! BLESS=1 cargo test -p distfront --test trace_v3_compat
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use distfront::dtm::DvfsPolicy;
use distfront::engine::CoupledEngine;
use distfront::scenarios::csv_row;
use distfront::{DtmSpec, ExperimentConfig};
use distfront_trace::record::{ActivityTrace, PointKey, TRACE_FORMAT_VERSION};
use distfront_trace::AppProfile;

fn fixture_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// The recording cell the fixture pins — deliberately the same cell as
/// the v2 fixture (paper-limit global DVFS over gzip): a two-point
/// family, so every interval carries the non-nominal row that v3
/// delta-encodes. Same physics, three container versions on disk.
fn fixture_cfg() -> ExperimentConfig {
    ExperimentConfig::baseline()
        .with_uops(30_000)
        .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::paper_limit()))
}

fn fixture_app() -> AppProfile {
    *AppProfile::by_name("gzip").unwrap()
}

#[test]
fn committed_v3_fixture_reencodes_and_replays_byte_identically() {
    let cfg = fixture_cfg();
    let app = fixture_app();
    let dft_path = fixture_dir().join("dvfs-v3.dft");
    let csv_path = fixture_dir().join("dvfs-v3.csv");

    if std::env::var_os("BLESS").is_some() {
        let (recorded, _) = CoupledEngine::new(&cfg, &app).run_recorded();
        let (live, trace) = recorded.expect("fixture recording failed");
        assert!(
            trace.meta.points.len() > 1,
            "fixture must be multi-point to pin the delta-row layout"
        );
        std::fs::write(&dft_path, trace.encode()).unwrap();
        let mut row = csv_row("dvfs-v3-fixture", &live);
        row.push('\n');
        std::fs::write(&csv_path, row).unwrap();
        eprintln!("blessed {} and its pinned CSV", dft_path.display());
        return;
    }

    let bytes = std::fs::read(&dft_path).unwrap_or_else(|e| {
        panic!(
            "missing v3 fixture {} ({e}); run with BLESS=1 to create it",
            dft_path.display()
        )
    });
    let trace = ActivityTrace::decode(&bytes).expect("v3 fixture no longer decodes");
    assert_eq!(trace.meta.version, TRACE_FORMAT_VERSION);
    let dvfs = DvfsPolicy::paper_limit();
    assert_eq!(
        trace.meta.points,
        vec![
            PointKey::Nominal,
            PointKey::dvfs(dvfs.f_scale, dvfs.v_scale)
        ]
    );
    assert!(trace.meta.replay_safe);

    // The writer pin: v3 *is* the current format, so re-encoding the
    // decoded trace must reproduce the committed bytes exactly. The v1
    // and v2 fixtures cannot pin this — their re-encodes upgrade — which
    // is exactly the gap this fixture closes.
    let reencoded = trace.encode();
    assert_eq!(
        reencoded, bytes,
        "the production encoder no longer writes the committed v3 bytes; \
         if the format changed intentionally, bump the version and re-bless"
    );
    let roundtrip = ActivityTrace::decode(&reencoded).unwrap();
    assert_eq!(roundtrip.meta.version, TRACE_FORMAT_VERSION);
    assert_eq!(roundtrip.intervals, trace.intervals);
    assert_eq!(roundtrip.meta.capability_id(), trace.meta.capability_id());

    // And the decoded fixture still drives a replay to the exact bytes
    // pinned when it was recorded.
    let replayed = CoupledEngine::new(&cfg, &app)
        .with_replay(Arc::new(trace))
        .run()
        .expect("v3 fixture no longer replays; if the core changed intentionally, re-bless");
    let pinned = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(
        format!("{}\n", csv_row("dvfs-v3-fixture", &replayed)),
        pinned,
        "v3 fixture replay diverged from its pinned CSV"
    );
}
