//! Integration tests for the fault-tolerant sweep executor: a failing
//! cell is an `Err` outcome — never a sweep-wide abort — surviving cells
//! stay bit-identical at any worker count, and the sharded warm-start
//! cache's hit/miss accounting is invariant under its shard count.

use std::sync::{Arc, Mutex};

use distfront::engine::{EngineError, SweepRunner, WarmStartCache};
use distfront::{run_app, try_run_app, ExperimentConfig};
use distfront_power::{LeakageModel, Machine};
use distfront_trace::AppProfile;

/// The paper's leakage calibration with the emergency cap removed: the
/// model caps the exponential at 381 K precisely because silicon past it
/// is in thermal runaway. Without the cap, the hot calibrated `tiny`
/// profile (which brushes the limit) has a leakage↔temperature feedback
/// gain above one and its warm start diverges, while cooler applications
/// (gzip, mcf) still converge — an app-selective failure from honest
/// physics, not a mock.
fn uncapped_leakage() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::baseline()
        .with_uops(40_000)
        .with_leakage(LeakageModel {
            emergency_c: f64::MAX,
            ..LeakageModel::paper()
        });
    cfg.name = "uncapped-leakage";
    cfg
}

fn faulty_grid() -> (Vec<ExperimentConfig>, Vec<AppProfile>) {
    (
        vec![
            ExperimentConfig::baseline().with_uops(40_000),
            uncapped_leakage(),
        ],
        vec![
            AppProfile::test_tiny(),
            *AppProfile::by_name("gzip").unwrap(),
            *AppProfile::by_name("mcf").unwrap(),
        ],
    )
}

/// One divergent cell in a 2×3 grid: the other five cells succeed with
/// values bit-identical to their standalone runs, at 1, 2 and 5 workers.
#[test]
fn one_failing_cell_spares_the_other_five() {
    let (cfgs, apps) = faulty_grid();
    let serial = SweepRunner::serial().try_grid(&cfgs, &apps);
    assert_eq!(serial.shape(), (2, 3));
    assert_eq!(serial.failed(), 1, "exactly the hot uncapped cell fails");
    let failing = serial.cell(1, 0);
    assert_eq!(failing.label(), "uncapped-leakage/tiny");
    assert!(
        matches!(failing.result, Err(EngineError::NotConverged(_))),
        "expected NotConverged, got {:?}",
        failing.result
    );
    // Every surviving cell matches its standalone serial run exactly.
    for (c, cfg) in cfgs.iter().enumerate() {
        for (a, app) in apps.iter().enumerate() {
            if (c, a) == (1, 0) {
                continue;
            }
            assert_eq!(
                serial.cell(c, a).result.as_ref().unwrap(),
                &run_app(cfg, app),
                "cell [{c}][{a}]"
            );
        }
    }
    // Parallel reports are bit-identical to serial, error cell included.
    for workers in [2, 5] {
        let parallel = SweepRunner::with_threads(workers).try_grid(&cfgs, &apps);
        assert_eq!(serial, parallel, "{workers}-worker report diverged");
    }
}

/// The cache key includes the leakage model: the baseline and uncapped
/// configurations share machine shape and nominal power, so a
/// shape+power-only key would hand the uncapped cell the baseline's warm
/// start (or worse, scheduling-dependent results). It must miss, diverge
/// and leave the cache unpoisoned.
#[test]
fn leakage_model_is_part_of_the_warm_cache_key() {
    let (cfgs, apps) = faulty_grid();
    let runner = SweepRunner::serial();
    let first = runner.try_grid(&cfgs, &apps);
    // 6 cells, 6 distinct (leakage, nominal) keys attempted, one failed:
    // 5 cached entries and no hits.
    assert_eq!(runner.warm_cache().len(), 5);
    assert_eq!(runner.warm_cache().misses(), 6);
    assert_eq!(runner.warm_cache().hits(), 0);
    // A second sweep over the same grid hits all five cached warm starts,
    // re-fails the divergent cell identically, and changes nothing.
    let second = runner.try_grid(&cfgs, &apps);
    assert_eq!(runner.warm_cache().hits(), 5);
    assert_eq!(first, second);
}

/// The strict path keeps its contract: the old panicking `grid` surface
/// lives behind an explicit `.strict()` and names the failed cell.
#[test]
#[should_panic(expected = "engine failed for uncapped-leakage/tiny")]
fn strict_grid_panics_naming_the_failed_cell() {
    let (cfgs, apps) = faulty_grid();
    SweepRunner::serial().try_grid(&cfgs, &apps).strict();
}

/// The streaming callback sees the failure too, in completion order, and
/// a partial consumer (e.g. the CLI's incremental CSV) can keep the five
/// good cells.
#[test]
fn on_cell_streams_failures_alongside_results() {
    let (cfgs, apps) = faulty_grid();
    let seen = Arc::new(Mutex::new(Vec::<(String, bool)>::new()));
    let sink = Arc::clone(&seen);
    let report = SweepRunner::with_threads(3)
        .with_on_cell(move |cell| {
            sink.lock()
                .unwrap()
                .push((cell.label(), cell.result.is_ok()));
        })
        .try_grid(&cfgs, &apps);
    let mut streamed = seen.lock().unwrap().clone();
    streamed.sort();
    assert_eq!(streamed.len(), 6, "every cell streamed exactly once");
    assert_eq!(
        streamed.iter().filter(|(_, ok)| !ok).count(),
        1,
        "the one failure streamed"
    );
    assert_eq!(report.failed(), 1);
    assert_eq!(report.warm_hits(), 0, "six distinct keys, no hits");
}

/// `try_run_app` is the single-cell twin of the per-cell semantics.
#[test]
fn try_run_app_surfaces_the_error_run_app_would_panic_on() {
    let err = try_run_app(&uncapped_leakage(), &AppProfile::test_tiny()).unwrap_err();
    assert!(matches!(err, EngineError::NotConverged(_)));
    let ok = try_run_app(&uncapped_leakage(), AppProfile::by_name("mcf").unwrap()).unwrap();
    assert_eq!(
        ok,
        run_app(&uncapped_leakage(), AppProfile::by_name("mcf").unwrap())
    );
}

mod shard_invariance {
    use super::*;
    use proptest::prelude::*;

    /// Replays a key-index sequence against a cache, returning
    /// (hits, misses, stored).
    fn replay(cache: &WarmStartCache, machine: Machine, seq: &[usize]) -> (u64, u64, usize) {
        for &k in seq {
            let nominal: Vec<f64> = (0..machine.block_count())
                .map(|b| 0.5 + k as f64 + 1e-3 * b as f64)
                .collect();
            let (state, _) = cache
                .get_or_compute(machine, &LeakageModel::paper(), &nominal, || {
                    Ok::<_, EngineError>(vec![k as f64])
                })
                .unwrap();
            assert_eq!(state.as_slice(), &[k as f64], "wrong state for key {k}");
        }
        (cache.hits(), cache.misses(), cache.len())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Shard count is a pure concurrency knob: for any lookup sequence
        /// the hit/miss totals and the stored-entry count are identical at
        /// every shard count, and equal to the first-occurrence counts.
        #[test]
        fn shard_count_never_changes_hit_miss_totals(
            seq in proptest::collection::vec(0usize..12, 1..48),
        ) {
            let machine = Machine::new(2, 4, 3);
            let mut distinct = seq.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let expected = (
                (seq.len() - distinct.len()) as u64,
                distinct.len() as u64,
                distinct.len(),
            );
            for shards in [1, 2, 3, 7, 16, 64] {
                let cache = WarmStartCache::with_shards(shards);
                prop_assert_eq!(cache.shard_count(), shards);
                let got = replay(&cache, machine, &seq);
                prop_assert!(
                    got == expected,
                    "shards = {shards}: got {got:?}, expected {expected:?}"
                );
            }
        }
    }
}
