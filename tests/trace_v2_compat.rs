//! Backward compatibility with DFAT v2: a committed v2 `.dft` fixture —
//! a *multi-point* recording, since raw non-nominal rows are exactly
//! what v3 re-encodes as deltas — must keep decoding under the current
//! reader and replaying byte-identically to its pinned CSV row.
//!
//! The fixture pair under `tests/golden/` (`dvfs-v2.dft` plus
//! `dvfs-v2.csv`) is generated from a live global-DVFS recording,
//! down-encoded through a local copy of the v2 writer (the production
//! encoder always writes the current version — that is the version
//! policy). To regenerate after an *intentional* core-side change (the
//! replay validation fingerprint will say so):
//!
//! ```sh
//! BLESS=1 cargo test -p distfront --test trace_v2_compat
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use distfront::dtm::DvfsPolicy;
use distfront::engine::CoupledEngine;
use distfront::scenarios::csv_row;
use distfront::{DtmSpec, ExperimentConfig};
use distfront_trace::codec::Writer;
use distfront_trace::record::{ActivityTrace, PointKey, TRACE_FORMAT_V2, TRACE_MAGIC};
use distfront_trace::AppProfile;

fn fixture_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// The recording cell the fixture pins: the paper-limit global-DVFS
/// configuration over gzip at a fixed run length — a two-point family
/// (nominal + one DVFS point), so every interval carries a non-nominal
/// row that v2 stored raw and v3 stores as deltas.
fn fixture_cfg() -> ExperimentConfig {
    ExperimentConfig::baseline()
        .with_uops(30_000)
        .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::paper_limit()))
}

fn fixture_app() -> AppProfile {
    *AppProfile::by_name("gzip").unwrap()
}

/// A from-scratch v2 encoder, byte-for-byte the historical layout: the
/// production `encode()` deliberately cannot write v2 anymore, so the
/// fixture generator keeps its own copy. v2 introduced the tagged
/// operating-point section, but still stored every point row as raw
/// count-prefixed `u64` words.
fn encode_v2(trace: &ActivityTrace) -> Vec<u8> {
    let mut w = Writer::new();
    w.header(&TRACE_MAGIC, TRACE_FORMAT_V2);
    w.str(&trace.meta.workload);
    w.str(&trace.meta.config);
    w.u64(trace.meta.processor_fingerprint);
    w.u64(trace.meta.seed);
    w.u64(trace.meta.uops_per_app);
    w.u64(trace.meta.interval_cycles);
    w.u32(trace.meta.shape.partitions);
    w.u32(trace.meta.shape.backends);
    w.u32(trace.meta.shape.tc_banks);
    w.u8(u8::from(trace.meta.hop));
    w.u8(u8::from(trace.meta.replay_safe));
    match &trace.meta.dtm {
        None => w.u8(0),
        Some(name) => {
            w.u8(1);
            w.str(name);
        }
    }
    w.u32(trace.meta.points.len() as u32);
    for key in &trace.meta.points {
        // The tagged point layout (unchanged in v3).
        match key {
            PointKey::Nominal => w.u8(0),
            PointKey::Dvfs { f_bits, v_bits } => {
                w.u8(1);
                w.u64(*f_bits);
                w.u64(*v_bits);
            }
            PointKey::FetchGate { open, period } => {
                w.u8(2);
                w.u32(*open);
                w.u32(*period);
            }
            PointKey::MigrateTo(p) => {
                w.u8(3);
                w.u32(*p);
            }
        }
    }
    w.words(&trace.pilot);
    w.u32(trace.intervals.len() as u32);
    for rec in &trace.intervals {
        w.u16(rec.gated_bank.map_or(u16::MAX, u16::from));
        for point in &rec.points {
            w.u8(u8::from(point.done));
            w.words(&point.counters);
        }
    }
    w.u64(trace.finals.cycles);
    w.u64(trace.finals.uops);
    w.f64(trace.finals.tc_hit_rate);
    w.f64(trace.finals.mispredict_rate);
    w.into_vec()
}

#[test]
fn committed_v2_fixture_decodes_and_replays_byte_identically() {
    let cfg = fixture_cfg();
    let app = fixture_app();
    let dft_path = fixture_dir().join("dvfs-v2.dft");
    let csv_path = fixture_dir().join("dvfs-v2.csv");

    if std::env::var_os("BLESS").is_some() {
        let (recorded, _) = CoupledEngine::new(&cfg, &app).run_recorded();
        let (live, trace) = recorded.expect("fixture recording failed");
        assert!(
            trace.meta.points.len() > 1,
            "fixture must be multi-point to pin the raw-row layout"
        );
        std::fs::write(&dft_path, encode_v2(&trace)).unwrap();
        let mut row = csv_row("dvfs-v2-fixture", &live);
        row.push('\n');
        std::fs::write(&csv_path, row).unwrap();
        eprintln!("blessed {} and its pinned CSV", dft_path.display());
        return;
    }

    let bytes = std::fs::read(&dft_path).unwrap_or_else(|e| {
        panic!(
            "missing v2 fixture {} ({e}); run with BLESS=1 to create it",
            dft_path.display()
        )
    });
    let trace = ActivityTrace::decode(&bytes).expect("v2 fixture no longer decodes");
    assert_eq!(trace.meta.version, 2);
    let dvfs = DvfsPolicy::paper_limit();
    assert_eq!(
        trace.meta.points,
        vec![
            PointKey::Nominal,
            PointKey::dvfs(dvfs.f_scale, dvfs.v_scale)
        ]
    );
    assert!(trace.meta.replay_safe);
    // Re-encoding upgrades to v3 without touching the payload — the
    // delta rows are a pure transport change — and shrinks the stream,
    // which is the whole point of the format bump.
    let reencoded = trace.encode();
    assert!(
        reencoded.len() < bytes.len(),
        "v3 re-encode ({} B) is not smaller than the v2 fixture ({} B)",
        reencoded.len(),
        bytes.len()
    );
    let upgraded = ActivityTrace::decode(&reencoded).unwrap();
    assert_eq!(upgraded.meta.version, 3);
    assert_eq!(upgraded.intervals, trace.intervals);
    assert_eq!(
        upgraded.meta.capability_id(),
        trace.meta.capability_id(),
        "re-encoding must not change capability identity"
    );

    // And the decoded fixture still drives a replay to the exact bytes
    // pinned when it was recorded.
    let replayed = CoupledEngine::new(&cfg, &app)
        .with_replay(Arc::new(trace))
        .run()
        .expect("v2 fixture no longer replays; if the core changed intentionally, re-bless");
    let pinned = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(
        format!("{}\n", csv_row("dvfs-v2-fixture", &replayed)),
        pinned,
        "v2 fixture replay diverged from its pinned CSV"
    );
}
