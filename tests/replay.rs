//! End-to-end tests of the trace record/replay pipeline: byte identity
//! between live, recorded and replayed scenario runs at several worker
//! counts, the per-cell live fallback, and the trace file round trip.

use std::sync::Arc;

use distfront::engine::{CoupledEngine, EngineError, SweepRunner, TraceMode, TraceStore};
use distfront::scenarios::{self, RunOptions};
use distfront::ExperimentConfig;
use distfront_trace::record::PointKey;
use distfront_trace::{ActivityTrace, AppProfile, Workload};

fn opts(workers: usize) -> RunOptions {
    // 30 k uops: past the phased scenarios' 25 k-uop slice, so the phased
    // identity runs below actually cross a phase boundary.
    RunOptions::smoke().with_uops(30_000).with_workers(workers)
}

/// The acceptance contract: a recorded baseline smoke scenario replayed
/// through the `ReplayBackend` produces byte-identical CSV and JSON to
/// the live run, at 1, 2 and 5 workers — and the phased scenarios obey
/// the same contract.
#[test]
fn replayed_scenarios_are_byte_identical_to_live_at_1_2_5_workers() {
    for name in ["baseline", "phased-hot-cold"] {
        let scenario = scenarios::by_name(name).unwrap();
        let live = scenario.run(&opts(2));
        let live_csv = scenarios::to_csv(std::slice::from_ref(&live));
        let live_json = scenarios::to_json(std::slice::from_ref(&live));

        // Recording taps must not change the run.
        let store = Arc::new(TraceStore::new());
        let recorded = scenario.run_traced(&opts(2), TraceMode::Record(Arc::clone(&store)), |_| {});
        assert_eq!(recorded, live, "{name}: recording changed the results");
        assert_eq!(store.len(), live.outcomes().len());

        for workers in [1, 2, 5] {
            let replayed = scenario.run_traced(
                &opts(workers),
                TraceMode::Replay(Arc::clone(&store)),
                |_| {},
            );
            assert_eq!(
                replayed.report.replayed(),
                replayed.outcomes().len(),
                "{name}: not every cell replayed at {workers} workers"
            );
            assert_eq!(
                scenarios::to_csv(std::slice::from_ref(&replayed)),
                live_csv,
                "{name}: CSV diverged at {workers} workers"
            );
            assert_eq!(
                scenarios::to_json(std::slice::from_ref(&replayed)),
                live_json,
                "{name}: JSON diverged at {workers} workers"
            );
        }
    }
}

/// Replaying against an empty (or partial) store falls back to live
/// simulation per cell, with identical results and honest provenance.
#[test]
fn replay_falls_back_to_live_when_traces_are_missing() {
    let scenario = scenarios::by_name("baseline").unwrap();
    let live = scenario.run(&opts(2));
    let empty = Arc::new(TraceStore::new());
    let fallback = scenario.run_traced(&opts(2), TraceMode::Replay(Arc::clone(&empty)), |_| {});
    assert_eq!(fallback, live);
    assert_eq!(fallback.report.replayed(), 0, "nothing could have replayed");
    assert!(empty.is_empty(), "fallback must not record");
}

/// A replaying sweep whose configuration needs an operating point the
/// trace never recorded falls back to live simulation — and the direct
/// engine API reports `ReplayIncompatible` naming both the policy and the
/// missing point instead.
#[test]
fn uncovered_dtm_policies_fall_back_and_name_the_missing_point() {
    use distfront::dtm::DvfsPolicy;
    use distfront::DtmSpec;

    // Record the plain baseline: a nominal-only point family.
    let store = Arc::new(TraceStore::new());
    let cfg = ExperimentConfig::baseline().with_uops(20_000);
    let apps = [AppProfile::test_tiny()];
    let recording = SweepRunner::serial()
        .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
        .try_suite(&cfg, &apps);
    assert!(recording.is_complete());

    // The DVFS study shares the uarch side ("baseline" config name) but
    // needs the clock-scaled operating point, which a nominal-only trace
    // never captured: its cells must run live.
    let dvfs = ExperimentConfig::baseline()
        .with_uops(20_000)
        .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::paper_limit()));
    let replaying = SweepRunner::serial()
        .with_trace_mode(TraceMode::Replay(Arc::clone(&store)))
        .try_suite(&dvfs, &apps);
    assert!(replaying.is_complete());
    assert_eq!(replaying.replayed(), 0);
    assert_eq!(
        replaying.cells()[0].result,
        SweepRunner::serial().try_suite(&dvfs, &apps).cells()[0].result
    );

    // Direct replay of the same pairing is an explicit, named error.
    let trace = store.get("baseline", "tiny", &[PointKey::Nominal]).unwrap();
    let err = CoupledEngine::new(&dvfs, &AppProfile::test_tiny())
        .with_replay(trace)
        .run()
        .unwrap_err();
    match err {
        EngineError::ReplayIncompatible(msg) => {
            assert!(msg.contains("global-dvfs"), "unhelpful message: {msg}");
            assert!(
                msg.contains("dvfs(0.7x0.85)"),
                "missing point not named: {msg}"
            );
        }
        other => panic!("expected ReplayIncompatible, got {other:?}"),
    }
}

/// A power-level DTM policy (the emergency throttle) IS replayable: a
/// trace recorded without DTM drives the throttled sweep, and the result
/// matches the live throttled run bit-for-bit on the unbiased baseline.
#[test]
fn power_level_dtm_sweeps_replay_from_a_nominal_recording() {
    use distfront::emergency::EmergencyPolicy;
    use distfront::DtmSpec;

    let store = Arc::new(TraceStore::new());
    let cfg = ExperimentConfig::baseline().with_uops(20_000);
    let apps = [
        AppProfile::test_tiny(),
        *AppProfile::by_name("gzip").unwrap(),
    ];
    SweepRunner::serial()
        .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
        .try_suite(&cfg, &apps);

    // A trip below ambient guarantees the throttle engages every interval,
    // so this exercises the Throttle action on the replay path, not just
    // Nominal.
    let throttled = ExperimentConfig::baseline()
        .with_uops(20_000)
        .with_dtm(DtmSpec::Emergency(EmergencyPolicy::with_threshold(40.0)));
    let live = SweepRunner::serial().try_suite(&throttled, &apps);
    let replayed = SweepRunner::serial()
        .with_trace_mode(TraceMode::Replay(Arc::clone(&store)))
        .try_suite(&throttled, &apps);
    assert_eq!(
        replayed.replayed(),
        apps.len(),
        "throttle cells must replay"
    );
    assert_eq!(replayed, live);
    let r = replayed.cells()[0].result.as_ref().unwrap();
    assert!(r.throttled_intervals >= 1, "the throttle never engaged");
}

/// The full core-perturbing DTM ladder replays bit-identically from its
/// own multi-point recordings: DVFS, fetch-gate and migration sweeps
/// record a per-interval operating-point family and replay to the exact
/// live result — the v2 acceptance contract.
#[test]
fn core_perturbing_dtm_ladder_replays_bit_identically() {
    use distfront::dtm::{DvfsPolicy, FetchGatePolicy, MigrationPolicy};
    use distfront::DtmSpec;

    // Trips low enough that every policy actually engages, so the replay
    // exercises the variant points, not just Nominal.
    let ladder: Vec<(&str, ExperimentConfig)> = vec![
        (
            "dvfs",
            ExperimentConfig::baseline()
                .with_uops(30_000)
                .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::with_trip(50.0))),
        ),
        (
            "fetch-gate",
            ExperimentConfig::baseline()
                .with_uops(30_000)
                .with_dtm(DtmSpec::FetchGate(FetchGatePolicy::with_trip(50.0))),
        ),
        (
            "migration",
            ExperimentConfig::distributed_rename_commit()
                .with_uops(30_000)
                .with_dtm(DtmSpec::Migration(MigrationPolicy::with_trip(50.0))),
        ),
    ];
    let apps = [
        AppProfile::test_tiny(),
        *AppProfile::by_name("gzip").unwrap(),
    ];
    for (name, cfg) in &ladder {
        let store = Arc::new(TraceStore::new());
        let live = SweepRunner::serial().try_suite(cfg, &apps);
        let recorded = SweepRunner::serial()
            .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
            .try_suite(cfg, &apps);
        assert_eq!(recorded, live, "{name}: recording perturbed the run");
        assert_eq!(store.len(), apps.len(), "{name}: traces not stored");
        // The policy must have engaged, or this test proves nothing.
        assert!(
            live.cells()
                .iter()
                .any(|c| c.result.as_ref().unwrap().throttled_intervals > 0),
            "{name}: the DTM policy never engaged; lower the trip"
        );
        for workers in [1, 2] {
            let replayed = SweepRunner::with_threads(workers)
                .with_trace_mode(TraceMode::Replay(Arc::clone(&store)))
                .try_suite(cfg, &apps);
            assert_eq!(
                replayed.replayed(),
                apps.len(),
                "{name}: not every cell replayed at {workers} workers"
            );
            assert_eq!(
                replayed, live,
                "{name}: replay diverged at {workers} workers"
            );
        }
    }
}

/// Core-side differences invisible to the shape check are still caught:
/// `bank-hopping` and `bh+ab` share seed, run length, interval, hopping
/// and machine shape, differing only in the trace-cache mapping policy —
/// the processor fingerprint must reject the swap.
#[test]
fn replay_rejects_same_shape_configs_that_differ_elsewhere_in_the_core() {
    let app = AppProfile::test_tiny();
    let bh = ExperimentConfig::bank_hopping().with_uops(20_000);
    let (recorded, _) = CoupledEngine::new(&bh, &app).run_recorded();
    let trace = Arc::new(recorded.unwrap().1);

    let bhab = ExperimentConfig::hopping_and_biasing().with_uops(20_000);
    let err = CoupledEngine::new(&bhab, &app)
        .with_replay(Arc::clone(&trace))
        .run()
        .unwrap_err();
    match err {
        EngineError::ReplayIncompatible(msg) => assert!(
            msg.contains("fingerprint"),
            "expected a fingerprint mismatch, got: {msg}"
        ),
        other => panic!("expected ReplayIncompatible, got {other:?}"),
    }
    // The recording config itself still replays exactly.
    let replayed = CoupledEngine::new(&bh, &app)
        .with_replay(trace)
        .run()
        .unwrap();
    assert_eq!(replayed, distfront::run_app(&bh, &app));
}

/// A DTM policy installed through `with_dtm` (an arbitrary boxed object)
/// taints the recording: it cannot be proven power-level-only, so the
/// trace is marked not replay-safe and replaying it is refused.
#[test]
fn custom_with_dtm_policies_taint_recordings() {
    use distfront::emergency::{EmergencyController, EmergencyPolicy};
    let cfg = ExperimentConfig::baseline().with_uops(20_000);
    let app = AppProfile::test_tiny();
    let ctrl = EmergencyController::new(EmergencyPolicy::with_threshold(40.0));
    let (recorded, _) = CoupledEngine::new(&cfg, &app)
        .with_dtm(Box::new(ctrl))
        .run_recorded();
    let (_, trace) = recorded.unwrap();
    assert!(!trace.meta.replay_safe);
    assert_eq!(trace.meta.dtm.as_deref(), Some("custom"));
    let err = CoupledEngine::new(&cfg, &app)
        .with_replay(Arc::new(trace))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::ReplayIncompatible(_)), "{err:?}");
}

/// Recording sweeps under different DTM specs sharing one config name
/// store *separate* capability families instead of clobbering each other:
/// the nominal-only baseline recording and the fetch-gate recording of the
/// same (config, workload) cell coexist, and lookups pick by coverage.
#[test]
fn record_mode_keys_traces_by_capability_family() {
    use distfront::dtm::FetchGatePolicy;
    use distfront::DtmSpec;
    let store = Arc::new(TraceStore::new());
    let apps = [AppProfile::test_tiny()];

    let base = ExperimentConfig::baseline().with_uops(20_000);
    SweepRunner::serial()
        .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
        .try_suite(&base, &apps);
    let safe = store
        .get("baseline", "tiny", &[PointKey::Nominal])
        .expect("baseline recorded");

    // The fetch-gate study shares the "baseline" config name; recording it
    // adds a second, gate-capable trace under its own capability key.
    let gated = ExperimentConfig::baseline()
        .with_uops(20_000)
        .with_dtm(DtmSpec::FetchGate(FetchGatePolicy::paper_limit()));
    let report = SweepRunner::serial()
        .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
        .try_suite(&gated, &apps);
    assert!(report.is_complete());
    assert_eq!(store.len(), 2, "both capability families must be stored");

    // A nominal-only request still gets the original baseline recording
    // (the smallest covering family wins deterministically)...
    let still = store.get("baseline", "tiny", &[PointKey::Nominal]).unwrap();
    assert!(
        Arc::ptr_eq(&safe, &still),
        "nominal recording was clobbered or outranked"
    );
    // ...while a request that needs the gate point can only be served by
    // the fetch-gate recording.
    let gate_points = gated.replay_points();
    assert!(gate_points.len() > 1, "fetch-gate must be actionable");
    let capable = store.get("baseline", "tiny", &gate_points).unwrap();
    assert!(!Arc::ptr_eq(&safe, &capable), "wrong family served");
    assert!(capable.meta.covers(&gate_points));
    // A point nobody recorded is never served.
    assert!(store
        .get("baseline", "tiny", &[PointKey::MigrateTo(0)])
        .is_none());
}

/// Traces survive the disk round trip bit-for-bit, and the decoded file
/// replays to the same result.
#[test]
fn trace_files_round_trip_through_disk() {
    let cfg = ExperimentConfig::baseline().with_uops(20_000);
    let app = AppProfile::test_tiny();
    let (recorded, _) = CoupledEngine::new(&cfg, &app).run_recorded();
    let (live, trace) = recorded.unwrap();

    let path = std::env::temp_dir().join(format!("distfront-replay-{}.dft", std::process::id()));
    std::fs::write(&path, trace.encode()).unwrap();
    let decoded = ActivityTrace::decode(&std::fs::read(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(decoded, trace);

    let replayed = CoupledEngine::new(&cfg, &app)
        .with_replay(Arc::new(decoded))
        .run()
        .unwrap();
    assert_eq!(replayed, live);
}

/// Phased workloads flow through the whole engine surface: a phased cell
/// runs on the sweep, records, replays bit-identically, and reports under
/// its workload name.
#[test]
fn phased_workloads_record_and_replay_through_the_sweep() {
    use distfront_trace::PhasedProfile;
    let cfg = ExperimentConfig::baseline().with_uops(30_000);
    let tiny = AppProfile::test_tiny();
    let gzip = *AppProfile::by_name("gzip").unwrap();
    let workloads = [
        Workload::Single(tiny),
        Workload::Phased(PhasedProfile::alternating("tiny-gzip", tiny, gzip, 5_000)),
    ];
    let store = Arc::new(TraceStore::new());
    let live = SweepRunner::serial()
        .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
        .try_suite_workloads(&cfg, &workloads);
    assert!(live.is_complete());
    assert_eq!(live.cells()[1].app_name, "tiny-gzip");
    assert_eq!(
        live.cells()[1].result.as_ref().unwrap().app,
        "tiny-gzip",
        "phased results carry the workload name"
    );
    let replayed = SweepRunner::with_threads(2)
        .with_trace_mode(TraceMode::Replay(Arc::clone(&store)))
        .try_suite_workloads(&cfg, &workloads);
    assert_eq!(replayed.replayed(), 2);
    assert_eq!(replayed, live);
}
