//! Reproduction of Fig. 8: the distributed-commit `R`/`L` walk, step by
//! step, exactly as the paper's worked example — plus the walk's
//! interaction with the timing simulator.

use distfront_trace::AppProfile;
use distfront_uarch::{DistributedRob, ProcessorConfig, Simulator};

/// The Fig. 8 state: two partial reorder buffers, commit bandwidth 4.
///
/// Program order (derived from the figure's `L` chain):
/// `I0-0, I0-1, I1-0, I0-2, I0-3, I0-4, I1-1, I1-2, I1-3, I1-4`,
/// ready bits: I0-0 ✓, I0-1 ✓, I1-0 ✓, I0-2 ✓, I0-3 ✗, I0-4 ✗, I1-1 ✓,
/// I1-2 ✓, I1-3 ✗, I1-4 ✓.
fn figure8_rob() -> DistributedRob {
    let mut rob = DistributedRob::new(2, 8);
    let program_order = [
        (0u64, 0usize), // I0-0
        (1, 0),         // I0-1
        (2, 1),         // I1-0
        (3, 0),         // I0-2
        (4, 0),         // I0-3 (not ready)
        (5, 0),         // I0-4 (not ready)
        (6, 1),         // I1-1
        (7, 1),         // I1-2
        (8, 1),         // I1-3 (not ready)
        (9, 1),         // I1-4
    ];
    for (seq, part) in program_order {
        rob.push(seq, part).unwrap();
    }
    for seq in [0, 1, 2, 3, 6, 7, 9] {
        rob.mark_ready(seq);
    }
    rob
}

#[test]
fn fig8_selects_four_instructions() {
    // The paper's walk: I0-0 (total=1), I0-1 (2), I1-0 (3), I0-2 (4).
    let rob = figure8_rob();
    assert_eq!(rob.select_commit(4), vec![0, 1, 2, 3]);
}

#[test]
fn fig8_stops_at_not_ready_even_with_bandwidth() {
    // "until a not-ready-to-commit one is found (i.e. I0-3)".
    let rob = figure8_rob();
    assert_eq!(rob.select_commit(8), vec![0, 1, 2, 3]);
}

#[test]
fn fig8_bandwidth_one_walks_one_per_cycle() {
    let mut rob = figure8_rob();
    for expect in [0u64, 1, 2, 3] {
        assert_eq!(rob.commit(1), vec![expect]);
    }
    assert!(rob.commit(1).is_empty(), "I0-3 blocks commit");
}

#[test]
fn fig8_resumes_after_ready() {
    let mut rob = figure8_rob();
    rob.commit(4);
    rob.mark_ready(4); // I0-3
    rob.mark_ready(5); // I0-4
                       // Next walk: I0-3, I0-4, then L jumps to partition 1: I1-1, I1-2.
    assert_eq!(rob.commit(4), vec![4, 5, 6, 7]);
    // I1-3 still blocks I1-4.
    assert!(rob.commit(4).is_empty());
    rob.mark_ready(8);
    assert_eq!(rob.commit(4), vec![8, 9]);
    assert!(rob.is_empty());
}

#[test]
fn distributed_machine_commits_in_program_order_end_to_end() {
    // The timing simulator with the distributed frontend commits exactly
    // the micro-op budget and makes forward progress per interval.
    let mut sim = Simulator::new(
        ProcessorConfig::distributed_rename_commit(),
        &AppProfile::test_tiny(),
        3,
    );
    let mut last_total = 0;
    loop {
        let r = sim.step(sim.current_cycle() + 10_000, 80_000);
        assert!(r.total_committed >= last_total);
        last_total = r.total_committed;
        if r.done {
            break;
        }
    }
    assert!(last_total >= 80_000);
}

#[test]
fn distributed_commit_penalty_costs_cycles() {
    // +1 commit latency must not speed the machine up.
    let base = Simulator::new(
        ProcessorConfig::distributed_rename_commit(),
        &AppProfile::test_tiny(),
        3,
    )
    .run(60_000);
    let mut slower_cfg = ProcessorConfig::distributed_rename_commit();
    slower_cfg.distributed_commit_penalty = 8;
    let slower = Simulator::new(slower_cfg, &AppProfile::test_tiny(), 3).run(60_000);
    assert!(
        slower.cycles >= base.cycles,
        "larger commit penalty ran faster: {} vs {}",
        slower.cycles,
        base.cycles
    );
}
