//! Physical validation of the thermal stack against analytic expectations,
//! through the public API (the paper validated its models against internal
//! and public data; we validate against closed-form RC behaviour and
//! conservation laws).

use distfront_power::Machine;
use distfront_thermal::{
    Floorplan, PackageConfig, TemperatureTracker, ThermalNetwork, ThermalSolver,
};

fn solver_for(machine: Machine) -> ThermalSolver {
    let fp = Floorplan::for_machine(machine);
    ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()))
}

#[test]
fn steady_state_energy_conservation_all_floorplans() {
    for (p, banks) in [(1, 2), (1, 3), (2, 2), (2, 3)] {
        let mut s = solver_for(Machine::new(p, 4, banks));
        let nb = s.network().block_count();
        let power: Vec<f64> = (0..nb).map(|i| 0.1 + (i % 7) as f64 * 0.3).collect();
        let total: f64 = power.iter().sum();
        s.set_steady_state(&power);
        let sink = s.network().node_count() - 1;
        let out = s.network().ambient_conductances()[sink] * (s.temperatures()[sink] - 45.0);
        assert!(
            ((out - total) / total).abs() < 1e-9,
            "({p},{banks}): {out} W out of {total} W in"
        );
    }
}

#[test]
fn superposition_holds() {
    // The steady-state operator is linear: T(P1 + P2) - T(0) must equal
    // [T(P1) - T(0)] + [T(P2) - T(0)].
    let s = solver_for(Machine::new(1, 4, 2));
    let nb = s.network().block_count();
    let zero = vec![0.0; nb];
    let mut p1 = vec![0.0; nb];
    p1[0] = 3.0;
    let mut p2 = vec![0.0; nb];
    p2[nb - 1] = 5.0;
    let sum: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();
    let t0 = s.solve_steady(&zero);
    let t1 = s.solve_steady(&p1);
    let t2 = s.solve_steady(&p2);
    let ts = s.solve_steady(&sum);
    for i in 0..nb {
        let lhs = ts[i] - t0[i];
        let rhs = (t1[i] - t0[i]) + (t2[i] - t0[i]);
        assert!((lhs - rhs).abs() < 1e-9, "node {i}: {lhs} vs {rhs}");
    }
}

#[test]
fn reciprocity_holds() {
    // For a linear resistive network, the temperature rise at j from power
    // at i equals the rise at i from the same power at j.
    let s = solver_for(Machine::new(1, 4, 2));
    let nb = s.network().block_count();
    let (i, j) = (0, nb / 2);
    let mut pi = vec![0.0; nb];
    pi[i] = 2.0;
    let mut pj = vec![0.0; nb];
    pj[j] = 2.0;
    let ti = s.solve_steady(&pi);
    let tj = s.solve_steady(&pj);
    assert!(
        (ti[j] - tj[i]).abs() < 1e-9,
        "reciprocity violated: {} vs {}",
        ti[j],
        tj[i]
    );
}

#[test]
fn transient_never_overshoots_steady_state_from_below() {
    // A monotone RC network driven by constant power rises monotonically
    // toward (and never beyond) the steady state.
    let mut s = solver_for(Machine::new(1, 4, 2));
    let nb = s.network().block_count();
    let power = vec![0.8; nb];
    let steady = s.solve_steady(&power);
    let mut prev: Vec<f64> = s.temperatures().to_vec();
    for _ in 0..20 {
        s.advance(&power, 5e-3);
        for (i, (&t, &p)) in s.temperatures().iter().zip(&prev).enumerate() {
            assert!(t >= p - 1e-9, "node {i} cooled under constant power");
        }
        prev = s.temperatures().to_vec();
    }
    for (i, (&t, &st)) in s.temperatures().iter().zip(&steady).enumerate() {
        assert!(t <= st + 1e-6, "node {i} overshot steady state");
    }
}

#[test]
fn hotspot_cools_when_power_migrates() {
    // The physical principle behind bank hopping: moving the same total
    // power between two blocks keeps the average but caps the peak.
    let s = solver_for(Machine::new(1, 4, 3));
    let fp = Floorplan::for_machine(Machine::new(1, 4, 3));
    let m = fp.machine();
    let b0 = m.index_of(distfront_power::BlockId::TcBank(0));
    let b1 = m.index_of(distfront_power::BlockId::TcBank(1));
    let nb = s.network().block_count();

    // All power on one bank vs split across two.
    let mut concentrated = vec![0.2; nb];
    concentrated[b0] += 4.0;
    let mut split = vec![0.2; nb];
    split[b0] += 2.0;
    split[b1] += 2.0;
    let tc_conc = s.solve_steady(&concentrated);
    let tc_split = s.solve_steady(&split);
    let peak_conc = tc_conc[b0].max(tc_conc[b1]);
    let peak_split = tc_split[b0].max(tc_split[b1]);
    assert!(
        peak_split < peak_conc - 1.0,
        "splitting power did not cap the peak: {peak_split} vs {peak_conc}"
    );
}

#[test]
fn tracker_and_solver_agree_on_steady_behaviour() {
    let mut s = solver_for(Machine::new(1, 4, 2));
    let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
    let nb = s.network().block_count();
    let power = vec![0.5; nb];
    s.set_steady_state(&power);
    let mut tracker = TemperatureTracker::new(fp.areas());
    for _ in 0..5 {
        s.advance(&power, 1e-3);
        tracker.record(s.block_temperatures(), 1e-3);
        tracker.end_interval();
    }
    // At steady state, AbsMax == Average == AvgMax per block group.
    let g: Vec<usize> = (0..nb).collect();
    let m = tracker.group_metrics(&g);
    assert!((m.abs_max_c - m.avg_max_c).abs() < 0.05);
    assert!(m.average_c <= m.abs_max_c + 1e-9);
}
