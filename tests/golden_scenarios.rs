//! Golden-scenario regression tests: canonical CSV outputs for several
//! smoke scenarios are committed under `tests/golden/` and diffed
//! byte-for-byte against the current engine. Any behavioural change —
//! simulator timing, power arithmetic, thermal integration, CSV
//! formatting — shows up here as a precise diff instead of a silent
//! drift. The technique-ladder goldens run in **replay mode**: each is
//! recorded live, replayed from its own multi-point trace, and the
//! *replayed* bytes are diffed — pinning the DFAT v2 record→replay path
//! itself, not just the live engine.
//!
//! To re-bless after an *intentional* change:
//!
//! ```sh
//! BLESS=1 cargo test -p distfront --test golden_scenarios
//! ```
//!
//! then review the golden diffs like any other code change.

use std::path::PathBuf;
use std::sync::Arc;

use distfront::engine::{TraceMode, TraceStore};
use distfront::scenarios::{self, RunOptions, ScenarioReport};

/// The pinned run shape: small enough for CI, large enough that every
/// scenario closes several intervals and the phased scenario genuinely
/// crosses phase boundaries (its slices are 25 k micro-ops, so a 60 k
/// run visits phase 0, phase 1, and phase 0 again — a regression in
/// phase rotation, seeding or the address-slab offset changes these
/// bytes).
fn golden_opts() -> RunOptions {
    RunOptions::smoke().with_uops(60_000).with_workers(2)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

fn check(scenario: &str) {
    let s = scenarios::by_name(scenario).unwrap_or_else(|| panic!("unknown scenario {scenario}"));
    let report = s.run(&golden_opts());
    compare(scenario, &report, format!("{scenario}.csv"));
}

/// Records `scenario` live, replays it from its own multi-point trace,
/// and diffs the **replayed** CSV against the committed golden — every
/// cell must actually replay, so a capability regression (the trace no
/// longer covering its own policy's operating points) fails here before
/// any byte is compared.
fn check_replayed(scenario: &str) {
    let s = scenarios::by_name(scenario).unwrap_or_else(|| panic!("unknown scenario {scenario}"));
    let store = Arc::new(TraceStore::new());
    let recorded = s.run_traced(
        &golden_opts(),
        TraceMode::Record(Arc::clone(&store)),
        |_| {},
    );
    assert!(
        recorded.is_complete(),
        "{scenario}: {} cells failed while recording",
        recorded.failed()
    );
    let report = s.run_traced(&golden_opts(), TraceMode::Replay(store), |_| {});
    assert_eq!(
        report.report.replayed(),
        report.outcomes().len(),
        "{scenario}: not every cell replayed from its own recording"
    );
    compare(scenario, &report, format!("{scenario}.replay.csv"));
}

fn compare(scenario: &str, report: &ScenarioReport, file: String) {
    assert!(
        report.is_complete(),
        "{scenario}: {} cells failed",
        report.failed()
    );
    let csv = scenarios::to_csv(std::slice::from_ref(report));
    let path = golden_dir().join(file);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &csv).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with BLESS=1 to create it",
            path.display()
        )
    });
    if csv != golden {
        // A byte diff with the first differing line pinpointed beats a
        // 20-line assert_eq dump.
        let mismatch = csv
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (now, was))) => panic!(
                "{scenario}: output diverged from {} at line {}:\n  golden:  {was}\n  current: {now}\n\
                 (re-bless with BLESS=1 only if the change is intentional)",
                path.display(),
                i + 1
            ),
            None => panic!(
                "{scenario}: output length diverged from {} ({} vs {} bytes)",
                path.display(),
                csv.len(),
                golden.len()
            ),
        }
    }
}

#[test]
fn golden_baseline() {
    check("baseline");
}

#[test]
fn golden_dtm_emergency() {
    check("dtm-emergency");
}

#[test]
fn golden_phased_hot_cold() {
    check("phased-hot-cold");
}

#[test]
fn golden_technique_ladder_dvfs_replayed() {
    check_replayed("technique-ladder-dvfs");
}

#[test]
fn golden_technique_ladder_migration_replayed() {
    check_replayed("technique-ladder-migration");
}
