//! Cross-crate integration tests: the full simulator → power → thermal
//! pipeline driven through the public API.

use distfront::{run_app, run_suite, slowdown, ExperimentConfig};
use distfront_power::{BlockId, Machine};
use distfront_trace::AppProfile;
use distfront_uarch::{ProcessorConfig, Simulator};

fn tiny(cfg: ExperimentConfig) -> distfront::AppResult {
    run_app(&cfg.with_uops(50_000), &AppProfile::test_tiny())
}

#[test]
fn full_stack_end_to_end() {
    let r = tiny(ExperimentConfig::baseline());
    assert!(r.uops >= 50_000);
    assert!(r.cycles > r.uops / 8, "cannot beat the 8-wide commit limit");
    assert!(r.avg_power_w > 5.0 && r.avg_power_w < 500.0);
    assert!(r.temps.processor.abs_max_c > 45.0);
    assert!(r.temps.processor.abs_max_c < 381.0 - 273.15 + 100.0);
}

#[test]
fn every_preset_runs_end_to_end() {
    for cfg in [
        ExperimentConfig::baseline(),
        ExperimentConfig::address_biasing(),
        ExperimentConfig::bank_hopping(),
        ExperimentConfig::hopping_and_biasing(),
        ExperimentConfig::blank_silicon(),
        ExperimentConfig::distributed_rename_commit(),
        ExperimentConfig::combined(),
    ] {
        let name = cfg.name;
        let r = run_app(&cfg.with_uops(30_000), &AppProfile::test_tiny());
        assert!(r.uops >= 30_000, "{name} under-ran");
        assert!(r.temps.frontend.average_c > 45.0, "{name} stayed cold");
    }
}

#[test]
fn seeds_change_the_run_but_not_the_shape() {
    let a = run_app(
        &ExperimentConfig::baseline().with_uops(40_000).with_seed(1),
        &AppProfile::test_tiny(),
    );
    let b = run_app(
        &ExperimentConfig::baseline().with_uops(40_000).with_seed(2),
        &AppProfile::test_tiny(),
    );
    assert_ne!(a.cycles, b.cycles, "different seeds, identical run");
    // But the thermal landscape stays in the same regime.
    assert!((a.temps.processor.average_c - b.temps.processor.average_c).abs() < 25.0);
}

#[test]
fn simulator_and_runner_agree_on_microarchitecture() {
    // A raw Simulator run and the full thermal runner see the same machine.
    let mut sim = Simulator::new(
        ProcessorConfig::hpca05_baseline(),
        &AppProfile::test_tiny(),
        0xD15F,
    );
    let stats = sim.run(50_000);
    let r = tiny(ExperimentConfig::baseline());
    // The runner's pilot interleaves control actions but the baseline has
    // none, so cycle counts match exactly for the same uop budget.
    assert_eq!(stats.committed_uops, r.uops);
    assert_eq!(stats.cycles, r.cycles);
}

#[test]
fn machine_shape_matches_processor_config() {
    for (cfg, parts, banks) in [
        (ExperimentConfig::baseline(), 1, 2),
        (ExperimentConfig::bank_hopping(), 1, 3),
        (ExperimentConfig::distributed_rename_commit(), 2, 2),
        (ExperimentConfig::combined(), 2, 3),
    ] {
        let p = &cfg.processor;
        let m = Machine::new(
            p.frontend_mode.partitions(),
            p.backends,
            p.trace_cache.physical_banks(),
        );
        assert_eq!(m.partitions, parts, "{}", cfg.name);
        assert_eq!(m.tc_banks, banks, "{}", cfg.name);
        assert!(m.contains(BlockId::Rob((parts - 1) as u8)));
        assert!(m.contains(BlockId::TcBank((banks - 1) as u8)));
    }
}

#[test]
fn suite_slowdowns_are_modest() {
    let apps = [
        AppProfile::test_tiny(),
        *AppProfile::by_name("gzip").unwrap(),
    ];
    let base = run_suite(&ExperimentConfig::baseline().with_uops(40_000), &apps);
    for cfg in [
        ExperimentConfig::distributed_rename_commit(),
        ExperimentConfig::hopping_and_biasing(),
        ExperimentConfig::combined(),
    ] {
        let name = cfg.name;
        let tech = run_suite(&cfg.with_uops(40_000), &apps);
        let s = slowdown(&base, &tech);
        assert!(
            (-0.05..0.20).contains(&s),
            "{name}: slowdown {s} out of the paper's band"
        );
    }
}

#[test]
fn gated_bank_stays_dark_through_the_stack() {
    // Under blank silicon the spare bank must never be accessed.
    let cfg = ExperimentConfig::blank_silicon().with_uops(30_000);
    let mut sim = Simulator::new(cfg.processor.clone(), &AppProfile::test_tiny(), cfg.seed);
    let r = sim.step(u64::MAX, 30_000);
    assert_eq!(r.activity.tc_bank_accesses.len(), 3);
    assert_eq!(
        r.activity.tc_bank_accesses[2], 0,
        "statically gated bank was accessed"
    );
}

#[test]
fn hopping_touches_every_bank_over_time() {
    let cfg = ExperimentConfig::bank_hopping().with_uops(60_000);
    let r = run_app(&cfg, &AppProfile::test_tiny());
    assert!(r.uops >= 60_000);
    // End-to-end accesses can't verify per-interval gating from here, but
    // the run must have hopped: re-run the raw sim mirroring the control
    // loop and count.
    let mut sim = Simulator::new(cfg.processor.clone(), &AppProfile::test_tiny(), cfg.seed);
    let mut hops = 0;
    loop {
        let target = sim.current_cycle() + cfg.interval_cycles;
        let rep = sim.step(target, cfg.uops_per_app);
        sim.trace_cache_mut().hop();
        hops += 1;
        if rep.done {
            break;
        }
    }
    assert!(hops >= 2, "run too short to rotate the gated bank");
}
