//! Shape tests for the paper's headline results: who wins, in which
//! direction, with roughly which ordering. Absolute magnitudes are checked
//! loosely (the substrate is a from-scratch simulator, not the authors'
//! testbed); orderings are checked strictly.

use distfront::{average_temps, run_suite, ExperimentConfig, AMBIENT_C};
use distfront_trace::AppProfile;

const UOPS: u64 = 80_000;

fn apps() -> Vec<AppProfile> {
    ["gzip", "crafty", "swim"]
        .iter()
        .map(|n| *AppProfile::by_name(n).unwrap())
        .collect()
}

fn suite(cfg: ExperimentConfig) -> distfront::TempReport {
    average_temps(&run_suite(&cfg.with_uops(UOPS), &apps()))
}

#[test]
fn fig1_frontend_is_among_the_hottest() {
    let t = suite(ExperimentConfig::baseline());
    // Fig. 1: the frontend exhibits some of the highest temperatures; the
    // UL2 is far cooler.
    assert!(t.frontend.abs_max_c > t.ul2.abs_max_c + 5.0);
    assert!(t.frontend.average_c > t.processor.average_c);
    // Peak rise lands in the tens of degrees (paper: ~62 C over ambient).
    let peak_rise = t.processor.abs_max_c - AMBIENT_C;
    assert!(
        (20.0..100.0).contains(&peak_rise),
        "peak rise {peak_rise} outside the plausible band"
    );
}

#[test]
fn fig12_distribution_cools_rob_and_rat_strongly() {
    let base = suite(ExperimentConfig::baseline());
    let drc = suite(ExperimentConfig::distributed_rename_commit());
    let rob = base.rob.reduction_vs(&drc.rob, AMBIENT_C);
    let rat = base.rat.reduction_vs(&drc.rat, AMBIENT_C);
    // Paper: ~32-35 % for peak and average. Accept a generous band but
    // require a decidedly strong effect.
    assert!(
        rob.average_c > 0.10,
        "ROB average reduction {}",
        rob.average_c
    );
    assert!(
        rat.average_c > 0.15,
        "RAT average reduction {}",
        rat.average_c
    );
    assert!(rat.abs_max_c > 0.10, "RAT peak reduction {}", rat.abs_max_c);
    // The trace cache benefits indirectly (heat spreading), less than the
    // split structures themselves.
    let tc = base.trace_cache.reduction_vs(&drc.trace_cache, AMBIENT_C);
    assert!(tc.average_c > 0.0);
    assert!(tc.average_c < rat.average_c);
}

#[test]
fn fig13_hopping_cools_the_trace_cache() {
    let base = suite(ExperimentConfig::baseline());
    let bh = suite(ExperimentConfig::bank_hopping());
    let tc = base.trace_cache.reduction_vs(&bh.trace_cache, AMBIENT_C);
    // Paper: average -17 %, peak -12 %.
    assert!(tc.average_c > 0.04, "TC average reduction {}", tc.average_c);
    assert!(tc.abs_max_c > 0.04, "TC peak reduction {}", tc.abs_max_c);
}

#[test]
fn fig13_hopping_beats_blank_silicon() {
    // "the proposed techniques outperform this option".
    let base = suite(ExperimentConfig::baseline());
    let bh = suite(ExperimentConfig::bank_hopping());
    let blank = suite(ExperimentConfig::blank_silicon());
    let tc_bh = base.trace_cache.reduction_vs(&bh.trace_cache, AMBIENT_C);
    let tc_blank = base.trace_cache.reduction_vs(&blank.trace_cache, AMBIENT_C);
    assert!(
        tc_bh.abs_max_c >= tc_blank.abs_max_c - 0.01,
        "hopping peak {} vs blank {}",
        tc_bh.abs_max_c,
        tc_blank.abs_max_c
    );
}

#[test]
fn fig13_biasing_never_hurts_the_peak() {
    let base = suite(ExperimentConfig::baseline());
    let ab = suite(ExperimentConfig::address_biasing());
    let tc = base.trace_cache.reduction_vs(&ab.trace_cache, AMBIENT_C);
    // Paper: peak -4 %, average ~0 (activity is spread, not reduced).
    assert!(
        tc.abs_max_c > -0.02,
        "biasing worsened the peak: {}",
        tc.abs_max_c
    );
    assert!(
        tc.average_c.abs() < 0.05,
        "biasing changed the average: {}",
        tc.average_c
    );
}

#[test]
fn fig14_combination_is_best_overall() {
    let base = suite(ExperimentConfig::baseline());
    let drc = suite(ExperimentConfig::distributed_rename_commit());
    let bhab = suite(ExperimentConfig::hopping_and_biasing());
    let all = suite(ExperimentConfig::combined());

    let red = |t: &distfront::TempReport| {
        let rob = base.rob.reduction_vs(&t.rob, AMBIENT_C).average_c;
        let rat = base.rat.reduction_vs(&t.rat, AMBIENT_C).average_c;
        let tc = base
            .trace_cache
            .reduction_vs(&t.trace_cache, AMBIENT_C)
            .average_c;
        (rob, rat, tc)
    };
    let (rob_all, rat_all, tc_all) = red(&all);
    let (_, _, tc_drc) = red(&drc);
    let (rob_bhab, rat_bhab, _) = red(&bhab);

    // The combination keeps the strong ROB/RAT effect of distribution...
    assert!(
        rob_all > rob_bhab,
        "combined ROB {rob_all} vs bh+ab {rob_bhab}"
    );
    assert!(
        rat_all > rat_bhab,
        "combined RAT {rat_all} vs bh+ab {rat_bhab}"
    );
    // ...and cools the trace cache at least as much as distribution alone.
    assert!(
        tc_all > tc_drc - 0.03,
        "combined TC {tc_all} vs drc {tc_drc}"
    );
    // Everything is a genuine reduction.
    assert!(rob_all > 0.0 && rat_all > 0.0 && tc_all > 0.0);
}

#[test]
fn frontend_area_and_power_shares_match_the_paper() {
    // §1: frontend ~20 % of area and ~30 % of dynamic power.
    use distfront_power::Machine;
    use distfront_thermal::Floorplan;
    let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
    let fe_area: f64 = fp
        .blocks()
        .iter()
        .filter(|(b, _)| b.is_frontend())
        .map(|(_, r)| r.area())
        .sum();
    let share = fe_area / fp.die_area();
    assert!((0.10..0.30).contains(&share), "frontend area share {share}");
}
