//! Integration tests for the dynamic-thermal-management extension: the
//! techniques' peak reductions translate into fewer emergencies and less
//! throttle time, which is the paper's motivating claim for DTM-equipped
//! processors.

use distfront::{run_app, EmergencyPolicy, ExperimentConfig};
use distfront_trace::AppProfile;

#[test]
fn dtm_off_by_default() {
    let r = run_app(
        &ExperimentConfig::baseline().with_uops(30_000),
        &AppProfile::test_tiny(),
    );
    assert_eq!(r.emergencies, 0);
    assert_eq!(r.throttled_intervals, 0);
}

#[test]
fn throttle_engages_below_natural_peak() {
    let app = AppProfile::test_tiny();
    let probe = run_app(&ExperimentConfig::baseline().with_uops(60_000), &app);
    let threshold = probe.temps.processor.abs_max_c - 2.0;
    let r = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(EmergencyPolicy::with_threshold(threshold)),
        &app,
    );
    assert!(r.emergencies >= 1, "DTM armed below the peak never fired");
    assert!(r.throttled_intervals >= r.emergencies);
}

#[test]
fn throttling_extends_wall_time() {
    let app = AppProfile::test_tiny();
    let free = run_app(&ExperimentConfig::baseline().with_uops(60_000), &app);
    let threshold = free.temps.processor.abs_max_c - 2.0;
    let managed = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(EmergencyPolicy::with_threshold(threshold)),
        &app,
    );
    assert!(
        managed.wall_time_s > free.wall_time_s,
        "throttling must cost wall-clock time: {} vs {}",
        managed.wall_time_s,
        free.wall_time_s
    );
}

#[test]
fn cooler_technique_triggers_fewer_emergencies() {
    // The paper's claim: peak-reducing techniques mean fewer DTM events.
    let app = AppProfile::test_tiny();
    let probe = run_app(&ExperimentConfig::baseline().with_uops(60_000), &app);
    let threshold = probe.temps.processor.abs_max_c - 2.0;
    let policy = EmergencyPolicy::with_threshold(threshold);
    let base = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(policy),
        &app,
    );
    let combined = run_app(
        &ExperimentConfig::combined()
            .with_uops(60_000)
            .with_emergency(policy),
        &app,
    );
    assert!(
        combined.emergencies <= base.emergencies,
        "distributed frontend triggered more emergencies ({} vs {})",
        combined.emergencies,
        base.emergencies
    );
    assert!(combined.throttled_intervals <= base.throttled_intervals);
}

#[test]
fn hard_limit_rarely_fires_at_calibration() {
    // At the paper's real 381 K limit the calibrated baseline mostly stays
    // legal (the paper reports 107 C peaks, right at the limit).
    let r = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(EmergencyPolicy::paper_limit()),
        &AppProfile::test_tiny(),
    );
    assert!(
        r.throttled_intervals <= 64,
        "calibration far above the emergency limit"
    );
}
