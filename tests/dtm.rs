//! Integration tests for the dynamic-thermal-management extension: the
//! techniques' peak reductions translate into fewer emergencies and less
//! throttle time, which is the paper's motivating claim for DTM-equipped
//! processors.

use distfront::{run_app, EmergencyPolicy, ExperimentConfig};
use distfront_trace::AppProfile;

#[test]
fn dtm_off_by_default() {
    let r = run_app(
        &ExperimentConfig::baseline().with_uops(30_000),
        &AppProfile::test_tiny(),
    );
    assert_eq!(r.emergencies, 0);
    assert_eq!(r.throttled_intervals, 0);
}

#[test]
fn throttle_engages_below_natural_peak() {
    let app = AppProfile::test_tiny();
    let probe = run_app(&ExperimentConfig::baseline().with_uops(60_000), &app);
    let threshold = probe.temps.processor.abs_max_c - 2.0;
    let r = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(EmergencyPolicy::with_threshold(threshold)),
        &app,
    );
    assert!(r.emergencies >= 1, "DTM armed below the peak never fired");
    assert!(r.throttled_intervals >= r.emergencies);
}

#[test]
fn throttling_extends_wall_time() {
    let app = AppProfile::test_tiny();
    let free = run_app(&ExperimentConfig::baseline().with_uops(60_000), &app);
    let threshold = free.temps.processor.abs_max_c - 2.0;
    let managed = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(EmergencyPolicy::with_threshold(threshold)),
        &app,
    );
    assert!(
        managed.wall_time_s > free.wall_time_s,
        "throttling must cost wall-clock time: {} vs {}",
        managed.wall_time_s,
        free.wall_time_s
    );
}

#[test]
fn cooler_technique_triggers_fewer_emergencies() {
    // The paper's claim: peak-reducing techniques mean fewer DTM events.
    let app = AppProfile::test_tiny();
    let probe = run_app(&ExperimentConfig::baseline().with_uops(60_000), &app);
    let threshold = probe.temps.processor.abs_max_c - 2.0;
    let policy = EmergencyPolicy::with_threshold(threshold);
    let base = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(policy),
        &app,
    );
    let combined = run_app(
        &ExperimentConfig::combined()
            .with_uops(60_000)
            .with_emergency(policy),
        &app,
    );
    assert!(
        combined.emergencies <= base.emergencies,
        "distributed frontend triggered more emergencies ({} vs {})",
        combined.emergencies,
        base.emergencies
    );
    assert!(combined.throttled_intervals <= base.throttled_intervals);
}

#[test]
fn hard_limit_rarely_fires_at_calibration() {
    // At the paper's real 381 K limit the calibrated baseline mostly stays
    // legal (the paper reports 107 C peaks, right at the limit).
    let r = run_app(
        &ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_emergency(EmergencyPolicy::paper_limit()),
        &AppProfile::test_tiny(),
    );
    assert!(
        r.throttled_intervals <= 64,
        "calibration far above the emergency limit"
    );
}

/// The throttle stretch is computed in f64 from the exact cycle count —
/// no per-interval integer rounding — so interval energy and wall-time
/// accounting conserve the un-throttled run exactly: a throttled run's
/// extra wall time is proportional to `1/factor − 1`, and the committed
/// work (cycles, uops) is untouched.
#[test]
fn throttle_stretch_conserves_interval_accounting() {
    use distfront::engine::{CoupledEngine, DtmAction, DtmPolicy};

    /// Throttles every interval after the first at a fixed factor.
    struct ConstThrottle(f64);
    impl DtmPolicy for ConstThrottle {
        fn decide(&mut self, _temps_c: &[f64]) -> DtmAction {
            DtmAction::Throttle(self.0)
        }
        fn triggers(&self) -> u64 {
            0
        }
        fn throttled_intervals(&self) -> u64 {
            0
        }
    }

    let cfg = ExperimentConfig::baseline().with_uops(60_000);
    let app = AppProfile::test_tiny();
    let throttled = |factor: f64| {
        CoupledEngine::new(&cfg, &app)
            .with_dtm(Box::new(ConstThrottle(factor)))
            .run()
            .unwrap()
    };

    let free = run_app(&cfg, &app);
    // 0.3 does not divide any binary cycle count evenly — the case the
    // old `(cycles / throttle).round()` accounting drifted on by up to
    // half a cycle per interval.
    let slow = throttled(0.3);
    let third = throttled(1.0 / 3.0);

    // Throttling never changes the committed work, only its wall time.
    assert_eq!(slow.cycles, free.cycles);
    assert_eq!(slow.uops, free.uops);
    assert_eq!(third.cycles, free.cycles);

    // The first interval runs nominal (the policy is consulted at each
    // interval's end), every later interval stretches by 1/factor; the
    // extra wall time is therefore (1/factor − 1) · t_throttled_portion,
    // giving an exact cross-factor identity:
    //   (w(0.3) − w_free) / (w(1/3) − w_free) = (1/0.3 − 1) / (3 − 1).
    let extra_a = slow.wall_time_s - free.wall_time_s;
    let extra_b = third.wall_time_s - free.wall_time_s;
    assert!(extra_a > 0.0 && extra_b > 0.0, "throttle must cost time");
    let want = (1.0 / 0.3 - 1.0) / (1.0 / (1.0 / 3.0) - 1.0);
    let got = extra_a / extra_b;
    assert!(
        (got / want - 1.0).abs() < 1e-9,
        "stretch ratio {got} vs exact {want} — integer rounding drift"
    );

    // Dynamic switching energy is conserved under the stretch: the same
    // joules spread over more seconds, so average power must drop below
    // the free-running value rather than track it.
    assert!(slow.avg_power_w < free.avg_power_w);
}
