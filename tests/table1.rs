//! Table 1 conformance: the baseline configuration must match the paper's
//! processor parameters exactly.

use distfront_uarch::ProcessorConfig;

#[test]
fn frontend_parameters() {
    let c = ProcessorConfig::hpca05_baseline();
    assert_eq!(c.trace_cache.total_uops, 32 * 1024, "32K micro-ops");
    assert_eq!(c.trace_cache.ways, 4, "4-way");
    assert_eq!(c.fetch_to_dispatch, 4, "4-cycle fetch-to-dispatch");
    assert_eq!(c.decode_rename_steer, 8, "8-cycle decode/rename/steer");
    assert_eq!(c.fetch_width, 8, "fetch up to 8 micro-ops per cycle");
    assert_eq!(c.dispatch_width, 8);
    assert_eq!(c.commit_width, 8);
}

#[test]
fn ul2_parameters() {
    let c = ProcessorConfig::hpca05_baseline();
    assert_eq!(c.ul2.capacity, 2 << 20, "2 MB");
    assert_eq!(c.ul2.ways, 8, "8-way");
    assert_eq!(c.ul2.hit_latency, 12, "12-cycle hit");
    assert_eq!(c.ul2.miss_latency, 500, "500+ miss");
}

#[test]
fn communication_parameters() {
    let c = ProcessorConfig::hpca05_baseline();
    assert_eq!(c.memory_buses, 2, "2 memory buses");
    assert_eq!(c.bus_latency, 5, "4-cycle latency + 1-cycle arbiter");
    assert_eq!(c.hop_latency, 1, "1 cycle per hop");
    assert_eq!(c.hops_between(0, 3), 2, "2 from side to side of the chip");
}

#[test]
fn backend_parameters() {
    let c = ProcessorConfig::hpca05_baseline();
    assert_eq!(c.backends, 4, "quad-cluster baseline");
    assert_eq!(c.int_queue, 40, "40-entry IQueue");
    assert_eq!(c.fp_queue, 40, "40-entry FPQueue");
    assert_eq!(c.copy_queue, 40, "40-entry CopyQueue");
    assert_eq!(c.mem_queue, 96, "96-entry MemQueue");
    assert_eq!(c.issue_per_queue, 1, "1 inst/cycle per queue");
    assert_eq!(c.dispatch_latency, 10, "10-cycle dispatch latency");
    assert_eq!(c.int_regs, 160, "160 integer registers");
    assert_eq!(c.fp_regs, 160, "160 FP registers");
}

#[test]
fn l1_parameters() {
    let c = ProcessorConfig::hpca05_baseline();
    assert_eq!(c.l1d.capacity, 16 << 10, "16 KB");
    assert_eq!(c.l1d.ways, 2, "2-way");
    assert_eq!(c.l1d.hit_latency, 1, "1-cycle hit");
}

#[test]
fn process_parameters() {
    // §4: 65 nm, 10 GHz, Vdd 1.1 V; thermal solution per Fig. 10.
    let c = ProcessorConfig::hpca05_baseline();
    assert_eq!(c.frequency_hz, 10e9, "10 GHz");
    let pkg = distfront_thermal::PackageConfig::paper();
    assert_eq!(pkg.ambient_c, 45.0, "45 C in-box ambient");
    assert_eq!(
        pkg.spreader_m,
        (0.031, 0.031, 0.0023),
        "3.1x3.1x0.23 cm spreader"
    );
    assert_eq!(pkg.sink_m, (0.07, 0.083, 0.0411), "7x8.3x4.11 cm sink");
}

#[test]
fn paper_leakage_assumptions() {
    // §2.1: leakage ~30 % of dynamic at ambient, exponential in T,
    // emergency limit 381 K.
    let l = distfront_power::LeakageModel::paper();
    assert_eq!(l.ratio_at_ambient, 0.30);
    assert_eq!(l.ambient_c, 45.0);
    assert!((l.emergency_c - (381.0 - 273.15)).abs() < 1e-9);
}

#[test]
fn distributed_variant_deltas_only() {
    // The Fig. 12 machine differs from baseline only in frontend
    // organization and the +1 commit cycle.
    let b = ProcessorConfig::hpca05_baseline();
    let d = ProcessorConfig::distributed_rename_commit();
    assert_eq!(d.frontend_mode.partitions(), 2);
    assert_eq!(d.distributed_commit_penalty, 1);
    assert_eq!(d.backends, b.backends);
    assert_eq!(d.rob_entries, b.rob_entries);
    assert_eq!(d.trace_cache, b.trace_cache);
    assert_eq!(d.ul2, b.ul2);
}
