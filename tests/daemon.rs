//! Integration tests for the `distfront-sweepd` daemon: the
//! content-addressed result cache, byte-identity of streamed results
//! against one-shot runs, per-job fault isolation under concurrency, and
//! the golden fingerprint pin that keeps cache keys from drifting.

use std::sync::mpsc;
use std::thread;

use distfront::job::{JobClass, JobEnv, JobSpec, StatusCode, TraceSpec};
use distfront::scenarios::RunOptions;
use distfront::server::{protocol, Client, SweepDaemon};

/// A small, fast job used throughout: baseline scenario, smoke suite
/// (3 apps), short run.
fn small_spec() -> JobSpec {
    JobSpec::scenario("baseline")
        .with_smoke(true)
        .with_uops(20_000)
        .with_workers(2)
}

#[test]
fn resubmission_is_a_cache_hit_and_byte_identical_to_one_shot() {
    let handle = SweepDaemon::bind("127.0.0.1:0").expect("bind").spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = small_spec();

    let first = client.submit(&spec).expect("first submission");
    assert_eq!(first.status, StatusCode::Ok);
    assert!(!first.cached, "first submission must execute");
    let suite = RunOptions::smoke().apps().len();
    assert_eq!(first.cells, suite);
    assert_eq!(first.failed, 0);
    assert_eq!(first.csv_rows.len(), suite);

    // Same spec again: served from the content-addressed cache...
    let second = client.submit(&spec).expect("second submission");
    assert!(second.cached, "identical resubmission must be a cache hit");
    // ...byte-identical to the first response...
    assert_eq!(first.result_lines, second.result_lines);
    assert_eq!(first.csv_rows, second.csv_rows);

    // ...with no cell re-solved: still exactly one execution, and the
    // warm-start cache saw no new traffic for the replay.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs, 2);
    assert_eq!(stats.executed, 1, "cache hit must not re-execute");
    assert_eq!(stats.result_hits, 1);

    // A scheduling-only variation (different workers, batch flag, class)
    // is the *same* content address: also a hit, same bytes.
    let reshaped = spec
        .clone()
        .with_workers(1)
        .with_batch(true)
        .with_class(JobClass::Deferrable);
    let third = client.submit(&reshaped).expect("reshaped submission");
    assert!(third.cached, "scheduling knobs must not change the address");
    assert_eq!(first.result_lines, third.result_lines);

    // Byte-identity against a one-shot run of the same JobSpec: the
    // daemon's stored frames are exactly what a fresh local execution
    // serializes to.
    let report = spec.execute(&JobEnv::default(), |_| {}).expect("one-shot");
    assert_eq!(protocol::result_frames(&report), first.result_lines);
    assert_eq!(report.csv_rows(), first.csv_rows);

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");
}

#[test]
fn concurrent_clients_are_fault_isolated() {
    let handle = SweepDaemon::bind("127.0.0.1:0").expect("bind").spawn();
    let addr = handle.addr();

    // Client A submits a job whose every cell deterministically fails;
    // client B concurrently submits a healthy deferrable job. B must be
    // untouched by A's failures, and the daemon must survive both.
    let faulty = JobSpec::scenario("fault-injection")
        .with_smoke(true)
        .with_uops(20_000)
        .with_workers(2);
    let healthy = small_spec().with_class(JobClass::Deferrable);

    let (tx, rx) = mpsc::channel();
    let spawn_submit = |spec: JobSpec, tx: mpsc::Sender<_>| {
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            tx.send(client.submit(&spec).expect("submit")).unwrap();
        })
    };
    let a = spawn_submit(faulty.clone(), tx.clone());
    let b = spawn_submit(healthy.clone(), tx);
    a.join().expect("client A");
    b.join().expect("client B");
    let responses: Vec<_> = rx.iter().take(2).collect();

    let failed = responses
        .iter()
        .find(|r| r.status == StatusCode::CellsFailed)
        .expect("fault-injection job reports CellsFailed");
    let ok = responses
        .iter()
        .find(|r| r.status == StatusCode::Ok)
        .expect("healthy job unaffected");
    assert_eq!(failed.failed, failed.cells);
    assert!(failed.csv_rows.is_empty());
    assert!(failed
        .result_lines
        .iter()
        .take(failed.cells)
        .all(|l| l.starts_with("ERRCELL ")));
    assert_eq!(ok.failed, 0);
    assert_eq!(ok.csv_rows.len(), ok.cells);

    // Deterministic failures are results too: resubmitting the faulty
    // job is served from the cache with the same bytes.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("daemon alive after failures");
    let replayed = client.submit(&faulty).expect("resubmit faulty");
    assert!(replayed.cached);
    assert_eq!(replayed.result_lines, failed.result_lines);

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");
}

#[test]
fn shared_env_warms_across_distinct_jobs() {
    let handle = SweepDaemon::bind("127.0.0.1:0").expect("bind").spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Two *different* jobs over the same configuration: the second is a
    // result-cache miss (different content) but reuses the first's warm
    // starts through the process-wide JobEnv.
    let first = small_spec();
    let second = small_spec().with_uops(24_000);
    assert_ne!(
        first.fingerprint().unwrap(),
        second.fingerprint().unwrap(),
        "different run lengths are different content"
    );
    client.submit(&first).expect("first");
    let stats_before = client.stats().expect("stats");
    client.submit(&second).expect("second");
    let stats_after = client.stats().expect("stats");
    assert_eq!(stats_after.executed, 2, "distinct content must execute");
    assert!(
        stats_after.warm_hits > stats_before.warm_hits,
        "second job must reuse the daemon's warm starts \
         ({} -> {})",
        stats_before.warm_hits,
        stats_after.warm_hits
    );

    // Record/replay against the daemon's process-wide trace store: a
    // recording job populates it, and it persists across jobs.
    let recorded = small_spec().with_uops(28_000).with_trace(TraceSpec::Record);
    client.submit(&recorded).expect("record");
    let stats = client.stats().expect("stats");
    assert!(stats.traces > 0, "recorded traces outlive the job");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");
}

#[test]
fn malformed_and_unresolvable_jobs_answer_err_frames() {
    let handle = SweepDaemon::bind("127.0.0.1:0").expect("bind").spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let unknown = JobSpec::scenario("no-such-scenario").with_smoke(true);
    let response = client.submit(&unknown).expect("exchange completes");
    assert_eq!(response.status, StatusCode::Usage);
    assert!(response
        .error
        .as_deref()
        .unwrap()
        .contains("no-such-scenario"));

    // The connection survives a rejected job.
    let ok = client.submit(&small_spec()).expect("healthy job after ERR");
    assert_eq!(ok.status, StatusCode::Ok);

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");
}

/// The persistence round trip: a daemon started on a state dir persists
/// its solved results and recorded traces at the insert-batch boundary,
/// and a *new* daemon on the same directory serves a resubmission as a
/// disk cache hit — without re-executing, byte-identical to the first
/// life's response. (The CI `sweepd-restart` gate replays this across a
/// real SIGTERM; here the first life exits cleanly.)
#[test]
fn restarted_daemon_serves_disk_cache_hits_byte_identically() {
    let dir = std::env::temp_dir().join(format!("distfront-daemon-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = small_spec().with_trace(TraceSpec::Record);

    // First life: execute, persist, exit.
    let handle = SweepDaemon::bind_persistent("127.0.0.1:0", &dir)
        .expect("bind")
        .spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let first = client.submit(&spec).expect("first life");
    assert_eq!(first.status, StatusCode::Ok);
    assert!(!first.cached, "fresh state dir must execute");
    let stats = client.stats().expect("stats");
    assert!(stats.persisted_results >= 1, "result not persisted");
    assert!(stats.persisted_traces >= 1, "recorded traces not persisted");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");

    // Second life, same directory: the resubmission never executes — it
    // is served from the loaded store with the first life's bytes.
    let handle = SweepDaemon::bind_persistent("127.0.0.1:0", &dir)
        .expect("rebind")
        .spawn();
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let second = client.submit(&spec).expect("second life");
    assert!(second.cached, "restart must serve the stored result");
    assert_eq!(first.result_lines, second.result_lines);
    assert_eq!(first.csv_rows, second.csv_rows);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.executed, 0, "disk cache hit must not re-execute");
    assert!(
        stats.persisted_results >= 1,
        "loaded results count as persisted"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Connection pipelining: several `JOB` frames in flight on one
/// connection, demuxed by the per-connection `job=<n>` tag. Submitted
/// against a cold daemon so the two distinct jobs genuinely execute
/// concurrently (interactive + deferrable executors interleave their
/// frames); each demuxed response must be byte-identical to a
/// sequential submission of the same spec.
#[test]
fn pipelined_jobs_on_one_connection_demux_byte_identically() {
    let handle = SweepDaemon::bind("127.0.0.1:0").expect("bind").spawn();
    let addr = handle.addr();

    let specs = [
        small_spec(),
        small_spec()
            .with_uops(24_000)
            .with_class(JobClass::Deferrable),
        // A duplicate of the first: its response rides the same
        // connection and must carry the same bytes.
        small_spec(),
    ];

    let mut piped = Client::connect(addr).expect("connect");
    let responses = piped.submit_batch(&specs).expect("batch");
    assert_eq!(responses.len(), specs.len());

    // Sequential twins (now warm: all cache hits, i.e. the stored bytes).
    let mut seq = Client::connect(addr).expect("connect");
    for (got, spec) in responses.iter().zip(&specs) {
        let want = seq.submit(spec).expect("sequential twin");
        assert_eq!(got.status, want.status);
        assert_eq!(got.result_lines, want.result_lines);
        assert_eq!(got.csv_rows, want.csv_rows);
    }
    assert_eq!(responses[0].result_lines, responses[2].result_lines);

    drop(piped);
    seq.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");
}

/// The golden fingerprint pin (ISSUE 7 satellite): the content address
/// of a pinned scenario must never change silently. It may only change
/// when a result-affecting input *consciously* changes — a
/// `TRACE_FORMAT_VERSION` bump, a `JOBSPEC_VERSION` bump, a baseline
/// configuration change, or an intentional fingerprint-schema change —
/// and then this constant must be updated in the same commit, making the
/// cache-key break visible in review.
#[test]
fn golden_fingerprint_is_pinned() {
    let spec = JobSpec::scenario("baseline")
        .with_smoke(true)
        .with_uops(40_000);
    assert_eq!(
        format!("{:016x}", spec.fingerprint().unwrap()),
        "806ec3e355931b6d",
        "the content-address fingerprint for the pinned baseline smoke \
         job changed; if this is intentional (trace-format bump, jobspec \
         version bump, baseline config change), update the golden value \
         in the same commit"
    );
}
