//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset the workspace's benches use:
//! [`Criterion::bench_function`] with [`Bencher::iter`], plus the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a plain
//! mean over `sample_size` iterations after a short warm-up — good enough
//! to spot order-of-magnitude regressions without a registry; swap back to
//! the real crate for statistical rigour when one is available.

use std::time::{Duration, Instant};

/// Benchmark driver, mirroring `criterion::Criterion`.
///
/// As with the real crate, passing `--test` on the command line (e.g.
/// `cargo bench -- --test`) switches to *test mode*: every benchmark body
/// runs exactly once, untimed, so CI can verify benches still work without
/// paying for measurement.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Forces test mode on or off (normally inferred from `--test` in the
    /// process arguments).
    pub fn test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// Times `f` under `id`, printing the mean wall-clock per iteration —
    /// or, in test mode, runs it once and reports success.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: if self.test_mode { 0 } else { self.sample_size },
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("Testing {id} ... ok");
        } else {
            let mean = if b.iters > 0 {
                b.elapsed / b.iters as u32
            } else {
                Duration::ZERO
            };
            println!("{id:<48} {mean:>12.2?}/iter  ({} iters)", b.iters);
        }
        self
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Runs `f` for the configured number of samples (after one warm-up
    /// iteration) and accumulates the elapsed wall-clock time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples;
    }
}

/// Re-export so benches can use `criterion::black_box` as with the real
/// crate.
pub use std::hint::black_box;

/// Declares a benchmark group: a function running each target with the
/// given configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each benchmark group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_samples() {
        let mut count = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("shim/self_test", |b| b.iter(|| count += 1));
        // One warm-up iteration plus five timed samples.
        assert_eq!(count, 6);
    }

    #[test]
    fn test_mode_runs_each_benchmark_exactly_once() {
        let mut count = 0usize;
        Criterion::default()
            .sample_size(50)
            .test_mode(true)
            .bench_function("shim/test_mode", |b| b.iter(|| count += 1));
        // Only the single untimed warm-up iteration runs.
        assert_eq!(count, 1);
    }

    criterion_group! {
        name = demo;
        config = Criterion::default().sample_size(2);
        targets = noop
    }

    fn noop(c: &mut Criterion) {
        c.bench_function("shim/noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo();
    }
}
