//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing exactly the subset this workspace's property tests
//! use: the [`proptest!`] macro (with an optional `proptest_config` inner
//! attribute), `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, range
//! and tuple strategies, [`collection::vec`] and [`bool::ANY`].
//!
//! Sampling is deterministic (SplitMix64 seeded from the test name), so
//! failures reproduce exactly. There is no shrinking: a failing case
//! reports its inputs via the assertion message instead. When a crates.io
//! registry is available this package can be deleted and the real
//! `proptest` dev-dependency restored without touching any test.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the offline suite
        // fast while still sweeping each invariant broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator used for sampling.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Fails the enclosing property (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically sampled
/// inputs. An optional leading `#![proptest_config(expr)]` sets the case
/// count for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        msg
                    );
                }
            }
        }
    )+};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn tuples_sample_elementwise(t in (0u8..2, 0u8..2, 0usize..3)) {
            prop_assert!(t.0 < 2 && t.1 < 2 && t.2 < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_case_count_applies(b in crate::bool::ANY) {
            let seen: u8 = if b { 1 } else { 0 };
            prop_assert!(seen <= 1);
        }
    }
}
