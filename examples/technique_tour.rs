//! Tours every thermal-management technique of the paper on a small
//! application set, printing the temperature reductions each achieves over
//! the baseline — a condensed version of Figs. 12–14.
//!
//! ```sh
//! cargo run --release --example technique_tour
//! # longer, more converged run:
//! cargo run --release --example technique_tour -- 400000
//! ```

use distfront::{average_temps, run_suite, slowdown, ExperimentConfig, AMBIENT_C};
use distfront_trace::AppProfile;

fn main() {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    let apps: Vec<AppProfile> = ["gzip", "gcc", "crafty", "swim", "art", "eon"]
        .iter()
        .map(|n| *AppProfile::by_name(n).expect("known profile"))
        .collect();

    println!(
        "baseline + 6 techniques, {} apps x {uops} uops each",
        apps.len()
    );
    let base = run_suite(&ExperimentConfig::baseline().with_uops(uops), &apps);
    let bt = average_temps(&base);
    println!(
        "baseline:     ROB {:.1}C  RAT {:.1}C  TC {:.1}C  (AbsMax; ambient {AMBIENT_C}C)\n",
        bt.rob.abs_max_c, bt.rat.abs_max_c, bt.trace_cache.abs_max_c
    );

    println!(
        "{:<16} {:>9} {:>21} {:>21} {:>21}",
        "technique", "slowdown", "ROB abs/avg", "RAT abs/avg", "TC abs/avg"
    );
    for cfg in [
        ExperimentConfig::address_biasing(),
        ExperimentConfig::blank_silicon(),
        ExperimentConfig::bank_hopping(),
        ExperimentConfig::hopping_and_biasing(),
        ExperimentConfig::distributed_rename_commit(),
        ExperimentConfig::combined(),
    ] {
        let name = cfg.name;
        let res = run_suite(&cfg.with_uops(uops), &apps);
        let t = average_temps(&res);
        let rob = bt.rob.reduction_vs(&t.rob, AMBIENT_C);
        let rat = bt.rat.reduction_vs(&t.rat, AMBIENT_C);
        let tc = bt.trace_cache.reduction_vs(&t.trace_cache, AMBIENT_C);
        println!(
            "{:<16} {:>8.1}% {:>9.1}% /{:>7.1}% {:>9.1}% /{:>7.1}% {:>9.1}% /{:>7.1}%",
            name,
            slowdown(&base, &res) * 100.0,
            rob.abs_max_c * 100.0,
            rob.average_c * 100.0,
            rat.abs_max_c * 100.0,
            rat.average_c * 100.0,
            tc.abs_max_c * 100.0,
            tc.average_c * 100.0,
        );
    }
}
