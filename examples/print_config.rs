//! Prints the Table 1 processor configuration and the derived machine
//! shape for each evaluated variant.
//!
//! ```sh
//! cargo run --example print_config
//! ```

use distfront::ExperimentConfig;
use distfront_power::Machine;

fn main() {
    let base = ExperimentConfig::baseline();
    let p = &base.processor;
    println!("Table 1 — processor configuration");
    println!(
        "  fetch / dispatch / commit width  {} / {} / {} uops/cycle",
        p.fetch_width, p.dispatch_width, p.commit_width
    );
    println!(
        "  trace cache                      {}K uops, {}-way, {}-cycle fetch-to-dispatch",
        p.trace_cache.total_uops / 1024,
        p.trace_cache.ways,
        p.fetch_to_dispatch
    );
    println!(
        "  decode+rename+steer              {} cycles",
        p.decode_rename_steer
    );
    println!(
        "  UL2                              {} MB, {}-way, {}-cycle hit, {}+ miss",
        p.ul2.capacity >> 20,
        p.ul2.ways,
        p.ul2.hit_latency,
        p.ul2.miss_latency
    );
    println!("  backends                         {} clusters", p.backends);
    println!(
        "  queues per backend               {} int / {} fp / {} copy / {} mem, {} inst/cycle each",
        p.int_queue, p.fp_queue, p.copy_queue, p.mem_queue, p.issue_per_queue
    );
    println!(
        "  dispatch latency                 {} cycles",
        p.dispatch_latency
    );
    println!(
        "  registers per backend            {} int + {} fp",
        p.int_regs, p.fp_regs
    );
    println!(
        "  L1 data cache                    {} KB, {}-way, {}-cycle hit",
        p.l1d.capacity >> 10,
        p.l1d.ways,
        p.l1d.hit_latency
    );
    println!(
        "  links / buses                    {}-cycle hop, {} memory buses, {}-cycle bus",
        p.hop_latency, p.memory_buses, p.bus_latency
    );
    println!(
        "  clock                            {:.0} GHz",
        p.frequency_hz / 1e9
    );
    println!();

    println!("machine shapes under evaluation");
    for cfg in [
        ExperimentConfig::baseline(),
        ExperimentConfig::distributed_rename_commit(),
        ExperimentConfig::bank_hopping(),
        ExperimentConfig::combined(),
    ] {
        let p = &cfg.processor;
        let m = Machine::new(
            p.frontend_mode.partitions(),
            p.backends,
            p.trace_cache.physical_banks(),
        );
        println!(
            "  {:<12} {} frontend partition(s), {} backends, {} TC banks, {} power blocks",
            cfg.name,
            m.partitions,
            m.backends,
            m.tc_banks,
            m.block_count()
        );
    }
}
