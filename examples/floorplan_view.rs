//! Renders the Fig. 10 / Fig. 11 floorplans as ASCII maps with block areas
//! and the adjacency a technique exploits (which blocks can spread heat to
//! which).
//!
//! ```sh
//! cargo run --example floorplan_view
//! ```

use distfront_power::Machine;
use distfront_thermal::Floorplan;

fn render(title: &str, machine: Machine) {
    let fp = Floorplan::for_machine(machine);
    println!("--- {title} ---");
    println!(
        "die {:.1} mm^2 over {} blocks",
        fp.die_area(),
        fp.blocks().len()
    );

    // Coarse ASCII raster: 0.25 mm per cell.
    let scale = 4.0;
    let (mut w, mut h) = (0usize, 0usize);
    for (_, r) in fp.blocks() {
        w = w.max(((r.x + r.w) * scale).ceil() as usize);
        h = h.max(((r.y + r.h) * scale).ceil() as usize);
    }
    let mut grid = vec![vec![' '; w]; h];
    for (i, (_, r)) in fp.blocks().iter().enumerate() {
        let glyph = char::from_digit((i % 36) as u32, 36).unwrap_or('?');
        let y0 = (r.y * scale) as usize;
        let y1 = (((r.y + r.h) * scale).ceil() as usize).min(h);
        let x0 = (r.x * scale) as usize;
        let x1 = (((r.x + r.w) * scale).ceil() as usize).min(w);
        for row in grid.iter_mut().take(y1).skip(y0) {
            for cell in row.iter_mut().take(x1).skip(x0) {
                *cell = glyph;
            }
        }
    }
    for row in grid {
        println!("  {}", row.into_iter().collect::<String>());
    }

    println!("  legend (glyph block area):");
    for (i, (b, r)) in fp.blocks().iter().enumerate() {
        let glyph = char::from_digit((i % 36) as u32, 36).unwrap_or('?');
        if i < 12 || b.is_frontend() {
            println!("    {glyph}  {:<10} {:>6.2} mm^2", b.to_string(), r.area());
        }
    }
    println!(
        "  {} lateral adjacencies feed the RC model",
        fp.adjacency().len()
    );
    println!();
}

fn main() {
    render(
        "Fig. 10 baseline (2-bank trace cache)",
        Machine::new(1, 4, 2),
    );
    render("Fig. 11 bank hopping (2+1 banks)", Machine::new(1, 4, 3));
    render(
        "distributed frontend (split ROB/RAT)",
        Machine::new(2, 4, 2),
    );
}
