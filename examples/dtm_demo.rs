//! Dynamic thermal management demo — measuring the paper's closing claim:
//! *"any technique that reduces the peak temperature may experience smaller
//! slowdowns"* once a thermal-emergency mechanism is enabled.
//!
//! Runs the baseline and the full distributed frontend with a DTM throttle
//! armed slightly below each one's peak, and compares how often the
//! emergency fires and how much wall-clock time the throttle costs.
//!
//! ```sh
//! cargo run --release --example dtm_demo
//! ```

use distfront::{run_app, EmergencyPolicy, ExperimentConfig, AMBIENT_C};
use distfront_trace::AppProfile;

fn main() {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let app = AppProfile::by_name("gzip").expect("known profile");

    // Find the baseline's natural peak, then arm the DTM a few degrees
    // below it so emergencies actually occur.
    let probe = run_app(&ExperimentConfig::baseline().with_uops(uops), app);
    let threshold = probe.temps.processor.abs_max_c - 3.0;
    println!(
        "baseline peak {:.1} C (rise {:.1} C); arming DTM at {threshold:.1} C\n",
        probe.temps.processor.abs_max_c,
        probe.temps.processor.abs_max_c - AMBIENT_C
    );

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "config", "emergencies", "throttled", "peak (C)", "wall (us)"
    );
    for cfg in [ExperimentConfig::baseline(), ExperimentConfig::combined()] {
        let name = cfg.name;
        let r = run_app(
            &cfg.with_uops(uops)
                .with_emergency(EmergencyPolicy::with_threshold(threshold)),
            app,
        );
        println!(
            "{:<12} {:>12} {:>12} {:>12.1} {:>12.1}",
            name,
            r.emergencies,
            r.throttled_intervals,
            r.temps.processor.abs_max_c,
            r.wall_time_s * 1e6,
        );
    }
    println!();
    println!("expected: the distributed frontend runs below the threshold, so");
    println!("it triggers no emergencies and pays no throttle time — the");
    println!("paper's motivation for reducing peak temperature.");
}
