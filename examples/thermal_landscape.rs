//! Per-application thermal landscape: runs the baseline across a spread of
//! SPEC2000-class workloads (compute-bound, memory-bound, FP streaming) and
//! shows how IPC and the frontend/backend temperature split vary — the
//! behaviour behind the paper's Fig. 1 averages.
//!
//! ```sh
//! cargo run --release --example thermal_landscape
//! ```

use distfront::{run_app, ExperimentConfig, AMBIENT_C};
use distfront_trace::AppProfile;

fn main() {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let cfg = ExperimentConfig::baseline().with_uops(uops);

    println!(
        "{:<10} {:>6} {:>7} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "app", "ipc", "tc-hit", "bp-miss", "FE avg dT", "BE avg dT", "UL2 avg dT", "peak dT"
    );
    for name in [
        "gzip", "gcc", "mcf", "crafty", "eon", // int: small, huge-code, mem-bound
        "swim", "mgrid", "art", "equake", "sixtrack", // fp: streaming, mem-bound
    ] {
        let app = AppProfile::by_name(name).expect("known profile");
        let r = run_app(&cfg.clone(), app);
        println!(
            "{:<10} {:>6.2} {:>7.3} {:>7.3} {:>9.1}C {:>9.1}C {:>9.1}C {:>8.1}C",
            name,
            r.ipc,
            r.tc_hit_rate,
            r.mispredict_rate,
            r.temps.frontend.average_c - AMBIENT_C,
            r.temps.backend.average_c - AMBIENT_C,
            r.temps.ul2.average_c - AMBIENT_C,
            r.temps.processor.abs_max_c - AMBIENT_C,
        );
    }
    println!();
    println!("expected shape: compute-bound apps (gzip, crafty, sixtrack) run the");
    println!("frontend hottest; memory-bound apps (mcf, art) idle the core and run");
    println!("cool; the UL2 stays far below the frontend everywhere (Fig. 1).");
}
