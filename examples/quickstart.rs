//! Quickstart: run the paper's baseline processor on one workload and
//! print its performance and thermal profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distfront::{run_app, ExperimentConfig, AMBIENT_C};
use distfront_trace::AppProfile;

fn main() {
    // The baseline machine of Table 1: 8-wide frontend, four backend
    // clusters, 32K-micro-op trace cache in two banks. 200k micro-ops is
    // enough to see the thermal landscape; crank it up for convergence.
    let cfg = ExperimentConfig::baseline().with_uops(200_000);

    // "gzip" is one of the 26 synthetic SPEC2000-class profiles.
    let app = AppProfile::by_name("gzip").expect("known profile");
    println!("running {} on the {} configuration...", app.name, cfg.name);

    let result = run_app(&cfg, app);

    println!();
    println!("performance");
    println!("  cycles         {:>12}", result.cycles);
    println!("  micro-ops      {:>12}", result.uops);
    println!("  IPC            {:>12.3}", result.ipc);
    println!("  TC hit rate    {:>12.3}", result.tc_hit_rate);
    println!("  mispredicts    {:>12.3}", result.mispredict_rate);
    println!("  average power  {:>11.1}W", result.avg_power_w);
    println!();
    println!("temperature rise over the {AMBIENT_C} C ambient (AbsMax / Average)");
    let t = &result.temps;
    for (name, m) in [
        ("reorder buffer", &t.rob),
        ("rename table", &t.rat),
        ("trace cache", &t.trace_cache),
        ("frontend", &t.frontend),
        ("backend", &t.backend),
        ("UL2", &t.ul2),
        ("processor", &t.processor),
    ] {
        println!(
            "  {name:<16} {:>6.1} C / {:>6.1} C",
            m.abs_max_c - AMBIENT_C,
            m.average_c - AMBIENT_C
        );
    }
}
