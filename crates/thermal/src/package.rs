//! Package and material parameters.
//!
//! The paper's thermal solution: a copper heat spreader of
//! 3.1 × 3.1 × 0.23 cm in contact with the die, topped by a copper heat
//! sink of 7 × 8.3 × 4.11 cm (Pentium 4 Northwood class \[17\]), in a 45 °C
//! in-box ambient.

/// Physical parameters of die, interface material and package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackageConfig {
    /// In-box ambient temperature in °C.
    pub ambient_c: f64,
    /// Die thickness in metres.
    pub die_thickness_m: f64,
    /// Silicon thermal conductivity in W/(m·K).
    pub k_silicon: f64,
    /// Silicon volumetric heat capacity in J/(m³·K).
    pub c_silicon: f64,
    /// Thermal-interface-material thickness in metres.
    pub tim_thickness_m: f64,
    /// TIM conductivity in W/(m·K).
    pub k_tim: f64,
    /// Spreader dimensions in metres (side, side, thickness).
    pub spreader_m: (f64, f64, f64),
    /// Sink dimensions in metres.
    pub sink_m: (f64, f64, f64),
    /// Copper volumetric heat capacity in J/(m³·K).
    pub c_copper: f64,
    /// Spreader-to-sink thermal resistance in K/W (conduction + spreading).
    pub r_spreader_sink: f64,
    /// Sink-to-ambient convection resistance in K/W.
    pub r_convection: f64,
}

impl PackageConfig {
    /// The paper's package (§4), with HotSpot-class material constants.
    pub fn paper() -> Self {
        PackageConfig {
            ambient_c: 45.0,
            die_thickness_m: 0.5e-3,
            k_silicon: 100.0, // at operating temperature
            c_silicon: 1.75e6,
            tim_thickness_m: 50e-6,
            k_tim: 2.2,
            spreader_m: (0.031, 0.031, 0.0023),
            sink_m: (0.07, 0.083, 0.0411),
            c_copper: 3.4e6,
            r_spreader_sink: 0.05,
            r_convection: 0.075,
        }
    }

    /// Heat capacity of the spreader in J/K.
    pub fn spreader_capacitance(&self) -> f64 {
        let (a, b, t) = self.spreader_m;
        self.c_copper * a * b * t
    }

    /// Heat capacity of the sink in J/K.
    pub fn sink_capacitance(&self) -> f64 {
        let (a, b, t) = self.sink_m;
        self.c_copper * a * b * t
    }

    /// Vertical resistance from a block of `area_mm2` through the die and
    /// TIM to the spreader, in K/W.
    pub fn vertical_resistance(&self, area_mm2: f64) -> f64 {
        assert!(area_mm2 > 0.0, "block area must be positive");
        let a = area_mm2 * 1e-6; // m²
        self.die_thickness_m / (self.k_silicon * a) + self.tim_thickness_m / (self.k_tim * a)
    }

    /// Heat capacity of the silicon under a block of `area_mm2`, in J/K.
    pub fn block_capacitance(&self, area_mm2: f64) -> f64 {
        self.c_silicon * self.die_thickness_m * area_mm2 * 1e-6
    }

    /// Lateral resistance between two adjacent blocks, in K/W.
    ///
    /// HotSpot's formulation: each block contributes half its extent normal
    /// to the shared edge; heat flows through the die cross-section
    /// `thickness × shared_len`.
    pub fn lateral_resistance(
        &self,
        extent_a_mm: f64,
        extent_b_mm: f64,
        shared_len_mm: f64,
    ) -> f64 {
        assert!(shared_len_mm > 0.0);
        let cross = self.die_thickness_m * shared_len_mm * 1e-3;
        ((extent_a_mm / 2.0) * 1e-3 + (extent_b_mm / 2.0) * 1e-3) / (self.k_silicon * cross)
    }
}

impl Default for PackageConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let p = PackageConfig::paper();
        assert_eq!(p.spreader_m, (0.031, 0.031, 0.0023));
        assert_eq!(p.sink_m, (0.07, 0.083, 0.0411));
        assert_eq!(p.ambient_c, 45.0);
    }

    #[test]
    fn sink_dwarfs_spreader_capacitance() {
        let p = PackageConfig::paper();
        assert!(p.sink_capacitance() > 50.0 * p.spreader_capacitance() / 10.0);
        assert!(
            p.sink_capacitance() > 100.0,
            "sink should be hundreds of J/K"
        );
    }

    #[test]
    fn vertical_resistance_scales_inversely_with_area() {
        let p = PackageConfig::paper();
        let r1 = p.vertical_resistance(1.0);
        let r4 = p.vertical_resistance(4.0);
        assert!((r1 / r4 - 4.0).abs() < 1e-9);
        // Order of magnitude: a few K/W for mm²-scale blocks.
        assert!((1.0..40.0).contains(&r1), "Rv(1mm²) = {r1}");
    }

    #[test]
    fn lateral_resistance_positive_and_sane() {
        let p = PackageConfig::paper();
        let r = p.lateral_resistance(2.0, 3.0, 1.5);
        assert!(r > 0.0);
        // Longer shared edges conduct better.
        assert!(p.lateral_resistance(2.0, 3.0, 3.0) < r);
    }

    #[test]
    fn block_capacitance_order_of_magnitude() {
        let p = PackageConfig::paper();
        // ~0.9 mJ/K per mm² of die.
        let c = p.block_capacitance(1.0);
        assert!((0.5e-3..2e-3).contains(&c), "C(1mm²) = {c}");
    }
}
