//! Steady-state and transient solution of the thermal network.
//!
//! The steady state (used to warm-start simulations, §4) solves the linear
//! system `(L + diag(G_amb)) · T = P + G_amb · T_amb`. The matrix depends
//! only on the network, never on the power vector, so the solver factors
//! it **once** at construction ([`SteadyFactor`], LU with partial
//! pivoting) and every subsequent solve — including each round of the
//! leakage↔temperature fixed point that warm-starts a run — is a pair of
//! O(n²) triangular substitutions instead of an O(n³) elimination.
//! [`ThermalSolver::solve_steady_dense`] keeps the single-shot Gaussian
//! elimination as a cross-check reference.
//!
//! Transients integrate `C · dT/dt = P − L·T − G_amb·(T − T_amb)`. The
//! production path is the cached matrix-exponential propagator in
//! [`crate::expm`] ([`ExpPropagator`](crate::expm::ExpPropagator)), which
//! is exact for the piecewise-constant power the engine supplies and
//! advances a whole interval in two dense mat-vecs; the RK4 integrator
//! here ([`ThermalSolver::advance`], sub-stepped below the network's
//! smallest time constant for stability) is kept as the cross-check
//! reference and remains selectable with `--integrator rk4`.

use crate::rc::ThermalNetwork;

/// LU factorization (partial pivoting) of a steady-state system matrix,
/// reusable across right-hand sides.
///
/// # Examples
///
/// ```
/// use distfront_thermal::solver::SteadyFactor;
///
/// // [[2, 1], [1, 3]] · x = [3, 4]  =>  x = [1, 1]
/// let f = SteadyFactor::factor(vec![vec![2.0, 1.0], vec![1.0, 3.0]]);
/// let x = f.solve(&[3.0, 4.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SteadyFactor {
    /// Packed L (unit diagonal, below) and U (on and above the diagonal).
    lu: Vec<Vec<f64>>,
    /// Row permutation applied before substitution.
    perm: Vec<usize>,
}

impl SteadyFactor {
    /// Factors a square matrix, consuming it.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or is singular.
    pub fn factor(mut a: Vec<Vec<f64>>) -> Self {
        let n = a.len();
        for row in &a {
            assert_eq!(row.len(), n, "matrix must be square");
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&i, &j| {
                    a[i][col]
                        .abs()
                        .partial_cmp(&a[j][col].abs())
                        .expect("finite")
                })
                .expect("non-empty");
            assert!(a[pivot][col].abs() > 1e-14, "singular thermal system");
            a.swap(col, pivot);
            perm.swap(col, pivot);
            for row in (col + 1)..n {
                let (upper, lower) = a.split_at_mut(row);
                let pivot_row = &upper[col];
                let cur = &mut lower[0];
                let f = cur[col] / pivot_row[col];
                cur[col] = f;
                if f == 0.0 {
                    continue;
                }
                for (c, p) in cur[col + 1..].iter_mut().zip(&pivot_row[col + 1..]) {
                    *c -= f * p;
                }
            }
        }
        SteadyFactor { lu: a, perm }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.len()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.len();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward substitution on the permuted rhs (L has a unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for row in 1..n {
            let (solved, rest) = x.split_at_mut(row);
            let mut acc = rest[0];
            for (l, v) in self.lu[row][..row].iter().zip(solved.iter()) {
                acc -= l * v;
            }
            rest[0] = acc;
        }
        // Back substitution through U.
        for row in (0..n).rev() {
            let (head, solved) = x.split_at_mut(row + 1);
            let mut acc = head[row];
            for (u, v) in self.lu[row][row + 1..].iter().zip(solved.iter()) {
                acc -= u * v;
            }
            head[row] = acc / self.lu[row][row];
        }
        x
    }
}

/// Owns the temperature state of a [`ThermalNetwork`] and advances it.
///
/// # Examples
///
/// ```
/// use distfront_power::Machine;
/// use distfront_thermal::{Floorplan, PackageConfig, ThermalNetwork, ThermalSolver};
///
/// let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
/// let net = ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper());
/// let mut solver = ThermalSolver::new(net);
/// let power = vec![0.5; solver.network().block_count()];
/// solver.set_steady_state(&power);
/// assert!(solver.block_temperatures()[0] > 45.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSolver {
    net: ThermalNetwork,
    /// Node temperatures in °C.
    t: Vec<f64>,
    /// Cached stable sub-step in seconds.
    dt_max: f64,
    /// LU factorization of the steady-state matrix, shared by every solve.
    steady: SteadyFactor,
}

impl ThermalSolver {
    /// Creates a solver with every node at ambient; the steady-state
    /// system matrix is assembled and factored here, once.
    pub fn new(net: ThermalNetwork) -> Self {
        let t = vec![net.ambient_c(); net.node_count()];
        // RK4 is stable to ~2.8·τ; τ/8 keeps the local error far below
        // the tenth-of-a-degree resolution the experiments care about.
        let dt_max = net.min_time_constant() / 8.0;
        let steady = SteadyFactor::factor(assemble_matrix(&net));
        ThermalSolver {
            net,
            t,
            dt_max,
            steady,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &ThermalNetwork {
        &self.net
    }

    /// All node temperatures (blocks, then spreader, then sink) in °C.
    pub fn temperatures(&self) -> &[f64] {
        &self.t
    }

    /// Block temperatures only, in °C.
    pub fn block_temperatures(&self) -> &[f64] {
        &self.t[..self.net.block_count()]
    }

    /// Overwrites the state (for tests / checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the node count.
    pub fn set_temperatures(&mut self, t: Vec<f64>) {
        assert_eq!(t.len(), self.net.node_count());
        self.t = t;
    }

    /// Solves for the steady state under constant block `power` and adopts
    /// it as the current state.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block, or the network
    /// is disconnected from ambient (singular system).
    pub fn set_steady_state(&mut self, power: &[f64]) {
        let t = self.solve_steady(power);
        self.t = t;
    }

    /// Computes the steady-state temperatures without changing the state,
    /// reusing the factorization done at construction.
    pub fn solve_steady(&self, power: &[f64]) -> Vec<f64> {
        assert_eq!(
            power.len(),
            self.net.block_count(),
            "one power entry per block"
        );
        self.steady.solve(&assemble_rhs(&self.net, power))
    }

    /// Reference steady-state solve by single-shot Gaussian elimination
    /// (re-assembling and eliminating the full matrix every call). Kept as
    /// a cross-check for the factored path; prefer [`Self::solve_steady`].
    pub fn solve_steady_dense(&self, power: &[f64]) -> Vec<f64> {
        assert_eq!(
            power.len(),
            self.net.block_count(),
            "one power entry per block"
        );
        let mut a = assemble_matrix(&self.net);
        let mut b = assemble_rhs(&self.net, power);
        gaussian_solve(&mut a, &mut b)
    }

    /// Advances the transient state by `dt` seconds under constant block
    /// `power`, sub-stepping internally for stability.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block or `dt` is not
    /// positive.
    pub fn advance(&mut self, power: &[f64], dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        assert_eq!(power.len(), self.net.block_count());
        let steps = (dt / self.dt_max).ceil().max(1.0) as usize;
        let h = dt / steps as f64;
        for _ in 0..steps {
            self.rk4_step(power, h);
        }
    }

    fn derivative(&self, t: &[f64], power: &[f64]) -> Vec<f64> {
        let q = self.net.heat_balance(t, power);
        q.iter()
            .zip(self.net.capacitances())
            .map(|(&qi, &ci)| qi / ci)
            .collect()
    }

    fn rk4_step(&mut self, power: &[f64], h: f64) {
        let n = self.t.len();
        let k1 = self.derivative(&self.t, power);
        let mut tmp = vec![0.0; n];
        for i in 0..n {
            tmp[i] = self.t[i] + 0.5 * h * k1[i];
        }
        let k2 = self.derivative(&tmp, power);
        for i in 0..n {
            tmp[i] = self.t[i] + 0.5 * h * k2[i];
        }
        let k3 = self.derivative(&tmp, power);
        for i in 0..n {
            tmp[i] = self.t[i] + h * k3[i];
        }
        let k4 = self.derivative(&tmp, power);
        for i in 0..n {
            self.t[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
}

/// Assembles the steady-state system matrix `A = L + diag(g_amb)`
/// (shared with the matrix-exponential propagator in [`crate::expm`]).
pub(crate) fn assemble_matrix(net: &ThermalNetwork) -> Vec<Vec<f64>> {
    let n = net.node_count();
    let mut a = vec![vec![0.0f64; n]; n];
    for (i, row) in a.iter_mut().enumerate() {
        let mut diag = net.ambient_conductances()[i];
        for (j, cell) in row.iter_mut().enumerate() {
            if i != j {
                let g = net.conductance(i, j);
                *cell = -g;
                diag += g;
            }
        }
        row[i] = diag;
    }
    a
}

/// Assembles the right-hand side `b = P_ext + g_amb · T_amb`
/// (shared with the matrix-exponential propagator in [`crate::expm`]).
pub(crate) fn assemble_rhs(net: &ThermalNetwork, power: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0f64; net.node_count()];
    assemble_rhs_into(net, power, &mut out);
    out
}

/// Allocation-free variant of [`assemble_rhs`]: writes the right-hand
/// side into a caller-provided node-count slice (the propagators' hot
/// paths reuse scratch buffers across intervals).
pub(crate) fn assemble_rhs_into(net: &ThermalNetwork, power: &[f64], out: &mut [f64]) {
    let nb = net.block_count();
    assert_eq!(out.len(), net.node_count(), "rhs length mismatch");
    for (i, o) in out.iter_mut().enumerate() {
        let p = if i < nb { power[i] } else { 0.0 };
        *o = p + net.ambient_conductances()[i] * net.ambient_c();
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting,
/// consuming the inputs.
///
/// # Panics
///
/// Panics if the system is singular.
fn gaussian_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        assert!(a[pivot][col].abs() > 1e-14, "singular thermal system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            let cur = &mut lower[0];
            let f = cur[col] / pivot_row[col];
            if f == 0.0 {
                continue;
            }
            for (c, p) in cur[col..].iter_mut().zip(&pivot_row[col..]) {
                *c -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;
    use distfront_power::Machine;

    fn solver() -> ThermalSolver {
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()))
    }

    /// A single RC node against the analytic solution
    /// `T(t) = T_inf + (T0 - T_inf)·e^(−t/RC)`.
    #[test]
    fn transient_matches_analytic_single_rc() {
        let g = vec![vec![0.0]];
        let net = ThermalNetwork::from_parts(g, vec![0.5], vec![2.0], 45.0, 1);
        let mut s = ThermalSolver::new(net);
        let p = [10.0]; // T_inf = 45 + 10/0.5 = 65, tau = C/G = 4 s.
        let dt = 1.0;
        s.advance(&p, dt);
        let analytic = 65.0 + (45.0f64 - 65.0) * (-dt / 4.0).exp();
        assert!(
            (s.temperatures()[0] - analytic).abs() < 1e-4,
            "rk4 {} vs analytic {analytic}",
            s.temperatures()[0]
        );
    }

    #[test]
    fn steady_state_conserves_energy() {
        let mut s = solver();
        let nb = s.network().block_count();
        let power: Vec<f64> = (0..nb).map(|i| 0.2 + 0.05 * i as f64).collect();
        let total: f64 = power.iter().sum();
        s.set_steady_state(&power);
        // All heat must leave through the sink's convection path.
        let sink = s.network().node_count() - 1;
        let g_conv = s.network().ambient_conductances()[sink];
        let out = g_conv * (s.temperatures()[sink] - 45.0);
        assert!(
            (out - total).abs() / total < 1e-9,
            "in {total} W, out {out} W"
        );
    }

    #[test]
    fn steady_state_above_ambient_and_hot_blocks_hotter() {
        let mut s = solver();
        let nb = s.network().block_count();
        let mut power = vec![0.1; nb];
        power[0] = 8.0; // ROB blasted
        s.set_steady_state(&power);
        let t = s.block_temperatures();
        assert!(t.iter().all(|&x| x > 45.0));
        let hottest = t
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(hottest, 0, "powered block should be hottest");
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut s = solver();
        let nb = s.network().block_count();
        let power = vec![0.5; nb];
        let steady = s.solve_steady(&power);
        // Perturb only the block nodes: the package nodes keep their
        // steady values (the sink alone has an hours-long time constant).
        let mut init = steady.clone();
        for t in init.iter_mut().take(nb) {
            *t -= 1.0;
        }
        s.set_temperatures(init);
        for _ in 0..50 {
            s.advance(&power, 0.01);
        }
        for (i, (&got, &want)) in s.temperatures().iter().zip(&steady).enumerate().take(nb) {
            assert!((got - want).abs() < 0.5, "node {i}: {got} vs steady {want}");
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut s = solver();
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.1);
        for &t in s.temperatures() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lateral_coupling_spreads_heat() {
        // Power only the ROB; its neighbours must still warm above remote
        // blocks.
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        let m = fp.machine();
        let rob = m.index_of(distfront_power::BlockId::Rob(0));
        let rat = m.index_of(distfront_power::BlockId::Rat(0));
        let far = m.index_of(distfront_power::BlockId::IntSched(3));
        let mut s =
            ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()));
        let mut power = vec![0.0; s.network().block_count()];
        power[rob] = 6.0;
        s.set_steady_state(&power);
        let t = s.block_temperatures();
        assert!(t[rat] > t[far] + 0.5, "RAT {} vs far {}", t[rat], t[far]);
    }

    #[test]
    fn advance_substeps_long_intervals() {
        // A 1 ms call with µs-scale taus must still be stable.
        let mut s = solver();
        let nb = s.network().block_count();
        s.advance(&vec![1.0; nb], 1e-3);
        for &t in s.temperatures() {
            assert!(t.is_finite() && t < 200.0, "diverged: {t}");
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut s = solver();
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.0);
    }

    #[test]
    fn lu_matches_gaussian_reference() {
        let s = solver();
        let nb = s.network().block_count();
        let power: Vec<f64> = (0..nb).map(|i| 0.1 + 0.03 * i as f64).collect();
        let lu = s.solve_steady(&power);
        let dense = s.solve_steady_dense(&power);
        for (i, (a, b)) in lu.iter().zip(&dense).enumerate() {
            assert!((a - b).abs() < 1e-9, "node {i}: LU {a} vs Gaussian {b}");
        }
    }

    #[test]
    fn factor_reuse_is_exact_across_rhs() {
        // Two different power vectors through the same factorization give
        // the same answers as freshly eliminated systems.
        let s = solver();
        let nb = s.network().block_count();
        for scale in [0.2, 3.0] {
            let power = vec![scale; nb];
            let lu = s.solve_steady(&power);
            let dense = s.solve_steady_dense(&power);
            for (a, b) in lu.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_rejected() {
        SteadyFactor::factor(vec![vec![1.0, 1.0], vec![1.0, 1.0]]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;
    use distfront_power::Machine;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Steady-state temperatures are monotone in power: adding power
        /// anywhere never cools any block.
        #[test]
        fn steady_state_monotone_in_power(
            extra_idx in 0usize..48,
            extra in 0.1f64..5.0,
        ) {
            let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
            let s = ThermalSolver::new(ThermalNetwork::from_floorplan(
                &fp, &PackageConfig::paper()));
            let base_p = vec![0.3; 48];
            let base = s.solve_steady(&base_p);
            let mut boosted_p = base_p.clone();
            boosted_p[extra_idx] += extra;
            let boosted = s.solve_steady(&boosted_p);
            for i in 0..48 {
                prop_assert!(boosted[i] >= base[i] - 1e-9);
            }
        }
    }
}
