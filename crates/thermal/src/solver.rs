//! Steady-state and transient solution of the thermal network.
//!
//! The steady state (used to warm-start simulations, §4) solves the linear
//! system `(L + diag(G_amb)) · T = P + G_amb · T_amb` by Gaussian
//! elimination — the networks are ~50 nodes, so a dense solve is instant.
//! Transients integrate `C · dT/dt = P − L·T − G_amb·(T − T_amb)` with RK4,
//! sub-stepping below the network's smallest time constant for stability.

use crate::rc::ThermalNetwork;

/// Owns the temperature state of a [`ThermalNetwork`] and advances it.
///
/// # Examples
///
/// ```
/// use distfront_power::Machine;
/// use distfront_thermal::{Floorplan, PackageConfig, ThermalNetwork, ThermalSolver};
///
/// let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
/// let net = ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper());
/// let mut solver = ThermalSolver::new(net);
/// let power = vec![0.5; solver.network().block_count()];
/// solver.set_steady_state(&power);
/// assert!(solver.block_temperatures()[0] > 45.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSolver {
    net: ThermalNetwork,
    /// Node temperatures in °C.
    t: Vec<f64>,
    /// Cached stable sub-step in seconds.
    dt_max: f64,
}

impl ThermalSolver {
    /// Creates a solver with every node at ambient.
    pub fn new(net: ThermalNetwork) -> Self {
        let t = vec![net.ambient_c(); net.node_count()];
        // RK4 is stable to ~2.8·τ; τ/4 keeps the local error far below
        // the tenth-of-a-degree resolution the experiments care about.
        let dt_max = net.min_time_constant() / 8.0;
        ThermalSolver { net, t, dt_max }
    }

    /// The underlying network.
    pub fn network(&self) -> &ThermalNetwork {
        &self.net
    }

    /// All node temperatures (blocks, then spreader, then sink) in °C.
    pub fn temperatures(&self) -> &[f64] {
        &self.t
    }

    /// Block temperatures only, in °C.
    pub fn block_temperatures(&self) -> &[f64] {
        &self.t[..self.net.block_count()]
    }

    /// Overwrites the state (for tests / checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the node count.
    pub fn set_temperatures(&mut self, t: Vec<f64>) {
        assert_eq!(t.len(), self.net.node_count());
        self.t = t;
    }

    /// Solves for the steady state under constant block `power` and adopts
    /// it as the current state.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block, or the network
    /// is disconnected from ambient (singular system).
    pub fn set_steady_state(&mut self, power: &[f64]) {
        let t = self.solve_steady(power);
        self.t = t;
    }

    /// Computes the steady-state temperatures without changing the state.
    pub fn solve_steady(&self, power: &[f64]) -> Vec<f64> {
        let n = self.net.node_count();
        let nb = self.net.block_count();
        assert_eq!(power.len(), nb, "one power entry per block");
        // Assemble A = L + diag(g_amb), b = P_ext + g_amb * T_amb.
        let mut a = vec![vec![0.0f64; n]; n];
        let mut b = vec![0.0f64; n];
        for i in 0..n {
            let mut diag = self.net.ambient_conductances()[i];
            for j in 0..n {
                if i != j {
                    let g = self.net.conductance(i, j);
                    a[i][j] = -g;
                    diag += g;
                }
            }
            a[i][i] = diag;
            b[i] = if i < nb { power[i] } else { 0.0 }
                + self.net.ambient_conductances()[i] * self.net.ambient_c();
        }
        gaussian_solve(&mut a, &mut b)
    }

    /// Advances the transient state by `dt` seconds under constant block
    /// `power`, sub-stepping internally for stability.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block or `dt` is not
    /// positive.
    pub fn advance(&mut self, power: &[f64], dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        assert_eq!(power.len(), self.net.block_count());
        let steps = (dt / self.dt_max).ceil().max(1.0) as usize;
        let h = dt / steps as f64;
        for _ in 0..steps {
            self.rk4_step(power, h);
        }
    }

    fn derivative(&self, t: &[f64], power: &[f64]) -> Vec<f64> {
        let q = self.net.heat_balance(t, power);
        q.iter()
            .zip(self.net.capacitances())
            .map(|(&qi, &ci)| qi / ci)
            .collect()
    }

    fn rk4_step(&mut self, power: &[f64], h: f64) {
        let n = self.t.len();
        let k1 = self.derivative(&self.t, power);
        let mut tmp = vec![0.0; n];
        for i in 0..n {
            tmp[i] = self.t[i] + 0.5 * h * k1[i];
        }
        let k2 = self.derivative(&tmp, power);
        for i in 0..n {
            tmp[i] = self.t[i] + 0.5 * h * k2[i];
        }
        let k3 = self.derivative(&tmp, power);
        for i in 0..n {
            tmp[i] = self.t[i] + h * k3[i];
        }
        let k4 = self.derivative(&tmp, power);
        for i in 0..n {
            self.t[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting,
/// consuming the inputs.
///
/// # Panics
///
/// Panics if the system is singular.
fn gaussian_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        assert!(a[pivot][col].abs() > 1e-14, "singular thermal system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;
    use distfront_power::Machine;

    fn solver() -> ThermalSolver {
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()))
    }

    /// A single RC node against the analytic solution
    /// `T(t) = T_inf + (T0 - T_inf)·e^(−t/RC)`.
    #[test]
    fn transient_matches_analytic_single_rc() {
        let g = vec![vec![0.0]];
        let net = ThermalNetwork::from_parts(g, vec![0.5], vec![2.0], 45.0, 1);
        let mut s = ThermalSolver::new(net);
        let p = [10.0]; // T_inf = 45 + 10/0.5 = 65, tau = C/G = 4 s.
        let dt = 1.0;
        s.advance(&p, dt);
        let analytic = 65.0 + (45.0f64 - 65.0) * (-dt / 4.0).exp();
        assert!(
            (s.temperatures()[0] - analytic).abs() < 1e-4,
            "rk4 {} vs analytic {analytic}",
            s.temperatures()[0]
        );
    }

    #[test]
    fn steady_state_conserves_energy() {
        let mut s = solver();
        let nb = s.network().block_count();
        let power: Vec<f64> = (0..nb).map(|i| 0.2 + 0.05 * i as f64).collect();
        let total: f64 = power.iter().sum();
        s.set_steady_state(&power);
        // All heat must leave through the sink's convection path.
        let sink = s.network().node_count() - 1;
        let g_conv = s.network().ambient_conductances()[sink];
        let out = g_conv * (s.temperatures()[sink] - 45.0);
        assert!(
            (out - total).abs() / total < 1e-9,
            "in {total} W, out {out} W"
        );
    }

    #[test]
    fn steady_state_above_ambient_and_hot_blocks_hotter() {
        let mut s = solver();
        let nb = s.network().block_count();
        let mut power = vec![0.1; nb];
        power[0] = 8.0; // ROB blasted
        s.set_steady_state(&power);
        let t = s.block_temperatures();
        assert!(t.iter().all(|&x| x > 45.0));
        let hottest = t
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(hottest, 0, "powered block should be hottest");
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut s = solver();
        let nb = s.network().block_count();
        let power = vec![0.5; nb];
        let steady = s.solve_steady(&power);
        // Perturb only the block nodes: the package nodes keep their
        // steady values (the sink alone has an hours-long time constant).
        let mut init = steady.clone();
        for t in init.iter_mut().take(nb) {
            *t -= 1.0;
        }
        s.set_temperatures(init);
        for _ in 0..50 {
            s.advance(&power, 0.01);
        }
        for (i, (&got, &want)) in s
            .temperatures()
            .iter()
            .zip(&steady)
            .enumerate()
            .take(nb)
        {
            assert!(
                (got - want).abs() < 0.5,
                "node {i}: {got} vs steady {want}"
            );
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut s = solver();
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.1);
        for &t in s.temperatures() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lateral_coupling_spreads_heat() {
        // Power only the ROB; its neighbours must still warm above remote
        // blocks.
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        let m = fp.machine();
        let rob = m.index_of(distfront_power::BlockId::Rob(0));
        let rat = m.index_of(distfront_power::BlockId::Rat(0));
        let far = m.index_of(distfront_power::BlockId::IntSched(3));
        let mut s =
            ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()));
        let mut power = vec![0.0; s.network().block_count()];
        power[rob] = 6.0;
        s.set_steady_state(&power);
        let t = s.block_temperatures();
        assert!(t[rat] > t[far] + 0.5, "RAT {} vs far {}", t[rat], t[far]);
    }

    #[test]
    fn advance_substeps_long_intervals() {
        // A 1 ms call with µs-scale taus must still be stable.
        let mut s = solver();
        let nb = s.network().block_count();
        s.advance(&vec![1.0; nb], 1e-3);
        for &t in s.temperatures() {
            assert!(t.is_finite() && t < 200.0, "diverged: {t}");
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut s = solver();
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;
    use distfront_power::Machine;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Steady-state temperatures are monotone in power: adding power
        /// anywhere never cools any block.
        #[test]
        fn steady_state_monotone_in_power(
            extra_idx in 0usize..48,
            extra in 0.1f64..5.0,
        ) {
            let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
            let s = ThermalSolver::new(ThermalNetwork::from_floorplan(
                &fp, &PackageConfig::paper()));
            let base_p = vec![0.3; 48];
            let base = s.solve_steady(&base_p);
            let mut boosted_p = base_p.clone();
            boosted_p[extra_idx] += extra;
            let boosted = s.solve_steady(&boosted_p);
            for i in 0..48 {
                prop_assert!(boosted[i] >= base[i] - 1e-9);
            }
        }
    }
}
