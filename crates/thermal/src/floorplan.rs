//! Processor floorplans (Figs. 10 and 11 of the paper).
//!
//! The baseline floorplan places the frontend strip (ROB on top; RAT, ITLB
//! and TC-0 in the middle row; DECO, BP and TC-1 below) next to the UL2,
//! with the four backend clusters beneath. The bank-hopping variant
//! (Fig. 11) re-arranges the strip for three banks so the extra bank
//! surrounds hot blocks with cold ones; the distributed-frontend variant
//! splits ROB and RAT in place, each partition kept at the original
//! location as the paper describes, with the ~3 % processor-area overhead
//! of §4.1.
//!
//! Dimensions are in millimetres for a 65 nm design; what matters to the
//! model is relative areas and adjacency, both of which follow the paper's
//! figures.

use distfront_power::blocks::{BlockId, Machine};

/// An axis-aligned rectangle in millimetres (`x` grows right, `y` grows
/// down, as in the paper's figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the width or height is not positive.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        assert!(w > 0.0 && h > 0.0, "degenerate rectangle {w}x{h}");
        Rect { x, y, w, h }
    }

    /// Area in mm².
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Centre point.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Length of the shared boundary with `other` (0 when not adjacent).
    /// Two rects are adjacent when they touch along an edge within `eps`.
    pub fn shared_edge(&self, other: &Rect, eps: f64) -> f64 {
        let x_overlap = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let y_overlap = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        // Vertically stacked (touching horizontally-running edge).
        let touch_h =
            ((self.y + self.h) - other.y).abs() < eps || ((other.y + other.h) - self.y).abs() < eps;
        // Side by side (touching vertically-running edge).
        let touch_v =
            ((self.x + self.w) - other.x).abs() < eps || ((other.x + other.w) - self.x).abs() < eps;
        if touch_h && x_overlap > eps {
            x_overlap
        } else if touch_v && y_overlap > eps {
            y_overlap
        } else {
            0.0
        }
    }
}

/// A named floorplan: one rectangle per functional block.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    machine: Machine,
    blocks: Vec<(BlockId, Rect)>,
}

impl Floorplan {
    /// Builds the floorplan for `machine`, reproducing Fig. 10 (baseline),
    /// Fig. 11 (three-bank hopping strip) and the in-place ROB/RAT split of
    /// the distributed frontend, as applicable.
    ///
    /// # Panics
    ///
    /// Panics for machine shapes the paper does not evaluate (more than 2
    /// partitions, fewer than 2 or more than 3 trace-cache banks).
    pub fn for_machine(machine: Machine) -> Self {
        assert!(
            machine.partitions <= 2,
            "paper evaluates at most 2 frontend partitions"
        );
        assert!(
            (2..=3).contains(&machine.tc_banks),
            "paper evaluates 2 or 3 trace-cache banks"
        );
        let mut blocks = Vec::with_capacity(machine.block_count());

        // --- Frontend strip -------------------------------------------------
        // Block widths are fixed so a block's area never changes between
        // configurations unless the paper says it does: the spare hopping
        // bank adds its own area (+~2 % die, paper reports 1.6 %) and the
        // distributed ROB/RAT split grows those structures (+~3 %, §4.1);
        // nothing else moves or resizes.
        let three_banks = machine.tc_banks == 3;
        let distributed = machine.partitions == 2;
        let rob_w = 5.0;
        // The split roughly doubles ROB and RAT (the paper's ~3 % processor
        // area overhead, which halves their power density given the ~0.9x
        // total power of the distributed organization).
        let rob_h = if distributed { 0.36 } else { 0.18 };
        let rat_w = if distributed { 1.0 } else { 0.5 };
        let (itlb_w, deco_w, bp_w, tc_w) = (1.2, 1.8, 1.2, 2.0);
        let row_h = 1.6;
        let row2 = rob_h;
        let row3 = rob_h + row_h;
        let fe_h = rob_h + 2.0 * row_h;

        if distributed {
            // Two partitions side by side in the original ROB location.
            blocks.push((BlockId::Rob(0), Rect::new(0.0, 0.0, rob_w / 2.0, rob_h)));
            blocks.push((
                BlockId::Rob(1),
                Rect::new(rob_w / 2.0, 0.0, rob_w / 2.0, rob_h),
            ));
        } else {
            blocks.push((BlockId::Rob(0), Rect::new(0.0, 0.0, rob_w, rob_h)));
        }

        // Helper to place the (possibly split) RAT at a row position.
        let push_rat = |blocks: &mut Vec<(BlockId, Rect)>, x: f64, y: f64| {
            if distributed {
                blocks.push((BlockId::Rat(0), Rect::new(x, y, rat_w, row_h / 2.0)));
                blocks.push((
                    BlockId::Rat(1),
                    Rect::new(x, y + row_h / 2.0, rat_w, row_h / 2.0),
                ));
            } else {
                blocks.push((BlockId::Rat(0), Rect::new(x, y, rat_w, row_h)));
            }
        };

        let strip_w;
        if three_banks {
            // Fig. 11 strip:   ROB
            //                  DECO  TC-0  ITLB
            //                  RAT  TC-1  BP  TC-2
            let mut x = 0.0;
            blocks.push((BlockId::Deco, Rect::new(x, row2, deco_w, row_h)));
            x += deco_w;
            blocks.push((BlockId::TcBank(0), Rect::new(x, row2, tc_w, row_h)));
            x += tc_w;
            blocks.push((BlockId::Itlb, Rect::new(x, row2, itlb_w, row_h)));

            let mut x = 0.0;
            push_rat(&mut blocks, x, row3);
            x += rat_w;
            blocks.push((BlockId::TcBank(1), Rect::new(x, row3, tc_w, row_h)));
            x += tc_w;
            blocks.push((BlockId::Bp, Rect::new(x, row3, bp_w, row_h)));
            x += bp_w;
            blocks.push((BlockId::TcBank(2), Rect::new(x, row3, tc_w, row_h)));
            strip_w = (x + tc_w).max(rob_w);
        } else {
            // Fig. 10 strip:   ROB
            //                  RAT  ITLB  TC-0
            //                  DECO  BP   TC-1
            let mut x = 0.0;
            push_rat(&mut blocks, x, row2);
            x += rat_w;
            blocks.push((BlockId::Itlb, Rect::new(x, row2, itlb_w, row_h)));
            x += itlb_w;
            blocks.push((BlockId::TcBank(0), Rect::new(x, row2, tc_w, row_h)));
            strip_w = (x + tc_w).max(rob_w);

            let mut x = 0.0;
            blocks.push((BlockId::Deco, Rect::new(x, row3, deco_w, row_h)));
            x += deco_w;
            blocks.push((BlockId::Bp, Rect::new(x, row3, bp_w, row_h)));
            x += bp_w;
            blocks.push((BlockId::TcBank(1), Rect::new(x, row3, tc_w, row_h)));
        }

        // --- UL2 to the right of the frontend strip -------------------------
        // Fixed 24 mm² regardless of frontend variant, so the UL2's own
        // thermal behaviour never confounds a technique comparison.
        blocks.push((BlockId::Ul2, Rect::new(strip_w, 0.0, 6.0, 4.0)));

        // --- Backend clusters below ------------------------------------------
        let cl_w = 2.75;
        let cluster_y = fe_h.max(4.0); // never under the UL2
        for c in 0..machine.backends {
            let ox = c as f64 * cl_w;
            let oy = cluster_y;
            let c8 = c as u8;
            let u = cl_w / 3.0; // local horizontal unit
            blocks.push((BlockId::Dl1(c8), Rect::new(ox, oy, 2.2 * u, 1.2)));
            blocks.push((BlockId::Dtlb(c8), Rect::new(ox + 2.2 * u, oy, 0.8 * u, 1.2)));
            blocks.push((BlockId::FpFu(c8), Rect::new(ox, oy + 1.2, u, 1.2)));
            blocks.push((BlockId::IntFu(c8), Rect::new(ox + u, oy + 1.2, u, 1.2)));
            blocks.push((BlockId::Mob(c8), Rect::new(ox + 2.0 * u, oy + 1.2, u, 1.2)));
            blocks.push((BlockId::Fprf(c8), Rect::new(ox, oy + 2.4, 1.5 * u, 0.9)));
            blocks.push((
                BlockId::Irf(c8),
                Rect::new(ox + 1.5 * u, oy + 2.4, 1.5 * u, 0.9),
            ));
            blocks.push((BlockId::FpSched(c8), Rect::new(ox, oy + 3.3, u, 1.2)));
            blocks.push((BlockId::CopySched(c8), Rect::new(ox + u, oy + 3.3, u, 1.2)));
            blocks.push((
                BlockId::IntSched(c8),
                Rect::new(ox + 2.0 * u, oy + 3.3, u, 1.2),
            ));
        }

        let fp = Floorplan { machine, blocks };
        debug_assert_eq!(fp.blocks.len(), machine.block_count());
        fp
    }

    /// The machine shape this floorplan was built for.
    pub fn machine(&self) -> Machine {
        self.machine
    }

    /// Blocks with their rectangles, in the machine's canonical order.
    pub fn blocks(&self) -> &[(BlockId, Rect)] {
        &self.blocks
    }

    /// The rectangle of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is not part of this floorplan.
    pub fn rect_of(&self, block: BlockId) -> Rect {
        self.blocks
            .iter()
            .find(|(b, _)| *b == block)
            .unwrap_or_else(|| panic!("block {block} not in floorplan"))
            .1
    }

    /// Areas in canonical block order, in mm².
    pub fn areas(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.machine.block_count()];
        for (b, r) in &self.blocks {
            v[self.machine.index_of(*b)] = r.area();
        }
        v
    }

    /// Total die area in mm² (sum of block areas; the floorplans tile the
    /// die with negligible dead space).
    pub fn die_area(&self) -> f64 {
        self.blocks.iter().map(|(_, r)| r.area()).sum()
    }

    /// Pairs of adjacent blocks with the length of their shared edge, in
    /// canonical-index space.
    pub fn adjacency(&self) -> Vec<(usize, usize, f64)> {
        let m = &self.machine;
        let mut out = Vec::new();
        for (i, (bi, ri)) in self.blocks.iter().enumerate() {
            for (bj, rj) in self.blocks.iter().skip(i + 1) {
                let shared = ri.shared_edge(rj, 1e-6);
                if shared > 0.0 {
                    out.push((m.index_of(*bi), m.index_of(*bj), shared));
                }
            }
        }
        out
    }

    /// Verifies no two blocks overlap (the floorplans must tile, not
    /// stack).
    ///
    /// # Errors
    ///
    /// Returns the first overlapping pair.
    pub fn check_no_overlap(&self) -> Result<(), String> {
        for (i, (bi, ri)) in self.blocks.iter().enumerate() {
            for (bj, rj) in self.blocks.iter().skip(i + 1) {
                let x = (ri.x + ri.w).min(rj.x + rj.w) - ri.x.max(rj.x);
                let y = (ri.y + ri.h).min(rj.y + rj.h) - ri.y.max(rj.y);
                if x > 1e-6 && y > 1e-6 {
                    return Err(format!("{bi} overlaps {bj}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Floorplan {
        Floorplan::for_machine(Machine::new(1, 4, 2))
    }

    #[test]
    fn rect_basics() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_rect_panics() {
        Rect::new(0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn shared_edges() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(2.0, 0.0, 2.0, 3.0); // right neighbour
        let c = Rect::new(0.0, 2.0, 1.0, 1.0); // below
        let d = Rect::new(5.0, 5.0, 1.0, 1.0); // far away
        assert_eq!(a.shared_edge(&b, 1e-9), 2.0);
        assert_eq!(b.shared_edge(&a, 1e-9), 2.0);
        assert_eq!(a.shared_edge(&c, 1e-9), 1.0);
        assert_eq!(a.shared_edge(&d, 1e-9), 0.0);
    }

    #[test]
    fn baseline_has_all_blocks_and_no_overlap() {
        let fp = baseline();
        assert_eq!(fp.blocks().len(), fp.machine().block_count());
        fp.check_no_overlap().unwrap();
    }

    #[test]
    fn all_paper_variants_build_cleanly() {
        for (p, banks) in [(1, 2), (1, 3), (2, 2), (2, 3)] {
            let fp = Floorplan::for_machine(Machine::new(p, 4, banks));
            fp.check_no_overlap()
                .unwrap_or_else(|e| panic!("({p},{banks}): {e}"));
            assert!(fp.areas().iter().all(|&a| a > 0.0));
        }
    }

    #[test]
    fn frontend_is_about_a_fifth_of_the_die() {
        let fp = baseline();
        let fe: f64 = fp
            .blocks()
            .iter()
            .filter(|(b, _)| b.is_frontend())
            .map(|(_, r)| r.area())
            .sum();
        let share = fe / fp.die_area();
        assert!((0.15..0.30).contains(&share), "frontend area share {share}");
    }

    #[test]
    fn hopping_floorplan_adds_area() {
        let base = baseline().die_area();
        let hop = Floorplan::for_machine(Machine::new(1, 4, 3)).die_area();
        let overhead = (hop - base) / base;
        // Paper: ~1.6 % processor-area overhead for the spare bank.
        assert!((0.005..0.05).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn distributed_floorplan_adds_area() {
        let base = baseline().die_area();
        let dist = Floorplan::for_machine(Machine::new(2, 4, 2)).die_area();
        let overhead = (dist - base) / base;
        // Paper: ~3 % processor-area overhead for the split ROB/RAT.
        assert!((0.01..0.06).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn distributed_partitions_sit_in_original_location() {
        // §4: "both ROB and RAT partitions are kept together in the same
        // location as in the original centralized version".
        let base = baseline();
        let dist = Floorplan::for_machine(Machine::new(2, 4, 2));
        let rob = base.rect_of(BlockId::Rob(0));
        let r0 = dist.rect_of(BlockId::Rob(0));
        let r1 = dist.rect_of(BlockId::Rob(1));
        assert_eq!(r0.y, rob.y);
        assert!((r0.area() + r1.area()) > rob.area(), "split grew the ROB");
        assert!(r0.shared_edge(&r1, 1e-6) > 0.0, "partitions stay together");
    }

    #[test]
    fn tc_banks_adjacent_to_frontend_blocks() {
        // The strip exists to let the TC spread heat to/from RAT and ROB.
        let fp = baseline();
        let adj = fp.adjacency();
        let m = fp.machine();
        let tc0 = m.index_of(BlockId::TcBank(0));
        let rob = m.index_of(BlockId::Rob(0));
        assert!(
            adj.iter()
                .any(|&(a, b, _)| (a == tc0 && b == rob) || (a == rob && b == tc0)),
            "TC-0 should touch the ROB"
        );
    }

    #[test]
    fn adjacency_is_symmetric_and_positive() {
        for (p, banks) in [(1, 2), (2, 3)] {
            let fp = Floorplan::for_machine(Machine::new(p, 4, banks));
            for (a, b, len) in fp.adjacency() {
                assert!(len > 0.0);
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn clusters_touch_their_neighbours() {
        let fp = baseline();
        let m = fp.machine();
        let adj = fp.adjacency();
        // IS of cluster 0 and FPS of cluster 1 are horizontal neighbours.
        let is0 = m.index_of(BlockId::IntSched(0));
        let fps1 = m.index_of(BlockId::FpSched(1));
        assert!(adj
            .iter()
            .any(|&(a, b, _)| (a == is0 && b == fps1) || (a == fps1 && b == is0)));
    }

    #[test]
    #[should_panic(expected = "at most 2 frontend partitions")]
    fn too_many_partitions_panics() {
        Floorplan::for_machine(Machine::new(3, 6, 2));
    }
}
