//! Thermal modelling for the `distfront` simulator.
//!
//! A HotSpot-style *dynamic compact model* (Skadron et al. \[26\]\[27\], which
//! the paper's own model follows): the floorplan's blocks become nodes of an
//! RC network — thermal resistances from the electrical/thermal duality,
//! thermal capacitors for the transient response — connected laterally to
//! their neighbours and vertically through the package (copper heat
//! spreader and heat sink of the paper's §4) to the 45 °C in-box ambient.
//!
//! * [`floorplan`] — Fig. 10/11 floorplans, parametric in the machine shape
//!   (centralized/distributed frontend, 2 or 3 trace-cache banks),
//! * [`package`] — die, interface, spreader, sink and convection parameters,
//! * [`rc`] — building the conductance matrix and capacitance vector,
//! * [`solver`] — steady-state solve (warm start, as the paper boots its
//!   simulations already warm) and the RK4 reference transient integrator,
//! * [`expm`] — the default transient path: a cached matrix-exponential
//!   propagator that advances an interval exactly in two dense mat-vecs,
//! * [`metrics`] — the paper's AbsMax / Average / AvgMax temperature
//!   metrics over block groups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expm;
pub mod floorplan;
pub mod metrics;
pub mod package;
pub mod rc;
pub mod solver;

pub use expm::{BatchPropagator, ExpPropagator, Integrator};
pub use floorplan::{Floorplan, Rect};
pub use metrics::{GroupMetrics, TemperatureTracker};
pub use package::PackageConfig;
pub use rc::ThermalNetwork;
pub use solver::{SteadyFactor, ThermalSolver};
