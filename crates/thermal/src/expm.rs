//! Exact transient advance via a cached matrix-exponential propagator.
//!
//! The thermal network's `C`, `L` and `G_amb` matrices are constant across
//! a run, and the engine holds block power piecewise-constant per
//! half-interval — so the transient `C·dT/dt = b − A·T` (with
//! `A = L + diag(G_amb)` and `b = P + G_amb·T_amb`) has the exact closed
//! form
//!
//! ```text
//! T(t+h) = Φ·T(t) + Ψ·b,   Φ = e^(−h·C⁻¹A),   Ψ = (I − Φ)·A⁻¹
//! ```
//!
//! [`ExpPropagator`] precomputes the discrete pair `(Φ, Ψ)` once per
//! distinct step size `h` — the exponential by scaling-and-squaring, the
//! `A⁻¹` solves through the same [`SteadyFactor`] LU factorization the
//! steady state uses — and advances an interval in two dense mat-vecs
//! instead of the hundreds of RK4 sub-steps [`ThermalSolver::advance`]
//! needs for stability. Propagators are cached keyed on `h.to_bits()`, so
//! DVFS- or throttle-stretched intervals (each a distinct wall-clock `h`)
//! each factor exactly once and the whole advance path stays a
//! deterministic, bit-reproducible function of `(state, power, h)`.
//!
//! [`ThermalSolver`]'s RK4 integrator remains the cross-check reference
//! (mirroring how `solve_steady_dense` backs `SteadyFactor`); the property
//! tests at the bottom of this module pin the two within 1e-6 °C.
//!
//! [`ThermalSolver`]: crate::solver::ThermalSolver
//! [`ThermalSolver::advance`]: crate::solver::ThermalSolver::advance

use std::collections::HashMap;

use crate::rc::ThermalNetwork;
use crate::solver::{assemble_matrix, assemble_rhs, SteadyFactor};

/// Which transient integrator a run uses.
///
/// [`Integrator::Expm`] (the default) is exact for piecewise-constant power
/// and advances an interval in one dense propagator application;
/// [`Integrator::Rk4`] keeps the explicit sub-stepped reference available
/// for cross-checks and A/B benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Explicit RK4, sub-stepped below the smallest network time constant.
    Rk4,
    /// Cached matrix-exponential propagator (exact for constant power).
    #[default]
    Expm,
}

impl std::str::FromStr for Integrator {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rk4" => Ok(Integrator::Rk4),
            "expm" => Ok(Integrator::Expm),
            other => Err(format!("unknown integrator {other} (expected rk4|expm)")),
        }
    }
}

impl std::fmt::Display for Integrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Integrator::Rk4 => "rk4",
            Integrator::Expm => "expm",
        })
    }
}

/// The discrete propagator pair for one step size.
#[derive(Debug, Clone)]
struct Propagator {
    /// `Φ = e^(−h·C⁻¹A)` — how the deviation from steady state decays.
    phi: Vec<Vec<f64>>,
    /// `Ψ = (I − Φ)·A⁻¹` — how the constant forcing accumulates.
    psi: Vec<Vec<f64>>,
}

/// Owns the temperature state of a [`ThermalNetwork`] and advances it with
/// cached matrix-exponential propagators.
///
/// Drop-in alternative to [`ThermalSolver`](crate::solver::ThermalSolver):
/// the same construction-time LU factorization backs the steady-state
/// solves, and `advance` is exact for the piecewise-constant power the
/// interval loop supplies.
///
/// # Examples
///
/// ```
/// use distfront_power::Machine;
/// use distfront_thermal::{ExpPropagator, Floorplan, PackageConfig, ThermalNetwork};
///
/// let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
/// let net = ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper());
/// let mut solver = ExpPropagator::new(net);
/// let power = vec![0.5; solver.network().block_count()];
/// solver.advance(&power, 1e-3);
/// assert!(solver.block_temperatures()[0] > 45.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExpPropagator {
    net: ThermalNetwork,
    /// Node temperatures in °C.
    t: Vec<f64>,
    /// LU factorization of `A`, shared by steady solves and Ψ assembly.
    steady: SteadyFactor,
    /// Propagator pairs keyed on the step size's exact bits.
    cache: HashMap<u64, Propagator>,
}

impl ExpPropagator {
    /// Creates a propagator-based solver with every node at ambient; the
    /// steady-state matrix is assembled and LU-factored here, once.
    /// Propagators themselves are built lazily, one per distinct step size.
    pub fn new(net: ThermalNetwork) -> Self {
        let t = vec![net.ambient_c(); net.node_count()];
        let steady = SteadyFactor::factor(assemble_matrix(&net));
        ExpPropagator {
            net,
            t,
            steady,
            cache: HashMap::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &ThermalNetwork {
        &self.net
    }

    /// All node temperatures (blocks, then spreader, then sink) in °C.
    pub fn temperatures(&self) -> &[f64] {
        &self.t
    }

    /// Block temperatures only, in °C.
    pub fn block_temperatures(&self) -> &[f64] {
        &self.t[..self.net.block_count()]
    }

    /// Distinct step sizes a propagator pair has been built for.
    pub fn cached_steps(&self) -> usize {
        self.cache.len()
    }

    /// Overwrites the state (for warm-start restore / checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the node count.
    pub fn set_temperatures(&mut self, t: Vec<f64>) {
        assert_eq!(t.len(), self.net.node_count());
        self.t = t;
    }

    /// Computes the steady-state temperatures without changing the state,
    /// reusing the factorization done at construction. Bit-identical to
    /// [`ThermalSolver::solve_steady`](crate::solver::ThermalSolver::solve_steady)
    /// on the same network.
    pub fn solve_steady(&self, power: &[f64]) -> Vec<f64> {
        assert_eq!(
            power.len(),
            self.net.block_count(),
            "one power entry per block"
        );
        self.steady.solve(&assemble_rhs(&self.net, power))
    }

    /// Solves for the steady state under constant block `power` and adopts
    /// it as the current state.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block.
    pub fn set_steady_state(&mut self, power: &[f64]) {
        self.t = self.solve_steady(power);
    }

    /// Advances the transient state by `dt` seconds under constant block
    /// `power` — one propagator application, exact for constant power.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block or `dt` is not
    /// positive.
    pub fn advance(&mut self, power: &[f64], dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        assert_eq!(power.len(), self.net.block_count());
        let key = dt.to_bits();
        if !self.cache.contains_key(&key) {
            let prop = build_propagator(&self.net, &self.steady, dt);
            self.cache.insert(key, prop);
        }
        let prop = &self.cache[&key];
        let b = assemble_rhs(&self.net, power);
        let mut next = mat_vec(&prop.phi, &self.t);
        for (n, f) in next.iter_mut().zip(mat_vec(&prop.psi, &b)) {
            *n += f;
        }
        self.t = next;
    }
}

/// Builds the `(Φ, Ψ)` pair for one step size.
fn build_propagator(net: &ThermalNetwork, steady: &SteadyFactor, h: f64) -> Propagator {
    let n = net.node_count();
    let a = assemble_matrix(net);
    // X = −h·C⁻¹A (row i of A scaled by −h/Cᵢ).
    let x: Vec<Vec<f64>> = a
        .iter()
        .zip(net.capacitances())
        .map(|(row, &c)| row.iter().map(|&v| -h * v / c).collect())
        .collect();
    let phi = expm(&x);
    // Ψ = (I − Φ)·A⁻¹. A is symmetric, so row j of Ψ is A⁻¹ applied to
    // row j of (I − Φ) — one O(n²) pair of triangular solves per row
    // through the factorization already built for the steady state.
    let psi = (0..n)
        .map(|j| {
            let rhs: Vec<f64> = (0..n)
                .map(|k| f64::from(u8::from(j == k)) - phi[j][k])
                .collect();
            steady.solve(&rhs)
        })
        .collect();
    Propagator { phi, psi }
}

/// Dense matrix exponential by scaling-and-squaring over a Taylor series.
///
/// The argument is scaled by `2⁻ˢ` until its infinity norm is ≤ 0.5, the
/// series is summed to machine precision (it converges geometrically with
/// ratio ≤ 0.5 from term ~1 on), and the result is squared back `s` times.
/// For the thermal system `X = −h·C⁻¹A` the exponential is a contraction,
/// so the squarings are numerically benign.
fn expm(x: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = x.len();
    let norm = inf_norm(x);
    let squarings = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scale = (0.5f64).powi(squarings as i32);
    let scaled: Vec<Vec<f64>> = x
        .iter()
        .map(|row| row.iter().map(|&v| v * scale).collect())
        .collect();

    // e^scaled = I + scaled + scaled²/2! + ...
    let mut result = identity(n);
    add_assign(&mut result, &scaled, 1.0);
    let mut term = scaled.clone();
    for k in 2..200u32 {
        term = mat_mul(&term, &scaled);
        let f = 1.0 / f64::from(k);
        scale_assign(&mut term, f);
        add_assign(&mut result, &term, 1.0);
        if inf_norm(&term) <= f64::EPSILON * inf_norm(&result) {
            break;
        }
    }
    for _ in 0..squarings {
        result = mat_mul(&result, &result);
    }
    result
}

fn identity(n: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; n]; n];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn inf_norm(m: &[Vec<f64>]) -> f64 {
    m.iter()
        .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

fn add_assign(dst: &mut [Vec<f64>], src: &[Vec<f64>], f: f64) {
    for (d, s) in dst.iter_mut().zip(src) {
        for (dv, sv) in d.iter_mut().zip(s) {
            *dv += f * sv;
        }
    }
}

fn scale_assign(m: &mut [Vec<f64>], f: f64) {
    for row in m.iter_mut() {
        for v in row.iter_mut() {
            *v *= f;
        }
    }
}

fn mat_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for (orow, arow) in out.iter_mut().zip(a) {
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (ov, &bv) in orow.iter_mut().zip(&b[k]) {
                *ov += av * bv;
            }
        }
    }
    out
}

fn mat_vec(m: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    m.iter()
        .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;
    use crate::solver::ThermalSolver;
    use distfront_power::Machine;

    fn paper_net() -> ThermalNetwork {
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper())
    }

    /// Advances an RK4 reference solver with sub-steps ~200× below the
    /// smallest time constant — far finer than the solver's own τ/8
    /// stability step, so its error is negligible against 1e-6 °C.
    fn rk4_fine(s: &mut ThermalSolver, power: &[f64], dt: f64) {
        let tau = s.network().min_time_constant();
        let steps = (dt / (tau / 200.0)).ceil().max(1.0) as usize;
        let h = dt / steps as f64;
        for _ in 0..steps {
            s.advance(power, h);
        }
    }

    #[test]
    fn integrator_parses_and_displays() {
        assert_eq!("rk4".parse::<Integrator>().unwrap(), Integrator::Rk4);
        assert_eq!("expm".parse::<Integrator>().unwrap(), Integrator::Expm);
        assert!("euler".parse::<Integrator>().is_err());
        assert_eq!(Integrator::default(), Integrator::Expm);
        assert_eq!(Integrator::Rk4.to_string(), "rk4");
        assert_eq!(Integrator::Expm.to_string(), "expm");
    }

    #[test]
    fn matches_analytic_single_rc() {
        // One node, G_amb = 0.5 W/K, C = 2 J/K: T(t) = T_inf + (T0−T_inf)e^(−t/4).
        let net = ThermalNetwork::from_parts(vec![vec![0.0]], vec![0.5], vec![2.0], 45.0, 1);
        let mut s = ExpPropagator::new(net);
        let p = [10.0];
        let dt = 1.0;
        s.advance(&p, dt);
        let analytic = 65.0 + (45.0f64 - 65.0) * (-dt / 4.0).exp();
        assert!(
            (s.temperatures()[0] - analytic).abs() < 1e-10,
            "expm {} vs analytic {analytic}",
            s.temperatures()[0]
        );
    }

    #[test]
    fn steady_solve_is_bit_identical_to_rk4_solver() {
        let expm = ExpPropagator::new(paper_net());
        let rk4 = ThermalSolver::new(paper_net());
        let nb = expm.network().block_count();
        let power: Vec<f64> = (0..nb).map(|i| 0.1 + 0.04 * (i % 7) as f64).collect();
        for (a, b) in expm
            .solve_steady(&power)
            .iter()
            .zip(rk4.solve_steady(&power))
        {
            assert_eq!(a.to_bits(), b.to_bits(), "steady paths must share bits");
        }
    }

    #[test]
    fn matches_rk4_on_the_paper_floorplan() {
        let mut expm = ExpPropagator::new(paper_net());
        let mut rk4 = ThermalSolver::new(paper_net());
        let nb = expm.network().block_count();
        let hot: Vec<f64> = (0..nb).map(|i| 0.2 + 0.3 * (i % 5) as f64).collect();
        let cool = vec![0.1; nb];
        // A realistic interval sequence: alternating power, dt/2 half-steps.
        let dt = 2e-5;
        for step in 0..20 {
            let p = if step % 2 == 0 { &hot } else { &cool };
            expm.advance(p, dt / 2.0);
            rk4_fine(&mut rk4, p, dt / 2.0);
        }
        for (i, (a, b)) in expm
            .temperatures()
            .iter()
            .zip(rk4.temperatures())
            .enumerate()
        {
            assert!((a - b).abs() < 1e-6, "node {i}: expm {a} vs rk4 {b}");
        }
        // Both half-step sizes hit the same cache entry.
        assert_eq!(expm.cached_steps(), 1);
    }

    #[test]
    fn long_step_relaxes_back_to_steady_state() {
        // Perturb only the block nodes off the steady solution (the sink
        // alone has an hours-long time constant); steps ≫ the block time
        // constants must relax them back.
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        let power = vec![0.6; nb];
        let steady = s.solve_steady(&power);
        let mut init = steady.clone();
        for t in init.iter_mut().take(nb) {
            *t -= 1.0;
        }
        s.set_temperatures(init);
        for _ in 0..50 {
            s.advance(&power, 0.01);
        }
        for (i, (got, want)) in s.temperatures().iter().zip(&steady).enumerate().take(nb) {
            assert!((got - want).abs() < 0.5, "node {i}: {got} vs steady {want}");
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.1);
        for &t in s.temperatures() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn distinct_step_sizes_factor_once_each() {
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        let p = vec![0.5; nb];
        for _ in 0..5 {
            s.advance(&p, 1e-5);
            s.advance(&p, 2e-5);
        }
        assert_eq!(s.cached_steps(), 2);
    }

    #[test]
    fn advance_is_deterministic() {
        let run = || {
            let mut s = ExpPropagator::new(paper_net());
            let nb = s.network().block_count();
            let p: Vec<f64> = (0..nb).map(|i| 0.3 + 0.02 * i as f64).collect();
            for _ in 0..8 {
                s.advance(&p, 1.3e-5);
            }
            s.temperatures().to_vec()
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::solver::ThermalSolver;
    use proptest::prelude::*;

    /// Builds a random well-posed RC network: symmetric non-negative
    /// conductances, strictly positive capacitances, every node tied to
    /// ambient (so the steady-state system is positive definite).
    fn random_net(n: usize, g_raw: &[f64], g_amb: &[f64], c: &[f64]) -> ThermalNetwork {
        let mut g = vec![vec![0.0; n]; n];
        let pairs = (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j)));
        for (k, (i, j)) in pairs.enumerate() {
            g[i][j] = g_raw[k % g_raw.len()];
            g[j][i] = g[i][j];
        }
        ThermalNetwork::from_parts(g, g_amb[..n].to_vec(), c[..n].to_vec(), 45.0, n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The propagator matches a finely sub-stepped RK4 reference within
        /// 1e-6 °C over random positive-definite networks driven by random
        /// piecewise-constant power.
        #[test]
        fn expm_matches_rk4_reference(
            n in 2usize..7,
            g_raw in proptest::collection::vec(0.05f64..3.0, 21),
            g_amb in proptest::collection::vec(0.1f64..1.5, 7),
            c in proptest::collection::vec(0.4f64..4.0, 7),
            power in proptest::collection::vec(0.0f64..6.0, 28),
            dt_factor in 0.2f64..2.5,
        ) {
            let net = random_net(n, &g_raw, &g_amb, &c);
            let tau = net.min_time_constant();
            let dt = dt_factor * tau;
            let mut fast = ExpPropagator::new(net.clone());
            let mut reference = ThermalSolver::new(net);
            // Four pieces of constant power, both solvers from ambient.
            for piece in 0..4 {
                let p: Vec<f64> = (0..n).map(|i| power[(piece * n + i) % power.len()]).collect();
                fast.advance(&p, dt);
                let steps = (dt / (tau / 200.0)).ceil().max(1.0) as usize;
                let h = dt / steps as f64;
                for _ in 0..steps {
                    reference.advance(&p, h);
                }
            }
            for (i, (a, b)) in fast
                .temperatures()
                .iter()
                .zip(reference.temperatures())
                .enumerate()
            {
                prop_assert!(
                    (a - b).abs() < 1e-6,
                    "node {}: expm {} vs rk4 {} (n={}, dt={})", i, a, b, n, dt
                );
            }
        }
    }
}
