//! Exact transient advance via a cached matrix-exponential propagator.
//!
//! The thermal network's `C`, `L` and `G_amb` matrices are constant across
//! a run, and the engine holds block power piecewise-constant per
//! half-interval — so the transient `C·dT/dt = b − A·T` (with
//! `A = L + diag(G_amb)` and `b = P + G_amb·T_amb`) has the exact closed
//! form
//!
//! ```text
//! T(t+h) = Φ·T(t) + Ψ·b,   Φ = e^(−h·C⁻¹A),   Ψ = (I − Φ)·A⁻¹
//! ```
//!
//! [`ExpPropagator`] precomputes the discrete pair `(Φ, Ψ)` once per
//! distinct step size `h` — the exponential by scaling-and-squaring, the
//! `A⁻¹` solves through the same [`SteadyFactor`] LU factorization the
//! steady state uses — and advances an interval in two dense mat-vecs
//! instead of the hundreds of RK4 sub-steps [`ThermalSolver::advance`]
//! needs for stability.
//!
//! # Flat storage
//!
//! Both matrices of a propagator pair are stored as flat, row-major
//! `n × n` slabs (`Box<[f64]>`, row `i` at `[i·n, (i+1)·n)`), so the hot
//! advance loop is pure iterator dot products over contiguous slices — no
//! per-row pointer chase, no bounds checks. [`BatchPropagator`] extends
//! the same idea across sweep cells: it holds a **column-major SoA state
//! matrix** `T: n_nodes × n_cells` (column `j`, cell `j`'s node
//! temperatures, contiguous at `[j·n, (j+1)·n)`) and advances many
//! columns per propagator application — two mat-mats instead of `2N`
//! mat-vecs, with each Φ/Ψ row streamed once per group of four columns
//! instead of once per cell.
//!
//! # Bit-identity contract
//!
//! Batched advance is **bit-identical** to serial advance: column `j` of
//! a [`BatchPropagator`] after `advance_columns` carries exactly the bits
//! an independent [`ExpPropagator`] for cell `j` would hold after the
//! same sequence of `advance` calls. This holds because every output
//! element is the same two dot products (`Φ_row·T_col + Ψ_row·b_col`)
//! accumulated in the same ascending-`k` order — the kernel widens across
//! columns (independent accumulators), never across `k` within one
//! element. The propagator pairs themselves are deterministic functions
//! of `(network, h)`, so separately built caches agree to the bit.
//!
//! Propagators are cached keyed on `h.to_bits()` in a small bounded LRU
//! ([`ExpPropagator::with_cache_capacity`]), so DVFS- or
//! throttle-stretched intervals (each a distinct wall-clock `h`) factor
//! once while a pathological spread of step sizes cannot grow the cache
//! without bound. Rebuilding an evicted pair is deterministic, so
//! eviction can never change results — only build time.
//!
//! [`ThermalSolver`]'s RK4 integrator remains the cross-check reference
//! (mirroring how `solve_steady_dense` backs `SteadyFactor`); the property
//! tests at the bottom of this module pin the two within 1e-6 °C.
//!
//! [`ThermalSolver`]: crate::solver::ThermalSolver
//! [`ThermalSolver::advance`]: crate::solver::ThermalSolver::advance

use std::sync::Arc;

use crate::rc::ThermalNetwork;
use crate::solver::{assemble_matrix, assemble_rhs, assemble_rhs_into, SteadyFactor};

/// Default capacity of the per-`dt` propagator cache.
pub const DEFAULT_PROPAGATOR_CACHE: usize = 32;

/// Which transient integrator a run uses.
///
/// [`Integrator::Expm`] (the default) is exact for piecewise-constant power
/// and advances an interval in one dense propagator application;
/// [`Integrator::Rk4`] keeps the explicit sub-stepped reference available
/// for cross-checks and A/B benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Explicit RK4, sub-stepped below the smallest network time constant.
    Rk4,
    /// Cached matrix-exponential propagator (exact for constant power).
    #[default]
    Expm,
}

impl std::str::FromStr for Integrator {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rk4" => Ok(Integrator::Rk4),
            "expm" => Ok(Integrator::Expm),
            other => Err(format!("unknown integrator {other} (expected rk4|expm)")),
        }
    }
}

impl std::fmt::Display for Integrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Integrator::Rk4 => "rk4",
            Integrator::Expm => "expm",
        })
    }
}

/// The discrete propagator pair for one step size, stored flat row-major.
#[derive(Debug, Clone)]
struct Propagator {
    /// Matrix dimension (node count).
    n: usize,
    /// `Φ = e^(−h·C⁻¹A)` — how the deviation from steady state decays.
    phi: Box<[f64]>,
    /// `Ψ = (I − Φ)·A⁻¹` — how the constant forcing accumulates.
    psi: Box<[f64]>,
}

/// Bounded propagator cache, most-recently-used first.
///
/// Keyed on the step size's exact bits; at most `cap` pairs are kept and
/// the least-recently-used pair is evicted. Entries are `Arc`-shared so a
/// lookup never copies the dense matrices. With the handful of distinct
/// step sizes a real run produces the scan is a few pointer compares.
#[derive(Debug, Clone)]
struct PropagatorCache {
    cap: usize,
    entries: Vec<(u64, Arc<Propagator>)>,
}

impl PropagatorCache {
    fn new(cap: usize) -> Self {
        PropagatorCache {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns the pair for `dt`, building (and caching) it on a miss.
    fn get_or_build(
        &mut self,
        net: &ThermalNetwork,
        steady: &SteadyFactor,
        dt: f64,
    ) -> Arc<Propagator> {
        let key = dt.to_bits();
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let hit = self.entries.remove(pos);
            self.entries.insert(0, hit);
            return Arc::clone(&self.entries[0].1);
        }
        let built = Arc::new(build_propagator(net, steady, dt));
        self.entries.insert(0, (key, Arc::clone(&built)));
        self.entries.truncate(self.cap);
        built
    }
}

/// Owns the temperature state of a [`ThermalNetwork`] and advances it with
/// cached matrix-exponential propagators.
///
/// Drop-in alternative to [`ThermalSolver`](crate::solver::ThermalSolver):
/// the same construction-time LU factorization backs the steady-state
/// solves, and `advance` is exact for the piecewise-constant power the
/// interval loop supplies. The advance path is allocation-free: the
/// right-hand side and the next state are scratch buffers reused across
/// calls.
///
/// # Examples
///
/// ```
/// use distfront_power::Machine;
/// use distfront_thermal::{ExpPropagator, Floorplan, PackageConfig, ThermalNetwork};
///
/// let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
/// let net = ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper());
/// let mut solver = ExpPropagator::new(net);
/// let power = vec![0.5; solver.network().block_count()];
/// solver.advance(&power, 1e-3);
/// assert!(solver.block_temperatures()[0] > 45.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExpPropagator {
    net: ThermalNetwork,
    /// Node temperatures in °C.
    t: Vec<f64>,
    /// LU factorization of `A`, shared by steady solves and Ψ assembly.
    steady: SteadyFactor,
    /// Bounded LRU of propagator pairs keyed on the step size's exact bits.
    cache: PropagatorCache,
    /// Scratch: assembled right-hand side `b = P + G_amb·T_amb`.
    rhs: Vec<f64>,
    /// Scratch: the next state, swapped with `t` after each advance.
    next: Vec<f64>,
}

impl ExpPropagator {
    /// Creates a propagator-based solver with every node at ambient; the
    /// steady-state matrix is assembled and LU-factored here, once.
    /// Propagators themselves are built lazily, one per distinct step size.
    pub fn new(net: ThermalNetwork) -> Self {
        let n = net.node_count();
        let t = vec![net.ambient_c(); n];
        let steady = SteadyFactor::factor(assemble_matrix(&net));
        ExpPropagator {
            net,
            t,
            steady,
            cache: PropagatorCache::new(DEFAULT_PROPAGATOR_CACHE),
            rhs: vec![0.0; n],
            next: vec![0.0; n],
        }
    }

    /// Caps the per-`dt` propagator cache at `cap` pairs (≥ 1), evicting
    /// least-recently-used pairs beyond it. Eviction cannot change
    /// results — a rebuilt pair is bit-identical — only build time.
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache = PropagatorCache::new(cap);
        self
    }

    /// The underlying network.
    pub fn network(&self) -> &ThermalNetwork {
        &self.net
    }

    /// All node temperatures (blocks, then spreader, then sink) in °C.
    pub fn temperatures(&self) -> &[f64] {
        &self.t
    }

    /// Block temperatures only, in °C.
    pub fn block_temperatures(&self) -> &[f64] {
        &self.t[..self.net.block_count()]
    }

    /// Distinct step sizes currently holding a cached propagator pair.
    pub fn cached_steps(&self) -> usize {
        self.cache.len()
    }

    /// Overwrites the state (for warm-start restore / checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the node count.
    pub fn set_temperatures(&mut self, t: Vec<f64>) {
        assert_eq!(t.len(), self.net.node_count());
        self.t = t;
    }

    /// Computes the steady-state temperatures without changing the state,
    /// reusing the factorization done at construction. Bit-identical to
    /// [`ThermalSolver::solve_steady`](crate::solver::ThermalSolver::solve_steady)
    /// on the same network.
    pub fn solve_steady(&self, power: &[f64]) -> Vec<f64> {
        assert_eq!(
            power.len(),
            self.net.block_count(),
            "one power entry per block"
        );
        self.steady.solve(&assemble_rhs(&self.net, power))
    }

    /// Solves for the steady state under constant block `power` and adopts
    /// it as the current state.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block.
    pub fn set_steady_state(&mut self, power: &[f64]) {
        self.t = self.solve_steady(power);
    }

    /// Advances the transient state by `dt` seconds under constant block
    /// `power` — one propagator application, exact for constant power.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not have one entry per block or `dt` is not
    /// positive.
    pub fn advance(&mut self, power: &[f64], dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        assert_eq!(power.len(), self.net.block_count());
        let prop = self.cache.get_or_build(&self.net, &self.steady, dt);
        assemble_rhs_into(&self.net, power, &mut self.rhs);
        let n = self.t.len();
        for ((out, phi_row), psi_row) in self
            .next
            .iter_mut()
            .zip(prop.phi.chunks_exact(n))
            .zip(prop.psi.chunks_exact(n))
        {
            *out = dot(phi_row, &self.t) + dot(psi_row, &self.rhs);
        }
        std::mem::swap(&mut self.t, &mut self.next);
    }

    /// Spawns a batched propagator over `n_cells` lockstep cells on this
    /// solver's network, every column starting at ambient.
    ///
    /// Column `j` of the batch advanced with some `(power_j, dt)` sequence
    /// carries exactly the bits `advance` would produce on an independent
    /// `ExpPropagator` fed the same sequence — see the module-level
    /// bit-identity contract. Already-built propagator pairs are shared
    /// with the batch (`Arc`-cloned), so nothing refactors.
    pub fn batch(&self, n_cells: usize) -> BatchPropagator {
        BatchPropagator::with_parts(
            self.net.clone(),
            self.steady.clone(),
            self.cache.clone(),
            n_cells,
        )
    }
}

/// Advances `N` lockstep cells sharing one [`ThermalNetwork`] — the state
/// is a column-major SoA matrix `T: n_nodes × n_cells` and each propagator
/// application is a two-mat-mat over all selected columns.
///
/// Column `j` is cell `j`'s full node-temperature vector, contiguous at
/// `[j·n, (j+1)·n)`. [`advance_columns`](Self::advance_columns) takes an
/// explicit column list, so cohorts whose cells momentarily disagree on
/// `dt` (throttle-stretched intervals, final partial interval) advance as
/// per-`dt` groups, and a failed cell's column simply stops being
/// selected — the remaining columns are arithmetically untouched by its
/// departure.
///
/// # Examples
///
/// ```
/// use distfront_power::Machine;
/// use distfront_thermal::{BatchPropagator, Floorplan, PackageConfig, ThermalNetwork};
///
/// let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
/// let net = ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper());
/// let nb = net.block_count();
/// let mut batch = BatchPropagator::new(net, 8);
/// let powers = vec![0.5; nb * 8];
/// batch.advance_all(&powers, 1e-3);
/// assert!(batch.block_column(0)[0] > 45.0);
/// ```
#[derive(Debug, Clone)]
pub struct BatchPropagator {
    net: ThermalNetwork,
    steady: SteadyFactor,
    cache: PropagatorCache,
    n_cells: usize,
    /// Column-major state matrix `T: n_nodes × n_cells`.
    t: Box<[f64]>,
    /// Scratch: next state columns (only selected columns are written).
    next: Box<[f64]>,
    /// Scratch: per-column right-hand sides, same layout as `t`.
    b: Box<[f64]>,
}

impl BatchPropagator {
    /// Creates a batch of `n_cells` columns, all at ambient; the
    /// steady-state system is assembled and LU-factored here, once.
    ///
    /// # Panics
    ///
    /// Panics if `n_cells` is zero.
    pub fn new(net: ThermalNetwork, n_cells: usize) -> Self {
        let steady = SteadyFactor::factor(assemble_matrix(&net));
        BatchPropagator::with_parts(
            net,
            steady,
            PropagatorCache::new(DEFAULT_PROPAGATOR_CACHE),
            n_cells,
        )
    }

    fn with_parts(
        net: ThermalNetwork,
        steady: SteadyFactor,
        cache: PropagatorCache,
        n_cells: usize,
    ) -> Self {
        assert!(n_cells > 0, "batch needs at least one cell");
        let n = net.node_count();
        let t = vec![net.ambient_c(); n * n_cells].into_boxed_slice();
        BatchPropagator {
            net,
            steady,
            cache,
            n_cells,
            t,
            next: vec![0.0; n * n_cells].into_boxed_slice(),
            b: vec![0.0; n * n_cells].into_boxed_slice(),
        }
    }

    /// The underlying network (shared by every column).
    pub fn network(&self) -> &ThermalNetwork {
        &self.net
    }

    /// Number of lockstep cells (columns).
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Distinct step sizes currently holding a cached propagator pair.
    pub fn cached_steps(&self) -> usize {
        self.cache.len()
    }

    /// All node temperatures of cell `j` in °C.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> &[f64] {
        let n = self.net.node_count();
        &self.t[j * n..(j + 1) * n]
    }

    /// Block temperatures of cell `j` only, in °C.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn block_column(&self, j: usize) -> &[f64] {
        let n = self.net.node_count();
        &self.t[j * n..j * n + self.net.block_count()]
    }

    /// Overwrites cell `j`'s state (warm-start restore).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or the length does not match the
    /// node count.
    pub fn set_column(&mut self, j: usize, t: &[f64]) {
        let n = self.net.node_count();
        assert_eq!(t.len(), n, "column length must match node count");
        self.t[j * n..(j + 1) * n].copy_from_slice(t);
    }

    /// Advances every column by `dt` seconds — the all-same-`dt` fast
    /// path: one propagator lookup, one pair of mat-mats.
    ///
    /// `powers` is column-major `block_count × n_cells`: cell `j`'s block
    /// powers at `[j·nb, (j+1)·nb)`.
    ///
    /// # Panics
    ///
    /// Panics if `powers` has the wrong length or `dt` is not positive.
    pub fn advance_all(&mut self, powers: &[f64], dt: f64) {
        let cols: Vec<usize> = (0..self.n_cells).collect();
        self.advance_columns(powers, dt, &cols);
    }

    /// Advances only the selected columns by `dt` seconds; unselected
    /// columns are untouched (their bits cannot change).
    ///
    /// `powers` spans all cells (column-major `block_count × n_cells`);
    /// only the selected columns' slices are read.
    ///
    /// # Panics
    ///
    /// Panics if `powers` has the wrong length, `dt` is not positive, or
    /// a column index is out of range.
    pub fn advance_columns(&mut self, powers: &[f64], dt: f64, cols: &[usize]) {
        assert!(dt > 0.0, "dt must be positive");
        let nb = self.net.block_count();
        let n = self.net.node_count();
        assert_eq!(powers.len(), nb * self.n_cells, "one power column per cell");
        let prop = self.cache.get_or_build(&self.net, &self.steady, dt);
        for &j in cols {
            assert!(j < self.n_cells, "column {j} out of range");
            assemble_rhs_into(
                &self.net,
                &powers[j * nb..(j + 1) * nb],
                &mut self.b[j * n..(j + 1) * n],
            );
        }
        mat_mat_cols(&prop, &self.t, &self.b, &mut self.next, cols);
        for &j in cols {
            let col = j * n..(j + 1) * n;
            self.t[col.clone()].copy_from_slice(&self.next[col]);
        }
    }
}

/// Sequential-`k` dot product — the one summation order every advance
/// path (serial and batched) must share for bit-identity.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Columns advanced per lane block by [`mat_mat_cols`]. Eight `f64`
/// accumulator chains fill the FMA pipeline (≈ latency × throughput on
/// current cores) and fit two 4-wide vector registers, so the lane loop
/// vectorizes *across columns* without touching any column's summation
/// order.
const LANES: usize = 8;

/// Applies `out[:, j] = Φ·T[:, j] + Ψ·B[:, j]` for each selected column.
///
/// Columns are processed [`LANES`] at a time: the selected state and rhs
/// columns are first transposed into lane-major scratch (all lanes' `k`-th
/// elements contiguous, an O(n·lanes) copy against the O(n²·lanes)
/// multiply), then each Φ/Ψ row walks `k` once, broadcasting its element
/// against the lane block with one independent accumulator chain per
/// column. The widening is *across* columns — never across `k` within one
/// element — so each column's bits match a serial [`dot`] exactly while
/// the row data streams from memory once per block instead of once per
/// column, and the per-`k` step is a broadcast × contiguous-load FMA the
/// compiler vectorizes.
fn mat_mat_cols(prop: &Propagator, t: &[f64], b: &[f64], out: &mut [f64], cols: &[usize]) {
    let n = prop.n;
    let mut blocks = cols.chunks_exact(LANES);
    if blocks.len() > 0 {
        let mut tt = vec![0.0f64; n * LANES];
        let mut bt = vec![0.0f64; n * LANES];
        for block in blocks.by_ref() {
            for (l, &j) in block.iter().enumerate() {
                let tc = &t[j * n..(j + 1) * n];
                let bc = &b[j * n..(j + 1) * n];
                for (k, (&tv, &bv)) in tc.iter().zip(bc).enumerate() {
                    tt[k * LANES + l] = tv;
                    bt[k * LANES + l] = bv;
                }
            }
            advance_lanes(prop, &tt, &bt, out, block);
        }
    }
    let mut quads = blocks.remainder().chunks_exact(4);
    for quad in quads.by_ref() {
        advance_quad(prop, t, b, out, [quad[0], quad[1], quad[2], quad[3]]);
    }
    for &j in quads.remainder() {
        advance_single(prop, t, b, out, j);
    }
}

/// A full lane block over transposed scratch: for each output row, all
/// [`LANES`] Φ and Ψ accumulator chains advance through the same
/// ascending-`k` order as [`dot`], one broadcast × lane-block FMA per
/// matrix element.
fn advance_lanes(prop: &Propagator, tt: &[f64], bt: &[f64], out: &mut [f64], js: &[usize]) {
    let n = prop.n;
    for (i, (phi_row, psi_row)) in prop
        .phi
        .chunks_exact(n)
        .zip(prop.psi.chunks_exact(n))
        .enumerate()
    {
        let mut acc = [0.0f64; LANES];
        let mut sac = [0.0f64; LANES];
        for (((&p, &s), tl), bl) in phi_row
            .iter()
            .zip(psi_row)
            .zip(tt.chunks_exact(LANES))
            .zip(bt.chunks_exact(LANES))
        {
            for l in 0..LANES {
                acc[l] += p * tl[l];
                sac[l] += s * bl[l];
            }
        }
        for (l, &j) in js.iter().enumerate() {
            out[j * n + i] = acc[l] + sac[l];
        }
    }
}

/// One column of `out[:, j] = Φ·T[:, j] + Ψ·B[:, j]`, same element order
/// as [`ExpPropagator::advance`].
fn advance_single(prop: &Propagator, t: &[f64], b: &[f64], out: &mut [f64], j: usize) {
    let n = prop.n;
    let tc = &t[j * n..(j + 1) * n];
    let bc = &b[j * n..(j + 1) * n];
    for ((o, phi_row), psi_row) in out[j * n..(j + 1) * n]
        .iter_mut()
        .zip(prop.phi.chunks_exact(n))
        .zip(prop.psi.chunks_exact(n))
    {
        *o = dot(phi_row, tc) + dot(psi_row, bc);
    }
}

/// Four columns in lockstep: each Φ/Ψ row is read once and multiplied
/// against four state/rhs columns with four independent accumulator
/// chains (per-column order identical to [`dot`]).
fn advance_quad(prop: &Propagator, t: &[f64], b: &[f64], out: &mut [f64], js: [usize; 4]) {
    let n = prop.n;
    let [j0, j1, j2, j3] = js;
    let t0 = &t[j0 * n..(j0 + 1) * n];
    let t1 = &t[j1 * n..(j1 + 1) * n];
    let t2 = &t[j2 * n..(j2 + 1) * n];
    let t3 = &t[j3 * n..(j3 + 1) * n];
    let b0 = &b[j0 * n..(j0 + 1) * n];
    let b1 = &b[j1 * n..(j1 + 1) * n];
    let b2 = &b[j2 * n..(j2 + 1) * n];
    let b3 = &b[j3 * n..(j3 + 1) * n];
    for (i, (phi_row, psi_row)) in prop
        .phi
        .chunks_exact(n)
        .zip(prop.psi.chunks_exact(n))
        .enumerate()
    {
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for ((((&p, &x0), &x1), &x2), &x3) in phi_row.iter().zip(t0).zip(t1).zip(t2).zip(t3) {
            a0 += p * x0;
            a1 += p * x1;
            a2 += p * x2;
            a3 += p * x3;
        }
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for ((((&p, &x0), &x1), &x2), &x3) in psi_row.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
            s0 += p * x0;
            s1 += p * x1;
            s2 += p * x2;
            s3 += p * x3;
        }
        out[j0 * n + i] = a0 + s0;
        out[j1 * n + i] = a1 + s1;
        out[j2 * n + i] = a2 + s2;
        out[j3 * n + i] = a3 + s3;
    }
}

/// Builds the `(Φ, Ψ)` pair for one step size.
fn build_propagator(net: &ThermalNetwork, steady: &SteadyFactor, h: f64) -> Propagator {
    let n = net.node_count();
    let a = assemble_matrix(net);
    // X = −h·C⁻¹A (row i of A scaled by −h/Cᵢ), flattened row-major.
    let mut x = vec![0.0f64; n * n];
    for ((xrow, arow), &c) in x.chunks_exact_mut(n).zip(&a).zip(net.capacitances()) {
        for (xv, &av) in xrow.iter_mut().zip(arow) {
            *xv = -h * av / c;
        }
    }
    let phi = expm(&x, n);
    // Ψ = (I − Φ)·A⁻¹. A is symmetric, so row j of Ψ is A⁻¹ applied to
    // row j of (I − Φ) — one O(n²) pair of triangular solves per row
    // through the factorization already built for the steady state.
    let mut psi = vec![0.0f64; n * n];
    for (j, psi_row) in psi.chunks_exact_mut(n).enumerate() {
        let rhs: Vec<f64> = phi[j * n..(j + 1) * n]
            .iter()
            .enumerate()
            .map(|(k, &pv)| f64::from(u8::from(j == k)) - pv)
            .collect();
        psi_row.copy_from_slice(&steady.solve(&rhs));
    }
    Propagator {
        n,
        phi: phi.into_boxed_slice(),
        psi: psi.into_boxed_slice(),
    }
}

/// Dense matrix exponential by scaling-and-squaring over a Taylor series,
/// on a flat row-major `n × n` matrix.
///
/// The argument is scaled by `2⁻ˢ` until its infinity norm is ≤ 0.5, the
/// series is summed to machine precision (it converges geometrically with
/// ratio ≤ 0.5 from term ~1 on), and the result is squared back `s` times.
/// For the thermal system `X = −h·C⁻¹A` the exponential is a contraction,
/// so the squarings are numerically benign.
fn expm(x: &[f64], n: usize) -> Vec<f64> {
    let norm = inf_norm(x, n);
    let squarings = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scale = (0.5f64).powi(squarings as i32);
    let scaled: Vec<f64> = x.iter().map(|&v| v * scale).collect();

    // e^scaled = I + scaled + scaled²/2! + ...
    let mut result = identity(n);
    for (r, &s) in result.iter_mut().zip(&scaled) {
        *r += 1.0 * s;
    }
    let mut term = scaled.clone();
    for k in 2..200u32 {
        term = mat_mul(&term, &scaled, n);
        let f = 1.0 / f64::from(k);
        for v in term.iter_mut() {
            *v *= f;
        }
        for (r, &s) in result.iter_mut().zip(&term) {
            *r += 1.0 * s;
        }
        if inf_norm(&term, n) <= f64::EPSILON * inf_norm(&result, n) {
            break;
        }
    }
    for _ in 0..squarings {
        result = mat_mul(&result, &result, n);
    }
    result
}

fn identity(n: usize) -> Vec<f64> {
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        m[i * n + i] = 1.0;
    }
    m
}

fn inf_norm(m: &[f64], n: usize) -> f64 {
    m.chunks_exact(n)
        .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Flat row-major matrix product, accumulating over `k` in ascending
/// order per output element (the `i, k, j` loop nest the Vec-of-Vec
/// implementation used, so the flattening kept every bit).
fn mat_mul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n * n];
    for (orow, arow) in out.chunks_exact_mut(n).zip(a.chunks_exact(n)) {
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (ov, &bv) in orow.iter_mut().zip(&b[k * n..(k + 1) * n]) {
                *ov += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;
    use crate::solver::ThermalSolver;
    use distfront_power::Machine;

    fn paper_net() -> ThermalNetwork {
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper())
    }

    /// Advances an RK4 reference solver with sub-steps ~200× below the
    /// smallest time constant — far finer than the solver's own τ/8
    /// stability step, so its error is negligible against 1e-6 °C.
    fn rk4_fine(s: &mut ThermalSolver, power: &[f64], dt: f64) {
        let tau = s.network().min_time_constant();
        let steps = (dt / (tau / 200.0)).ceil().max(1.0) as usize;
        let h = dt / steps as f64;
        for _ in 0..steps {
            s.advance(power, h);
        }
    }

    #[test]
    fn integrator_parses_and_displays() {
        assert_eq!("rk4".parse::<Integrator>().unwrap(), Integrator::Rk4);
        assert_eq!("expm".parse::<Integrator>().unwrap(), Integrator::Expm);
        assert!("euler".parse::<Integrator>().is_err());
        assert_eq!(Integrator::default(), Integrator::Expm);
        assert_eq!(Integrator::Rk4.to_string(), "rk4");
        assert_eq!(Integrator::Expm.to_string(), "expm");
    }

    #[test]
    fn matches_analytic_single_rc() {
        // One node, G_amb = 0.5 W/K, C = 2 J/K: T(t) = T_inf + (T0−T_inf)e^(−t/4).
        let net = ThermalNetwork::from_parts(vec![vec![0.0]], vec![0.5], vec![2.0], 45.0, 1);
        let mut s = ExpPropagator::new(net);
        let p = [10.0];
        let dt = 1.0;
        s.advance(&p, dt);
        let analytic = 65.0 + (45.0f64 - 65.0) * (-dt / 4.0).exp();
        assert!(
            (s.temperatures()[0] - analytic).abs() < 1e-10,
            "expm {} vs analytic {analytic}",
            s.temperatures()[0]
        );
    }

    #[test]
    fn steady_solve_is_bit_identical_to_rk4_solver() {
        let expm = ExpPropagator::new(paper_net());
        let rk4 = ThermalSolver::new(paper_net());
        let nb = expm.network().block_count();
        let power: Vec<f64> = (0..nb).map(|i| 0.1 + 0.04 * (i % 7) as f64).collect();
        for (a, b) in expm
            .solve_steady(&power)
            .iter()
            .zip(rk4.solve_steady(&power))
        {
            assert_eq!(a.to_bits(), b.to_bits(), "steady paths must share bits");
        }
    }

    #[test]
    fn matches_rk4_on_the_paper_floorplan() {
        let mut expm = ExpPropagator::new(paper_net());
        let mut rk4 = ThermalSolver::new(paper_net());
        let nb = expm.network().block_count();
        let hot: Vec<f64> = (0..nb).map(|i| 0.2 + 0.3 * (i % 5) as f64).collect();
        let cool = vec![0.1; nb];
        // A realistic interval sequence: alternating power, dt/2 half-steps.
        let dt = 2e-5;
        for step in 0..20 {
            let p = if step % 2 == 0 { &hot } else { &cool };
            expm.advance(p, dt / 2.0);
            rk4_fine(&mut rk4, p, dt / 2.0);
        }
        for (i, (a, b)) in expm
            .temperatures()
            .iter()
            .zip(rk4.temperatures())
            .enumerate()
        {
            assert!((a - b).abs() < 1e-6, "node {i}: expm {a} vs rk4 {b}");
        }
        // Both half-step sizes hit the same cache entry.
        assert_eq!(expm.cached_steps(), 1);
    }

    #[test]
    fn long_step_relaxes_back_to_steady_state() {
        // Perturb only the block nodes off the steady solution (the sink
        // alone has an hours-long time constant); steps ≫ the block time
        // constants must relax them back.
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        let power = vec![0.6; nb];
        let steady = s.solve_steady(&power);
        let mut init = steady.clone();
        for t in init.iter_mut().take(nb) {
            *t -= 1.0;
        }
        s.set_temperatures(init);
        for _ in 0..50 {
            s.advance(&power, 0.01);
        }
        for (i, (got, want)) in s.temperatures().iter().zip(&steady).enumerate().take(nb) {
            assert!((got - want).abs() < 0.5, "node {i}: {got} vs steady {want}");
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.1);
        for &t in s.temperatures() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn distinct_step_sizes_factor_once_each() {
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        let p = vec![0.5; nb];
        for _ in 0..5 {
            s.advance(&p, 1e-5);
            s.advance(&p, 2e-5);
        }
        assert_eq!(s.cached_steps(), 2);
    }

    #[test]
    fn advance_is_deterministic() {
        let run = || {
            let mut s = ExpPropagator::new(paper_net());
            let nb = s.network().block_count();
            let p: Vec<f64> = (0..nb).map(|i| 0.3 + 0.02 * i as f64).collect();
            for _ in 0..8 {
                s.advance(&p, 1.3e-5);
            }
            s.temperatures().to_vec()
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut s = ExpPropagator::new(paper_net());
        let nb = s.network().block_count();
        s.advance(&vec![0.0; nb], 0.0);
    }

    #[test]
    fn propagator_cache_is_bounded_under_throttle_stretched_steps() {
        // A pathological DTM run can stretch every interval into a
        // distinct wall-clock dt; the cache must stay capped regardless.
        let mut s = ExpPropagator::new(paper_net()).with_cache_capacity(4);
        let nb = s.network().block_count();
        let p = vec![0.4; nb];
        for i in 0..100 {
            let dt = 1e-5 * (1.0 + i as f64 * 1e-3);
            s.advance(&p, dt);
            assert!(s.cached_steps() <= 4, "cache grew past its cap");
        }
        assert_eq!(s.cached_steps(), 4);
    }

    #[test]
    fn cache_eviction_does_not_change_bits() {
        // The same dt sequence through a capacity-1 cache (every reuse is
        // a rebuild) and a roomy cache must agree to the bit.
        let run = |cap: usize| {
            let mut s = ExpPropagator::new(paper_net()).with_cache_capacity(cap);
            let nb = s.network().block_count();
            let p = vec![0.7; nb];
            for _ in 0..4 {
                s.advance(&p, 1e-5);
                s.advance(&p, 2e-5);
                s.advance(&p, 3e-5);
            }
            s.temperatures().to_vec()
        };
        for (a, b) in run(1).iter().zip(run(16)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_columns_match_serial_advance_bits() {
        // Five cells with distinct power profiles and a dt that changes
        // mid-run: every batched column must carry the serial bits.
        let n_cells = 5;
        let net = paper_net();
        let nb = net.block_count();
        let serial_seed = ExpPropagator::new(net);
        let mut batch = serial_seed.batch(n_cells);
        let mut serial: Vec<ExpPropagator> = (0..n_cells).map(|_| serial_seed.clone()).collect();
        let powers: Vec<f64> = (0..nb * n_cells)
            .map(|i| 0.1 + 0.013 * (i % 17) as f64)
            .collect();
        for step in 0..6 {
            let dt = if step < 3 { 1.1e-5 } else { 1.7e-5 };
            batch.advance_all(&powers, dt);
            for (j, s) in serial.iter_mut().enumerate() {
                s.advance(&powers[j * nb..(j + 1) * nb], dt);
            }
        }
        for (j, s) in serial.iter().enumerate() {
            for (i, (a, b)) in batch.column(j).iter().zip(s.temperatures()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "cell {j} node {i}: batch {a} vs serial {b}"
                );
            }
        }
    }

    #[test]
    fn advancing_a_subset_leaves_other_columns_untouched() {
        let net = paper_net();
        let nb = net.block_count();
        let mut batch = BatchPropagator::new(net, 3);
        let powers: Vec<f64> = (0..nb * 3).map(|i| 0.2 + 0.01 * (i % 9) as f64).collect();
        batch.advance_all(&powers, 1e-5);
        let frozen = batch.column(1).to_vec();
        batch.advance_columns(&powers, 1e-5, &[0, 2]);
        batch.advance_columns(&powers, 2e-5, &[0, 2]);
        for (a, b) in batch.column(1).iter().zip(&frozen) {
            assert_eq!(a.to_bits(), b.to_bits(), "unselected column drifted");
        }
        // And the survivors match serial cells fed the same sequence.
        let mut s = ExpPropagator::new(paper_net());
        s.advance(&powers[..nb], 1e-5);
        s.advance(&powers[..nb], 1e-5);
        s.advance(&powers[..nb], 2e-5);
        for (a, b) in batch.column(0).iter().zip(s.temperatures()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_set_column_restores_state() {
        let net = paper_net();
        let nb = net.block_count();
        let mut batch = BatchPropagator::new(net, 2);
        let warm = vec![55.0; batch.network().node_count()];
        batch.set_column(1, &warm);
        assert_eq!(batch.column(1), &warm[..]);
        assert!((batch.column(0)[0] - 45.0).abs() < 1e-12);
        let powers = vec![0.3; nb * 2];
        batch.advance_all(&powers, 1e-5);
        assert!(batch.column(1)[0] > batch.column(0)[0]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::solver::ThermalSolver;
    use proptest::prelude::*;

    /// Builds a random well-posed RC network: symmetric non-negative
    /// conductances, strictly positive capacitances, every node tied to
    /// ambient (so the steady-state system is positive definite).
    fn random_net(n: usize, g_raw: &[f64], g_amb: &[f64], c: &[f64]) -> ThermalNetwork {
        let mut g = vec![vec![0.0; n]; n];
        let pairs = (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j)));
        for (k, (i, j)) in pairs.enumerate() {
            g[i][j] = g_raw[k % g_raw.len()];
            g[j][i] = g[i][j];
        }
        ThermalNetwork::from_parts(g, g_amb[..n].to_vec(), c[..n].to_vec(), 45.0, n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The propagator matches a finely sub-stepped RK4 reference within
        /// 1e-6 °C over random positive-definite networks driven by random
        /// piecewise-constant power.
        #[test]
        fn expm_matches_rk4_reference(
            n in 2usize..7,
            g_raw in proptest::collection::vec(0.05f64..3.0, 21),
            g_amb in proptest::collection::vec(0.1f64..1.5, 7),
            c in proptest::collection::vec(0.4f64..4.0, 7),
            power in proptest::collection::vec(0.0f64..6.0, 28),
            dt_factor in 0.2f64..2.5,
        ) {
            let net = random_net(n, &g_raw, &g_amb, &c);
            let tau = net.min_time_constant();
            let dt = dt_factor * tau;
            let mut fast = ExpPropagator::new(net.clone());
            let mut reference = ThermalSolver::new(net);
            // Four pieces of constant power, both solvers from ambient.
            for piece in 0..4 {
                let p: Vec<f64> = (0..n).map(|i| power[(piece * n + i) % power.len()]).collect();
                fast.advance(&p, dt);
                let steps = (dt / (tau / 200.0)).ceil().max(1.0) as usize;
                let h = dt / steps as f64;
                for _ in 0..steps {
                    reference.advance(&p, h);
                }
            }
            for (i, (a, b)) in fast
                .temperatures()
                .iter()
                .zip(reference.temperatures())
                .enumerate()
            {
                prop_assert!(
                    (a - b).abs() < 1e-6,
                    "node {}: expm {} vs rk4 {} (n={}, dt={})", i, a, b, n, dt
                );
            }
        }

        /// Batched columns are bit-identical to independent serial
        /// propagators on random RC networks, cohort sizes and powers —
        /// the module's bit-identity contract, pinned.
        #[test]
        fn batch_is_bit_identical_to_serial(
            n in 2usize..7,
            n_cells in 1usize..11,
            g_raw in proptest::collection::vec(0.05f64..3.0, 21),
            g_amb in proptest::collection::vec(0.1f64..1.5, 7),
            c in proptest::collection::vec(0.4f64..4.0, 7),
            power in proptest::collection::vec(0.0f64..6.0, 40),
            dt_factor in 0.2f64..2.5,
        ) {
            let net = random_net(n, &g_raw, &g_amb, &c);
            let dt = dt_factor * net.min_time_constant();
            let seed = ExpPropagator::new(net);
            let mut batch = seed.batch(n_cells);
            let mut serial: Vec<ExpPropagator> =
                (0..n_cells).map(|_| seed.clone()).collect();
            let powers: Vec<f64> = (0..n * n_cells)
                .map(|i| power[i % power.len()])
                .collect();
            for step in 0..3 {
                let h = dt * (1.0 + step as f64 * 0.25);
                batch.advance_all(&powers, h);
                for (j, s) in serial.iter_mut().enumerate() {
                    s.advance(&powers[j * n..(j + 1) * n], h);
                }
            }
            for (j, s) in serial.iter().enumerate() {
                for (a, b) in batch.column(j).iter().zip(s.temperatures()) {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "cell {} diverged: batch {} vs serial {}", j, a, b
                    );
                }
            }
        }
    }
}
