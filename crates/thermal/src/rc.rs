//! The thermal RC network (dynamic compact model).
//!
//! Nodes are the floorplan blocks plus two package nodes (heat spreader and
//! heat sink). Conductances follow the thermal/electrical duality: lateral
//! conductances between adjacent blocks, vertical conductances through die
//! and interface material to the spreader, then spreader→sink and
//! sink→ambient. Thermal capacitors on every node give the model its
//! transient (RC) response — the "dynamic" in dynamic compact model.

use crate::floorplan::Floorplan;
use crate::package::PackageConfig;

/// A thermal RC network ready for solving.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNetwork {
    /// Symmetric node-to-node conductance matrix in W/K (zero diagonal).
    g: Vec<Vec<f64>>,
    /// Node-to-ambient conductance in W/K (nonzero only for the sink in
    /// floorplan-built networks).
    g_ambient: Vec<f64>,
    /// Node heat capacities in J/K.
    c: Vec<f64>,
    /// Ambient temperature in °C.
    ambient_c: f64,
    /// Number of block nodes (package nodes follow).
    n_blocks: usize,
}

impl ThermalNetwork {
    /// Builds the network for a floorplan and package.
    ///
    /// Node layout: `0..n_blocks` are the floorplan blocks in canonical
    /// order, node `n_blocks` is the spreader, node `n_blocks + 1` the sink.
    pub fn from_floorplan(fp: &Floorplan, pkg: &PackageConfig) -> Self {
        let n_blocks = fp.blocks().len();
        let n = n_blocks + 2;
        let spreader = n_blocks;
        let sink = n_blocks + 1;
        let mut g = vec![vec![0.0; n]; n];
        let mut g_ambient = vec![0.0; n];
        let mut c = vec![0.0; n];

        let rects: Vec<_> = fp.blocks().to_vec();
        let m = fp.machine();
        // Lateral conductances between adjacent blocks (canonical indices).
        for (k, (bi, ri)) in rects.iter().enumerate() {
            let i = m.index_of(*bi);
            for (bj, rj) in rects.iter().skip(k + 1) {
                let shared = ri.shared_edge(rj, 1e-6);
                if shared <= 0.0 {
                    continue;
                }
                // Orientation: side-by-side shares a vertical edge (extent =
                // widths); stacked shares a horizontal edge (extent =
                // heights).
                let side_by_side =
                    ((ri.x + ri.w) - rj.x).abs() < 1e-6 || ((rj.x + rj.w) - ri.x).abs() < 1e-6;
                let (ea, eb) = if side_by_side {
                    (ri.w, rj.w)
                } else {
                    (ri.h, rj.h)
                };
                let r_lat = pkg.lateral_resistance(ea, eb, shared);
                let j = m.index_of(*bj);
                g[i][j] += 1.0 / r_lat;
                g[j][i] = g[i][j];
            }
        }

        // Vertical paths and block capacitances (canonical indices).
        for (b, r) in &rects {
            let i = m.index_of(*b);
            let gv = 1.0 / pkg.vertical_resistance(r.area());
            g[i][spreader] += gv;
            g[spreader][i] = g[i][spreader];
            c[i] = pkg.block_capacitance(r.area());
        }

        // Package path.
        g[spreader][sink] = 1.0 / pkg.r_spreader_sink;
        g[sink][spreader] = g[spreader][sink];
        g_ambient[sink] = 1.0 / pkg.r_convection;
        c[spreader] = pkg.spreader_capacitance();
        c[sink] = pkg.sink_capacitance();

        ThermalNetwork {
            g,
            g_ambient,
            c,
            ambient_c: pkg.ambient_c,
            n_blocks,
        }
    }

    /// Builds a network from raw parts (for tests and extensions).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree, a capacitance is not positive, or
    /// the conductance matrix is not symmetric with a zero diagonal.
    pub fn from_parts(
        g: Vec<Vec<f64>>,
        g_ambient: Vec<f64>,
        c: Vec<f64>,
        ambient_c: f64,
        n_blocks: usize,
    ) -> Self {
        let n = g.len();
        assert_eq!(g_ambient.len(), n);
        assert_eq!(c.len(), n);
        assert!(n_blocks <= n);
        for (i, row) in g.iter().enumerate() {
            assert_eq!(row.len(), n, "G must be square");
            assert_eq!(row[i], 0.0, "G diagonal must be zero");
            for (j, &v) in row.iter().enumerate() {
                assert!(v >= 0.0, "negative conductance");
                assert!((v - g[j][i]).abs() < 1e-12, "G must be symmetric");
            }
        }
        assert!(c.iter().all(|&x| x > 0.0), "capacitances must be positive");
        ThermalNetwork {
            g,
            g_ambient,
            c,
            ambient_c,
            n_blocks,
        }
    }

    /// Total number of nodes (blocks + package).
    pub fn node_count(&self) -> usize {
        self.g.len()
    }

    /// Number of block nodes.
    pub fn block_count(&self) -> usize {
        self.n_blocks
    }

    /// Ambient temperature in °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Node capacitances in J/K.
    pub fn capacitances(&self) -> &[f64] {
        &self.c
    }

    /// Conductance between two nodes in W/K.
    pub fn conductance(&self, a: usize, b: usize) -> f64 {
        self.g[a][b]
    }

    /// Node-to-ambient conductances in W/K.
    pub fn ambient_conductances(&self) -> &[f64] {
        &self.g_ambient
    }

    /// Net heat flow into each node for temperatures `t` and block powers
    /// `p` (package nodes dissipate nothing), in Watts.
    pub fn heat_balance(&self, t: &[f64], p: &[f64]) -> Vec<f64> {
        let n = self.node_count();
        assert_eq!(t.len(), n);
        assert_eq!(p.len(), self.n_blocks);
        let mut q = vec![0.0; n];
        for i in 0..n {
            let mut flow = if i < self.n_blocks { p[i] } else { 0.0 };
            for j in 0..n {
                flow -= self.g[i][j] * (t[i] - t[j]);
            }
            flow -= self.g_ambient[i] * (t[i] - self.ambient_c);
            q[i] = flow;
        }
        q
    }

    /// Smallest node time constant `C / ΣG` in seconds — the stability
    /// scale for explicit integration.
    pub fn min_time_constant(&self) -> f64 {
        (0..self.node_count())
            .map(|i| {
                let total_g: f64 = self.g[i].iter().sum::<f64>() + self.g_ambient[i];
                self.c[i] / total_g.max(1e-12)
            })
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfront_power::Machine;

    fn network() -> ThermalNetwork {
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper())
    }

    #[test]
    fn node_layout() {
        let net = network();
        assert_eq!(net.block_count(), 48);
        assert_eq!(net.node_count(), 50);
    }

    #[test]
    fn every_block_reaches_the_spreader() {
        let net = network();
        let spreader = net.block_count();
        for i in 0..net.block_count() {
            assert!(net.conductance(i, spreader) > 0.0, "block {i} floats");
        }
    }

    #[test]
    fn package_chain_connected() {
        let net = network();
        let spreader = net.block_count();
        let sink = spreader + 1;
        assert!(net.conductance(spreader, sink) > 0.0);
        assert!(net.ambient_conductances()[sink] > 0.0);
        assert_eq!(net.ambient_conductances()[0], 0.0, "blocks see no ambient");
    }

    #[test]
    fn adjacent_blocks_coupled() {
        let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
        let net = ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper());
        let lateral_pairs = fp.adjacency().len();
        let mut coupled = 0;
        for i in 0..net.block_count() {
            for j in (i + 1)..net.block_count() {
                if net.conductance(i, j) > 0.0 {
                    coupled += 1;
                }
            }
        }
        assert_eq!(coupled, lateral_pairs);
        assert!(coupled > 30, "floorplan should be richly connected");
    }

    #[test]
    fn heat_balance_zero_at_ambient_no_power() {
        let net = network();
        let t = vec![net.ambient_c(); net.node_count()];
        let p = vec![0.0; net.block_count()];
        for q in net.heat_balance(&t, &p) {
            assert!(q.abs() < 1e-9);
        }
    }

    #[test]
    fn min_time_constant_reasonable() {
        let tau = network().min_time_constant();
        // Small blocks settle in 10 µs – 100 ms.
        assert!((1e-5..0.1).contains(&tau), "tau {tau}");
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_parts_rejects_asymmetric() {
        let g = vec![vec![0.0, 1.0], vec![2.0, 0.0]];
        ThermalNetwork::from_parts(g, vec![0.0; 2], vec![1.0; 2], 45.0, 2);
    }
}
