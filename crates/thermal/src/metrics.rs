//! The paper's temperature metrics (§4).
//!
//! * **AbsMax** — peak temperature over the whole run,
//! * **Average** — average over time *and* space (area-weighted),
//! * **AvgMax** — average over intervals of each interval's maximum.
//!
//! Metrics are evaluated over *groups* of blocks (e.g. "the reorder buffer"
//! is one block when centralized, two when distributed; "the frontend" is
//! the whole strip), which is how the paper reports Figs. 1 and 12–14.

/// The three paper metrics for one block group, in °C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupMetrics {
    /// Peak temperature over the run.
    pub abs_max_c: f64,
    /// Area-weighted average over time and space.
    pub average_c: f64,
    /// Mean over intervals of the per-interval maximum.
    pub avg_max_c: f64,
}

impl GroupMetrics {
    /// The paper reports *reductions of the temperature increase over
    /// ambient*; this returns `(self − other) / (self − ambient)` per
    /// metric, i.e. how much of this group's rise `other` removed.
    pub fn reduction_vs(&self, other: &GroupMetrics, ambient_c: f64) -> GroupMetrics {
        let frac = |a: f64, b: f64| {
            let rise = a - ambient_c;
            if rise.abs() < 1e-12 {
                0.0
            } else {
                (a - b) / rise
            }
        };
        GroupMetrics {
            abs_max_c: frac(self.abs_max_c, other.abs_max_c),
            average_c: frac(self.average_c, other.average_c),
            avg_max_c: frac(self.avg_max_c, other.avg_max_c),
        }
    }
}

#[derive(Debug, Clone)]
struct IntervalRecord {
    /// Per-block maximum within the interval.
    max: Vec<f64>,
    /// Per-block time-weighted average within the interval.
    avg: Vec<f64>,
    /// Interval duration in seconds.
    duration: f64,
}

/// Accumulates per-block temperature samples, closed into intervals.
///
/// # Examples
///
/// ```
/// use distfront_thermal::TemperatureTracker;
///
/// let mut tr = TemperatureTracker::new(vec![1.0, 2.0]);
/// tr.record(&[50.0, 60.0], 0.001);
/// tr.end_interval();
/// let m = tr.group_metrics(&[0, 1]);
/// assert_eq!(m.abs_max_c, 60.0);
/// // Area-weighted: (50·1 + 60·2) / 3.
/// assert!((m.average_c - 56.666).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct TemperatureTracker {
    areas: Vec<f64>,
    intervals: Vec<IntervalRecord>,
    cur_max: Vec<f64>,
    cur_sum: Vec<f64>,
    cur_time: f64,
}

impl TemperatureTracker {
    /// Creates a tracker for blocks with the given areas (mm², used for the
    /// spatial weighting of `Average`).
    ///
    /// # Panics
    ///
    /// Panics if `areas` is empty or contains a non-positive area; use
    /// [`try_new`](Self::try_new) for a recoverable error.
    pub fn new(areas: Vec<f64>) -> Self {
        assert!(!areas.is_empty(), "no blocks to track");
        assert!(
            areas.iter().all(|&a| a.is_finite() && a > 0.0),
            "areas must be positive"
        );
        Self::try_new(areas).expect("validated above")
    }

    /// The non-panicking [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// Returns a description of the defect when `areas` is empty or
    /// contains a non-positive (or non-finite) area.
    pub fn try_new(areas: Vec<f64>) -> Result<Self, String> {
        if areas.is_empty() {
            return Err("no blocks to track".into());
        }
        if let Some((i, a)) = areas
            .iter()
            .enumerate()
            .find(|(_, a)| !(a.is_finite() && **a > 0.0))
        {
            return Err(format!("areas must be positive: block {i} has {a} mm²"));
        }
        let n = areas.len();
        Ok(TemperatureTracker {
            areas,
            intervals: Vec::new(),
            cur_max: vec![f64::NEG_INFINITY; n],
            cur_sum: vec![0.0; n],
            cur_time: 0.0,
        })
    }

    /// Number of tracked blocks.
    pub fn block_count(&self) -> usize {
        self.areas.len()
    }

    /// Number of closed intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Records one temperature sample held for `dt` seconds in the current
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics if the sample length mismatches or `dt` is not positive.
    pub fn record(&mut self, temps_c: &[f64], dt: f64) {
        assert_eq!(temps_c.len(), self.areas.len());
        assert!(dt > 0.0, "dt must be positive");
        for (i, &t) in temps_c.iter().enumerate() {
            self.cur_max[i] = self.cur_max[i].max(t);
            self.cur_sum[i] += t * dt;
        }
        self.cur_time += dt;
    }

    /// Closes the current interval. Does nothing if no samples were
    /// recorded since the last close.
    pub fn end_interval(&mut self) {
        if self.cur_time == 0.0 {
            return;
        }
        let avg = self.cur_sum.iter().map(|&s| s / self.cur_time).collect();
        self.intervals.push(IntervalRecord {
            max: std::mem::replace(&mut self.cur_max, vec![f64::NEG_INFINITY; self.areas.len()]),
            avg,
            duration: self.cur_time,
        });
        self.cur_sum.iter_mut().for_each(|s| *s = 0.0);
        self.cur_time = 0.0;
    }

    /// Seconds spent in closed intervals whose group peak reached
    /// `threshold_c` — the *violation residency* used to compare DTM
    /// policies (how long the group sat at or above an emergency limit,
    /// at interval granularity).
    ///
    /// # Panics
    ///
    /// Panics if the group is empty or an index is out of range.
    pub fn time_above(&self, threshold_c: f64, blocks: &[usize]) -> f64 {
        assert!(!blocks.is_empty(), "empty block group");
        let total: f64 = self
            .intervals
            .iter()
            .filter(|iv| {
                blocks
                    .iter()
                    .map(|&b| iv.max[b])
                    .fold(f64::NEG_INFINITY, f64::max)
                    >= threshold_c
            })
            .map(|iv| iv.duration)
            .sum();
        // An empty float sum is -0.0; keep the zero unsigned for reports.
        total + 0.0
    }

    /// Computes the three paper metrics over the block-group `blocks`
    /// (canonical indices).
    ///
    /// # Panics
    ///
    /// Panics if no intervals are closed or the group is empty (use
    /// [`try_group_metrics`](Self::try_group_metrics) for a recoverable
    /// `None` instead), or if an index is out of range.
    pub fn group_metrics(&self, blocks: &[usize]) -> GroupMetrics {
        assert!(!self.intervals.is_empty(), "no closed intervals");
        assert!(!blocks.is_empty(), "empty block group");
        self.try_group_metrics(blocks).expect("validated above")
    }

    /// The non-panicking [`group_metrics`](Self::group_metrics): `None`
    /// when no intervals are closed or the group is empty — the metrics
    /// are undefined then (e.g. a zero-interval smoke run), and a report
    /// path should degrade gracefully instead of aborting.
    ///
    /// # Panics
    ///
    /// Still panics if a block index is out of range — that is a caller
    /// bug, not a data condition.
    pub fn try_group_metrics(&self, blocks: &[usize]) -> Option<GroupMetrics> {
        if self.intervals.is_empty() || blocks.is_empty() {
            return None;
        }
        let group_area: f64 = blocks.iter().map(|&b| self.areas[b]).sum();
        let mut abs_max = f64::NEG_INFINITY;
        let mut avg_max_sum = 0.0;
        let mut avg_sum = 0.0;
        let mut total_time = 0.0;
        for iv in &self.intervals {
            let imax = blocks
                .iter()
                .map(|&b| iv.max[b])
                .fold(f64::NEG_INFINITY, f64::max);
            abs_max = abs_max.max(imax);
            avg_max_sum += imax;
            let area_avg: f64 = blocks
                .iter()
                .map(|&b| iv.avg[b] * self.areas[b])
                .sum::<f64>()
                / group_area;
            avg_sum += area_avg * iv.duration;
            total_time += iv.duration;
        }
        Some(GroupMetrics {
            abs_max_c: abs_max,
            average_c: avg_sum / total_time,
            avg_max_c: avg_max_sum / self.intervals.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_interval_metrics() {
        let mut tr = TemperatureTracker::new(vec![1.0, 1.0]);
        tr.record(&[50.0, 70.0], 1.0);
        tr.end_interval();
        let m = tr.group_metrics(&[0, 1]);
        assert_eq!(m.abs_max_c, 70.0);
        assert_eq!(m.average_c, 60.0);
        assert_eq!(m.avg_max_c, 70.0);
    }

    #[test]
    fn avg_max_differs_from_abs_max() {
        let mut tr = TemperatureTracker::new(vec![1.0]);
        tr.record(&[50.0], 1.0);
        tr.end_interval();
        tr.record(&[90.0], 1.0);
        tr.end_interval();
        let m = tr.group_metrics(&[0]);
        assert_eq!(m.abs_max_c, 90.0);
        assert_eq!(m.avg_max_c, 70.0);
        assert_eq!(m.average_c, 70.0);
    }

    #[test]
    fn area_weighting() {
        let mut tr = TemperatureTracker::new(vec![3.0, 1.0]);
        tr.record(&[40.0, 80.0], 1.0);
        tr.end_interval();
        let m = tr.group_metrics(&[0, 1]);
        assert_eq!(m.average_c, 50.0); // (40·3 + 80·1)/4
    }

    #[test]
    fn time_weighting_within_interval() {
        let mut tr = TemperatureTracker::new(vec![1.0]);
        tr.record(&[40.0], 3.0);
        tr.record(&[80.0], 1.0);
        tr.end_interval();
        let m = tr.group_metrics(&[0]);
        assert_eq!(m.average_c, 50.0);
        assert_eq!(m.abs_max_c, 80.0);
    }

    #[test]
    fn unequal_interval_durations_weighted() {
        let mut tr = TemperatureTracker::new(vec![1.0]);
        tr.record(&[40.0], 3.0);
        tr.end_interval();
        tr.record(&[80.0], 1.0);
        tr.end_interval();
        let m = tr.group_metrics(&[0]);
        assert_eq!(m.average_c, 50.0, "Average weights by duration");
        assert_eq!(m.avg_max_c, 60.0, "AvgMax weights intervals equally");
    }

    #[test]
    fn subgroup_metrics() {
        let mut tr = TemperatureTracker::new(vec![1.0, 1.0, 1.0]);
        tr.record(&[50.0, 90.0, 60.0], 1.0);
        tr.end_interval();
        assert_eq!(tr.group_metrics(&[0]).abs_max_c, 50.0);
        assert_eq!(tr.group_metrics(&[0, 2]).abs_max_c, 60.0);
        assert_eq!(tr.group_metrics(&[1]).abs_max_c, 90.0);
    }

    #[test]
    fn empty_interval_close_is_noop() {
        let mut tr = TemperatureTracker::new(vec![1.0]);
        tr.end_interval();
        assert_eq!(tr.interval_count(), 0);
        tr.record(&[55.0], 1.0);
        tr.end_interval();
        tr.end_interval();
        assert_eq!(tr.interval_count(), 1);
    }

    #[test]
    fn time_above_sums_violating_interval_durations() {
        let mut tr = TemperatureTracker::new(vec![1.0, 1.0]);
        tr.record(&[50.0, 95.0], 2.0);
        tr.end_interval();
        tr.record(&[50.0, 70.0], 3.0);
        tr.end_interval();
        tr.record(&[91.0, 60.0], 1.0);
        tr.end_interval();
        assert_eq!(tr.time_above(90.0, &[0, 1]), 3.0);
        assert_eq!(tr.time_above(90.0, &[0]), 1.0);
        assert_eq!(tr.time_above(200.0, &[0, 1]), 0.0);
        assert_eq!(tr.time_above(0.0, &[0, 1]), 6.0);
    }

    #[test]
    fn reduction_vs_computes_rise_fraction() {
        let base = GroupMetrics {
            abs_max_c: 105.0,
            average_c: 75.0,
            avg_max_c: 95.0,
        };
        let improved = GroupMetrics {
            abs_max_c: 85.0,
            average_c: 65.0,
            avg_max_c: 80.0,
        };
        let r = base.reduction_vs(&improved, 45.0);
        assert!((r.abs_max_c - 20.0 / 60.0).abs() < 1e-12);
        assert!((r.average_c - 10.0 / 30.0).abs() < 1e-12);
        assert!((r.avg_max_c - 15.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no closed intervals")]
    fn metrics_before_close_panic() {
        let tr = TemperatureTracker::new(vec![1.0]);
        tr.group_metrics(&[0]);
    }

    #[test]
    #[should_panic(expected = "areas must be positive")]
    fn bad_area_panics() {
        TemperatureTracker::new(vec![0.0]);
    }

    #[test]
    fn try_group_metrics_degrades_instead_of_panicking() {
        let mut tr = TemperatureTracker::new(vec![1.0]);
        // Zero closed intervals: undefined metrics, not an abort.
        assert_eq!(tr.try_group_metrics(&[0]), None);
        assert_eq!(tr.try_group_metrics(&[]), None);
        tr.record(&[55.0], 1.0);
        tr.end_interval();
        let m = tr.try_group_metrics(&[0]).unwrap();
        assert_eq!(m, tr.group_metrics(&[0]), "try_ and panicking agree");
        assert_eq!(m.abs_max_c, 55.0);
    }

    #[test]
    fn try_new_reports_defects() {
        assert!(TemperatureTracker::try_new(vec![]).is_err());
        let err = TemperatureTracker::try_new(vec![1.0, -2.0]).unwrap_err();
        assert!(err.contains("block 1"), "{err}");
        assert!(TemperatureTracker::try_new(vec![1.0, f64::NAN]).is_err());
        assert_eq!(
            TemperatureTracker::try_new(vec![1.0])
                .unwrap()
                .block_count(),
            1
        );
    }
}
