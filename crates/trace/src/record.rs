//! Recorded-activity traces: the serializable record/replay format.
//!
//! An [`ActivityTrace`] captures everything the power/thermal/DTM side of
//! an experiment consumes from the cycle simulator: the pilot's merged
//! activity, one [`IntervalRecord`] per evaluation interval, and the run's
//! final cycle/micro-op statistics. Replaying the trace through the
//! engine's `ReplayBackend` reproduces a live run bit-for-bit without
//! re-simulating the core — which is what makes pure thermal/DTM sweeps
//! several times cheaper per cell.
//!
//! # The multi-point model (v2+)
//!
//! Since version 2 a trace records, per interval, a small **family of
//! operating points** instead of a single flattened counter row. The
//! family is declared once in the header as a list of [`PointKey`]s —
//! always [`PointKey::Nominal`] first, then the policy-actionable
//! variants the recording configuration's DTM policy could engage (a
//! clock-scaled DVFS point, a fetch-gated duty point, one dispatch-bias
//! point per frontend partition). Every [`IntervalRecord`] then carries
//! one [`PointRecord`] (flattened counters + done flag) per family entry,
//! in family order, plus the Vdd-gated trace-cache bank in force
//! (interval-boundary state, shared by all points of the interval).
//!
//! The family doubles as the trace's **replay capability set**: a replay
//! whose DTM policy can only ever emit actions covered by the family can
//! select the matching recorded point each interval, so the paper's
//! core-perturbing DTM ladder (DVFS, fetch toggling, migration) replays
//! from a trace recorded under the same policy. [`TraceMeta::capability_id`]
//! renders the set as a stable string used for store keys, file names and
//! job fingerprints.
//!
//! # The v3 delta layout
//!
//! Version 3 keeps the v2 structure but changes how non-nominal point
//! rows hit the wire. A variant row differs from the interval's nominal
//! row in a handful of counters (a gated fetch stream commits less, a
//! scaled clock shifts a few occupancy numbers — most words are equal),
//! so storing every row raw repeats almost-identical 8-byte words per
//! point. v3 therefore writes, for each non-nominal [`PointRecord`],
//! the per-counter difference from the interval's **nominal** row as a
//! zig-zag LEB128 varint ([`crate::codec`]): `delta[i] =
//! counters[i].wrapping_sub(nominal[i])` as a signed value. A zero delta
//! is one byte instead of eight, and decode reconstructs exactly via
//! `nominal[i].wrapping_add(delta[i])` — wrapping two's-complement
//! arithmetic, so the mapping is a bijection and round-trips **any**
//! `u64` counter value bit-exactly. The row carries no count prefix: its
//! length is pinned by [`TraceShape::flat_len`], which decode validates.
//! The nominal row and the pilot stay raw count-prefixed words.
//!
//! # Format and version policy
//!
//! Traces serialize through the workspace's shared binary codec
//! ([`crate::codec`], no external dependencies): the magic bytes `DFAT`,
//! a little-endian `u32` format version, then the metadata, point-family,
//! pilot, interval and final-stats sections, with every integer
//! little-endian, every float stored as its exact IEEE-754 bits, every
//! string length-prefixed UTF-8, and v3 delta rows as zig-zag varints.
//!
//! The version number is the compatibility contract:
//!
//! * [`TRACE_FORMAT_VERSION`] is bumped on **any** layout change — field
//!   reordering, widening, new sections, a new row encoding (v2 → v3),
//!   and in particular any change to the flattened-counter layout implied
//!   by [`TraceShape::flat_len`] (the flattening itself lives in
//!   `distfront_uarch`, next to the counters it serializes).
//! * Decoding rejects unknown versions outright
//!   ([`TraceCodecError::UnsupportedVersion`]) rather than guessing:
//!   a replayed trace feeds physical models, so a misread field would
//!   silently produce plausible-but-wrong science.
//! * **Older versions stay readable, current-only on write.** The v1
//!   path decodes the legacy single-row layout into the multi-point
//!   model as a `[Nominal]` family; the v2 path decodes raw (non-delta)
//!   point rows. [`ActivityTrace::encode`] always writes
//!   [`TRACE_FORMAT_VERSION`], so re-encoding an older-version trace
//!   upgrades its container losslessly (the content is unchanged — only
//!   the wire layout). There is no other cross-version migration path by
//!   design, and [`TraceMeta::version`] records what was actually read.
//! * Within one version, decoding validates structure (magic, counter
//!   lengths against the declared [`TraceShape`], family invariants,
//!   varint bounds, no trailing bytes), so `decode(encode(t)) == t` and
//!   truncated or corrupt files fail loudly.
//!
//! # Examples
//!
//! ```
//! use distfront_trace::record::*;
//!
//! let shape = TraceShape { partitions: 1, backends: 4, tc_banks: 2 };
//! let trace = ActivityTrace {
//!     meta: TraceMeta {
//!         version: TRACE_FORMAT_VERSION,
//!         workload: "tiny".into(),
//!         config: "baseline".into(),
//!         processor_fingerprint: 0xFEED,
//!         seed: 7,
//!         uops_per_app: 1000,
//!         interval_cycles: 500,
//!         shape,
//!         hop: false,
//!         replay_safe: true,
//!         dtm: None,
//!         points: vec![PointKey::Nominal],
//!     },
//!     pilot: vec![0; shape.flat_len()],
//!     intervals: vec![IntervalRecord {
//!         points: vec![PointRecord { counters: vec![1; shape.flat_len()], done: true }],
//!         gated_bank: Some(1),
//!     }],
//!     finals: FinalStats { cycles: 500, uops: 1000, tc_hit_rate: 0.9, mispredict_rate: 0.05 },
//! };
//! let bytes = trace.encode();
//! assert_eq!(ActivityTrace::decode(&bytes).unwrap(), trace);
//! assert_eq!(trace.meta.capability_id(), "nominal");
//! ```

use crate::codec::{CodecError, Reader, Writer};

/// Current serialization version; see the module docs for the policy.
pub const TRACE_FORMAT_VERSION: u32 = 3;

/// The raw-row multi-point layout (read-only; superseded by the v3
/// delta rows).
pub const TRACE_FORMAT_V2: u32 = 2;

/// The legacy single-point layout, still decodable (read-only).
pub const TRACE_FORMAT_V1: u32 = 1;

/// Magic bytes opening every serialized trace.
pub const TRACE_MAGIC: [u8; 4] = *b"DFAT";

/// A stable, toolchain-independent content hash for addressing derived
/// artifacts (cached sweep results, trace identities) by what produced
/// them.
///
/// This is 64-bit FNV-1a over an explicitly enumerated byte stream — not
/// `std::hash`, whose `DefaultHasher` output is unspecified across
/// toolchains and whose `Hash` derives change silently when fields are
/// reordered. Every hasher is seeded with [`TRACE_MAGIC`] and
/// [`TRACE_FORMAT_VERSION`], so **any** trace-format bump changes every
/// fingerprint derived through this type: a result cached against format
/// v2 can never be served to a client speaking v3 (the same lesson as the
/// warm-start key's leakage bits — identity must cover every input the
/// bytes depend on).
///
/// Multi-byte integers are folded little-endian and floats as their exact
/// IEEE-754 bits, matching the trace codec's conventions.
///
/// # Examples
///
/// ```
/// use distfront_trace::record::Fingerprint;
///
/// let a = Fingerprint::new().with_bytes(b"baseline").with_u64(40_000);
/// let b = Fingerprint::new().with_bytes(b"baseline").with_u64(40_000);
/// assert_eq!(a.finish(), b.finish());
/// assert_ne!(a.finish(), Fingerprint::new().finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher seeded with the trace-format magic and version.
    #[allow(clippy::new_without_default)] // seeded, not empty: Default would lie
    pub fn new() -> Self {
        Fingerprint(Self::FNV_OFFSET)
            .with_bytes(&TRACE_MAGIC)
            .with_u32(TRACE_FORMAT_VERSION)
    }

    /// Folds raw bytes into the hash.
    #[must_use]
    pub fn with_bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::FNV_PRIME);
        }
        self
    }

    /// Folds a length-prefixed string (so `"ab","c"` and `"a","bc"`
    /// fingerprint differently).
    #[must_use]
    pub fn with_str(self, s: &str) -> Self {
        self.with_u64(s.len() as u64).with_bytes(s.as_bytes())
    }

    /// Folds a `u32`, little-endian.
    #[must_use]
    pub fn with_u32(self, v: u32) -> Self {
        self.with_bytes(&v.to_le_bytes())
    }

    /// Folds a `u64`, little-endian.
    #[must_use]
    pub fn with_u64(self, v: u64) -> Self {
        self.with_bytes(&v.to_le_bytes())
    }

    /// Folds a float's exact IEEE-754 bits (so `-0.0` and `0.0`, or two
    /// NaN payloads, are distinct — bit identity, not numeric equality).
    #[must_use]
    pub fn with_f64(self, v: f64) -> Self {
        self.with_u64(v.to_bits())
    }

    /// The 64-bit content hash of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The machine shape a trace's flattened counters describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceShape {
    /// Frontend partitions.
    pub partitions: u32,
    /// Backend clusters.
    pub backends: u32,
    /// Physical trace-cache banks.
    pub tc_banks: u32,
}

impl TraceShape {
    /// Number of `u64` words in one flattened activity-counter record for
    /// this shape. The layout (defined by `distfront_uarch`'s flattening,
    /// which tests itself against this formula) is: 12 scalar counters,
    /// the per-bank accesses, 6 per-partition vectors, then 15 counters
    /// per backend cluster.
    pub fn flat_len(&self) -> usize {
        12 + self.tc_banks as usize + 6 * self.partitions as usize + 15 * self.backends as usize
    }
}

/// One operating point of a recorded interval family: the DTM actuator
/// state the core was (or was hypothetically) running under while the
/// point's counters accumulated.
///
/// Keys identify points exactly: DVFS scale factors are carried as raw
/// IEEE-754 bits so key equality is bit equality, matching the policy's
/// own parameters with no float rounding in between. The derived `Ord`
/// gives families and capability IDs a canonical order-free identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PointKey {
    /// No core-side actuator engaged (also covers power-level throttling,
    /// which never perturbs the activity stream).
    Nominal,
    /// Global DVFS at `f_scale`/`v_scale` (stored as exact f64 bits).
    Dvfs {
        /// `f_scale.to_bits()`.
        f_bits: u64,
        /// `v_scale.to_bits()`.
        v_bits: u64,
    },
    /// Fetch toggling at an `open`-of-`period` duty cycle.
    FetchGate {
        /// Cycles per period the fetch unit is enabled.
        open: u32,
        /// Period of the gating pattern in cycles.
        period: u32,
    },
    /// Dispatch biased toward frontend partition `0`'s…`n`'s backends.
    MigrateTo(u32),
}

impl PointKey {
    /// A DVFS point from scale factors (exact-bit key).
    pub fn dvfs(f_scale: f64, v_scale: f64) -> Self {
        PointKey::Dvfs {
            f_bits: f_scale.to_bits(),
            v_bits: v_scale.to_bits(),
        }
    }

    /// The DVFS scale factors, if this is a DVFS point.
    pub fn dvfs_scales(&self) -> Option<(f64, f64)> {
        match self {
            PointKey::Dvfs { f_bits, v_bits } => {
                Some((f64::from_bits(*f_bits), f64::from_bits(*v_bits)))
            }
            _ => None,
        }
    }

    /// A short, stable, filesystem-safe label (`nominal`,
    /// `dvfs(0.7x0.85)`, `gate(1of2)`, `migrate(1)`), used to build
    /// [`TraceMeta::capability_id`].
    pub fn label(&self) -> String {
        match self {
            PointKey::Nominal => "nominal".to_string(),
            PointKey::Dvfs { f_bits, v_bits } => format!(
                "dvfs({}x{})",
                f64::from_bits(*f_bits),
                f64::from_bits(*v_bits)
            ),
            PointKey::FetchGate { open, period } => format!("gate({open}of{period})"),
            PointKey::MigrateTo(p) => format!("migrate({p})"),
        }
    }

    /// Structural validity against a machine shape.
    fn validate(&self, shape: &TraceShape) -> Result<(), TraceCodecError> {
        match self {
            PointKey::Nominal => Ok(()),
            PointKey::Dvfs { f_bits, v_bits } => {
                let (f, v) = (f64::from_bits(*f_bits), f64::from_bits(*v_bits));
                if !(f.is_finite() && v.is_finite() && 0.0 < f && f <= 1.0 && 0.0 < v && v <= 1.0) {
                    return Err(TraceCodecError::Corrupt("DVFS point outside (0, 1]"));
                }
                Ok(())
            }
            PointKey::FetchGate { open, period } => {
                if *open == 0 || *period == 0 || open > period {
                    return Err(TraceCodecError::Corrupt("fetch-gate point invalid duty"));
                }
                Ok(())
            }
            PointKey::MigrateTo(p) => {
                if *p >= shape.partitions {
                    return Err(TraceCodecError::Corrupt("migration point outside shape"));
                }
                Ok(())
            }
        }
    }
}

/// Renders a point family as the canonical capability string
/// (`nominal+dvfs(0.7x0.85)` …); see [`TraceMeta::capability_id`].
pub fn points_id(points: &[PointKey]) -> String {
    points
        .iter()
        .map(PointKey::label)
        .collect::<Vec<_>>()
        .join("+")
}

/// Run-identifying metadata stored in the trace header. Replay validates
/// these against the target configuration: the core-side fields (seed,
/// run length, interval, shape, hop) must match exactly, while the
/// power/thermal/DTM side is free to differ — that is the whole point of
/// replaying — as long as the target policy's possible actions are
/// covered by the recorded point family.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Format version the trace was **read from** (informational:
    /// [`ActivityTrace::encode`] always writes the current version).
    pub version: u32,
    /// Workload name (an `AppProfile` or `PhasedProfile` name).
    pub workload: String,
    /// Name of the experiment configuration the trace was recorded under.
    pub config: String,
    /// Opaque fingerprint of the full core-side (processor) configuration,
    /// computed by the recorder. Replay recomputes it for the target
    /// configuration and rejects any mismatch, so two configurations that
    /// share shape, seed and run length but differ elsewhere in the core
    /// (e.g. only in a cache mapping policy) can never silently stand in
    /// for each other. The hash is stable within a toolchain; across
    /// toolchains a mismatch merely forces a (cheap) re-record.
    pub processor_fingerprint: u64,
    /// Workload seed.
    pub seed: u64,
    /// Micro-ops simulated per application.
    pub uops_per_app: u64,
    /// Control/thermal interval in cycles.
    pub interval_cycles: u64,
    /// Machine shape of the flattened counters.
    pub shape: TraceShape,
    /// Whether trace-cache bank hopping was enabled.
    pub hop: bool,
    /// `false` when the run was driven by an arbitrary boxed DTM policy
    /// the recorder cannot prove equivalent to any operating point — such
    /// a recording carries the live stream but can never replay.
    pub replay_safe: bool,
    /// Name of the record-time DTM policy, if one was configured.
    pub dtm: Option<String>,
    /// The recorded operating-point family, [`PointKey::Nominal`] first —
    /// the trace's replay capability set (see the module docs). Every
    /// interval carries one [`PointRecord`] per entry, in this order.
    pub points: Vec<PointKey>,
}

impl TraceMeta {
    /// The canonical capability identity of this trace: `"tainted"` for
    /// recordings that can never replay, else the `+`-joined point labels
    /// (`"nominal"`, `"nominal+gate(1of2)"`, …). Stable across runs and
    /// toolchains; used as the [`TraceStore`] key component, the trace
    /// file-name suffix and a job-fingerprint input.
    ///
    /// [`TraceStore`]: ../../distfront/engine/struct.TraceStore.html
    pub fn capability_id(&self) -> String {
        if !self.replay_safe {
            return "tainted".to_string();
        }
        points_id(&self.points)
    }

    /// Position of `key` in the recorded point family.
    pub fn point_index(&self, key: PointKey) -> Option<usize> {
        self.points.iter().position(|p| *p == key)
    }

    /// Whether the family covers every key in `required` (and the trace
    /// is untainted) — the capability test replay validation applies.
    pub fn covers(&self, required: &[PointKey]) -> bool {
        self.replay_safe && required.iter().all(|k| self.points.contains(k))
    }
}

/// The counters one operating point of one interval accumulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointRecord {
    /// Flattened activity-counter words (`distfront_uarch`'s
    /// `ActivityCounters` in canonical order); length is exactly
    /// [`TraceShape::flat_len`].
    pub counters: Vec<u64>,
    /// Whether the run's micro-op budget was reached in this interval at
    /// this operating point (a gated/scaled variant can lag the nominal
    /// stream, so the flag is per point).
    pub done: bool,
}

/// One evaluation interval: one [`PointRecord`] per family entry (in
/// [`TraceMeta::points`] order) plus the simulator-side state the
/// interval loop reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRecord {
    /// The interval's operating-point records, parallel to the header's
    /// point family.
    pub points: Vec<PointRecord>,
    /// The Vdd-gated trace-cache bank during this interval, if any
    /// (interval-boundary control state, shared by every point).
    pub gated_bank: Option<u8>,
}

impl IntervalRecord {
    /// The nominal point's record (family position 0).
    ///
    /// # Panics
    ///
    /// Panics on a structurally empty interval (decode never produces
    /// one).
    pub fn nominal(&self) -> &PointRecord {
        &self.points[0]
    }
}

/// End-of-run statistics the report surface needs but the replayed
/// power/thermal loop cannot recompute (they belong to the core
/// simulator). Floats are carried bit-exactly so a replayed report is
/// byte-identical to the live one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinalStats {
    /// Total cycles to commit the budget.
    pub cycles: u64,
    /// Micro-ops committed.
    pub uops: u64,
    /// Trace-cache hit rate over the run.
    pub tc_hit_rate: f64,
    /// Branch misprediction rate over the run.
    pub mispredict_rate: f64,
}

/// A complete recorded run: header, pilot activity, per-interval records
/// and final statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityTrace {
    /// Run-identifying metadata.
    pub meta: TraceMeta,
    /// The pilot phase's merged flattened activity (length
    /// [`TraceShape::flat_len`]), from which replay re-derives the nominal
    /// power profile bit-exactly.
    pub pilot: Vec<u64>,
    /// One record per evaluation interval, in execution order.
    pub intervals: Vec<IntervalRecord>,
    /// End-of-run statistics.
    pub finals: FinalStats,
}

/// Why a byte stream failed to decode as an [`ActivityTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCodecError {
    /// The stream does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The stream's version is not one this build reads
    /// ([`TRACE_FORMAT_V1`], [`TRACE_FORMAT_V2`] or
    /// [`TRACE_FORMAT_VERSION`]).
    UnsupportedVersion(u32),
    /// The stream ended inside the named section.
    Truncated(&'static str),
    /// A structural invariant failed (bad lengths, invalid UTF-8,
    /// trailing bytes).
    Corrupt(&'static str),
}

impl From<CodecError> for TraceCodecError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated(what) => TraceCodecError::Truncated(what),
            CodecError::Corrupt(what) => TraceCodecError::Corrupt(what),
        }
    }
}

impl std::fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCodecError::BadMagic => write!(f, "not an activity trace (bad magic)"),
            TraceCodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (this build reads \
                     {TRACE_FORMAT_V1}, {TRACE_FORMAT_V2} and {TRACE_FORMAT_VERSION})"
                )
            }
            TraceCodecError::Truncated(what) => write!(f, "trace truncated in {what}"),
            TraceCodecError::Corrupt(what) => write!(f, "trace corrupt: {what}"),
        }
    }
}

impl std::error::Error for TraceCodecError {}

/// Sentinel encoding `gated_bank: None` (a machine never has 2^16−1
/// physical banks).
const NO_GATED_BANK: u16 = u16::MAX;

/// [`PointKey`] wire tags (v2+).
const POINT_NOMINAL: u8 = 0;
const POINT_DVFS: u8 = 1;
const POINT_FETCH_GATE: u8 = 2;
const POINT_MIGRATE: u8 = 3;

/// Appends a [`PointKey`] in the v2+ tagged wire layout.
fn write_point_key(w: &mut Writer, key: &PointKey) {
    match key {
        PointKey::Nominal => w.u8(POINT_NOMINAL),
        PointKey::Dvfs { f_bits, v_bits } => {
            w.u8(POINT_DVFS);
            w.u64(*f_bits);
            w.u64(*v_bits);
        }
        PointKey::FetchGate { open, period } => {
            w.u8(POINT_FETCH_GATE);
            w.u32(*open);
            w.u32(*period);
        }
        PointKey::MigrateTo(p) => {
            w.u8(POINT_MIGRATE);
            w.u32(*p);
        }
    }
}

/// Reads a [`PointKey`] in the v2+ tagged wire layout.
fn read_point_key(r: &mut Reader<'_>, what: &'static str) -> Result<PointKey, TraceCodecError> {
    match r.u8(what)? {
        POINT_NOMINAL => Ok(PointKey::Nominal),
        POINT_DVFS => Ok(PointKey::Dvfs {
            f_bits: r.u64(what)?,
            v_bits: r.u64(what)?,
        }),
        POINT_FETCH_GATE => Ok(PointKey::FetchGate {
            open: r.u32(what)?,
            period: r.u32(what)?,
        }),
        POINT_MIGRATE => Ok(PointKey::MigrateTo(r.u32(what)?)),
        _ => Err(TraceCodecError::Corrupt("unknown operating-point tag")),
    }
}

/// Reads the gated-bank `u16` (sentinel [`NO_GATED_BANK`] = none) and
/// validates it against the machine shape.
fn read_gated_bank(r: &mut Reader<'_>, shape: &TraceShape) -> Result<Option<u8>, TraceCodecError> {
    let gated = r.u16("gated bank")?;
    if gated == NO_GATED_BANK {
        Ok(None)
    } else if gated <= u16::from(u8::MAX) && (u32::from(gated)) < shape.tc_banks {
        Ok(Some(gated as u8))
    } else {
        Err(TraceCodecError::Corrupt("gated bank outside shape"))
    }
}

impl ActivityTrace {
    /// Serializes the trace to the versioned binary format. Always writes
    /// [`TRACE_FORMAT_VERSION`] — re-encoding a v1- or v2-decoded trace
    /// upgrades its container to v3 (same content, current layout).
    pub fn encode(&self) -> Vec<u8> {
        let flat = self.pilot.len();
        // Nominal rows are raw 8-byte words; variant rows are mostly
        // 1-byte deltas, so size them at ~2 bytes per counter.
        let per_interval =
            8 * (flat + 2) + self.meta.points.len().saturating_sub(1) * (2 * flat + 1);
        let mut w = Writer::with_capacity(96 + 8 * flat + self.intervals.len() * per_interval);
        w.header(&TRACE_MAGIC, TRACE_FORMAT_VERSION);
        w.str(&self.meta.workload);
        w.str(&self.meta.config);
        w.u64(self.meta.processor_fingerprint);
        w.u64(self.meta.seed);
        w.u64(self.meta.uops_per_app);
        w.u64(self.meta.interval_cycles);
        w.u32(self.meta.shape.partitions);
        w.u32(self.meta.shape.backends);
        w.u32(self.meta.shape.tc_banks);
        w.u8(u8::from(self.meta.hop));
        w.u8(u8::from(self.meta.replay_safe));
        match &self.meta.dtm {
            None => w.u8(0),
            Some(name) => {
                w.u8(1);
                w.str(name);
            }
        }
        w.u32(self.meta.points.len() as u32);
        for key in &self.meta.points {
            write_point_key(&mut w, key);
        }
        w.words(&self.pilot);
        w.u32(self.intervals.len() as u32);
        for rec in &self.intervals {
            w.u16(rec.gated_bank.map_or(NO_GATED_BANK, u16::from));
            for (idx, point) in rec.points.iter().enumerate() {
                w.u8(u8::from(point.done));
                if idx == 0 {
                    w.words(&point.counters);
                } else {
                    debug_assert_eq!(point.counters.len(), rec.points[0].counters.len());
                    for (c, n) in point.counters.iter().zip(&rec.points[0].counters) {
                        w.zigzag(c.wrapping_sub(*n) as i64);
                    }
                }
            }
        }
        w.u64(self.finals.cycles);
        w.u64(self.finals.uops);
        w.f64(self.finals.tc_hit_rate);
        w.f64(self.finals.mispredict_rate);
        w.into_vec()
    }

    /// Deserializes a trace (current format or the legacy v1/v2
    /// layouts), validating structure as described in the module docs.
    /// A v1 stream yields a trace whose point family is `[Nominal]`;
    /// [`TraceMeta::version`] records the version actually read.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceCodecError`] naming the first violated invariant.
    pub fn decode(bytes: &[u8]) -> Result<ActivityTrace, TraceCodecError> {
        let mut r = Reader::new(bytes);
        if r.take(4, "magic")? != TRACE_MAGIC {
            return Err(TraceCodecError::BadMagic);
        }
        let version = r.u32("version")?;
        match version {
            TRACE_FORMAT_V1 => Self::decode_v1(r),
            TRACE_FORMAT_V2 | TRACE_FORMAT_VERSION => Self::decode_multipoint(r, version),
            other => Err(TraceCodecError::UnsupportedVersion(other)),
        }
    }

    /// Shared header fields up to the dtm name (identical in every
    /// version).
    #[allow(clippy::type_complexity)]
    fn decode_common(
        r: &mut Reader<'_>,
    ) -> Result<
        (
            String,
            String,
            u64,
            u64,
            u64,
            u64,
            TraceShape,
            bool,
            bool,
            Option<String>,
        ),
        TraceCodecError,
    > {
        let workload = r.str("workload name")?;
        let config = r.str("config name")?;
        let processor_fingerprint = r.u64("processor fingerprint")?;
        let seed = r.u64("seed")?;
        let uops_per_app = r.u64("uops")?;
        let interval_cycles = r.u64("interval")?;
        let shape = TraceShape {
            partitions: r.u32("shape")?,
            backends: r.u32("shape")?,
            tc_banks: r.u32("shape")?,
        };
        if shape.partitions == 0 || shape.backends == 0 || shape.tc_banks == 0 {
            return Err(TraceCodecError::Corrupt("degenerate machine shape"));
        }
        let hop = r.flag("hop flag")?;
        let replay_safe = r.flag("replay-safe flag")?;
        let dtm = match r.u8("dtm flag")? {
            0 => None,
            1 => Some(r.str("dtm name")?),
            _ => return Err(TraceCodecError::Corrupt("dtm flag byte not 0/1")),
        };
        Ok((
            workload,
            config,
            processor_fingerprint,
            seed,
            uops_per_app,
            interval_cycles,
            shape,
            hop,
            replay_safe,
            dtm,
        ))
    }

    fn decode_finals(r: &mut Reader<'_>) -> Result<FinalStats, TraceCodecError> {
        let finals = FinalStats {
            cycles: r.u64("final stats")?,
            uops: r.u64("final stats")?,
            tc_hit_rate: r.f64("final stats")?,
            mispredict_rate: r.f64("final stats")?,
        };
        r.expect_end()?;
        Ok(finals)
    }

    /// The multi-point layouts: v2 (raw variant rows) and v3 (zig-zag
    /// varint delta rows against the interval's nominal row). Everything
    /// else is shared.
    fn decode_multipoint(
        mut r: Reader<'_>,
        version: u32,
    ) -> Result<ActivityTrace, TraceCodecError> {
        let (
            workload,
            config,
            processor_fingerprint,
            seed,
            uops_per_app,
            interval_cycles,
            shape,
            hop,
            replay_safe,
            dtm,
        ) = Self::decode_common(&mut r)?;
        let n_points = r.u32("point family")? as usize;
        let mut points = Vec::with_capacity(n_points.min(1 << 12));
        for _ in 0..n_points {
            points.push(read_point_key(&mut r, "point family")?);
        }
        if points.is_empty() {
            return Err(TraceCodecError::Corrupt("empty point family"));
        }
        if points[0] != PointKey::Nominal {
            return Err(TraceCodecError::Corrupt("family must start nominal"));
        }
        for (i, key) in points.iter().enumerate() {
            key.validate(&shape)?;
            if points[..i].contains(key) {
                return Err(TraceCodecError::Corrupt("duplicate operating point"));
            }
        }
        let flat_len = shape.flat_len();
        let pilot = r.words("pilot counters")?;
        if pilot.len() != flat_len {
            return Err(TraceCodecError::Corrupt("pilot length mismatches shape"));
        }
        let n = r.u32("interval count")? as usize;
        let mut intervals = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let gated_bank = read_gated_bank(&mut r, &shape)?;
            let mut recs: Vec<PointRecord> = Vec::with_capacity(points.len());
            for idx in 0..points.len() {
                let done = r.flag("done flag")?;
                let counters = if idx == 0 || version == TRACE_FORMAT_V2 {
                    let counters = r.words("interval counters")?;
                    if counters.len() != flat_len {
                        return Err(TraceCodecError::Corrupt("interval length mismatches shape"));
                    }
                    counters
                } else {
                    let nominal = &recs[0].counters;
                    let mut counters = Vec::with_capacity(flat_len);
                    for &base in nominal.iter() {
                        let delta = r.zigzag("interval point deltas")?;
                        counters.push(base.wrapping_add(delta as u64));
                    }
                    counters
                };
                recs.push(PointRecord { counters, done });
            }
            intervals.push(IntervalRecord {
                points: recs,
                gated_bank,
            });
        }
        let finals = Self::decode_finals(&mut r)?;
        Ok(ActivityTrace {
            meta: TraceMeta {
                version,
                workload,
                config,
                processor_fingerprint,
                seed,
                uops_per_app,
                interval_cycles,
                shape,
                hop,
                replay_safe,
                dtm,
                points,
            },
            pilot,
            intervals,
            finals,
        })
    }

    /// The legacy single-point layout: one counter row per interval, no
    /// point-family section. Decodes into the multi-point model with a
    /// `[Nominal]` family — exactly the power-level capability v1 could
    /// express.
    fn decode_v1(mut r: Reader<'_>) -> Result<ActivityTrace, TraceCodecError> {
        let (
            workload,
            config,
            processor_fingerprint,
            seed,
            uops_per_app,
            interval_cycles,
            shape,
            hop,
            replay_safe,
            dtm,
        ) = Self::decode_common(&mut r)?;
        let flat_len = shape.flat_len();
        let pilot = r.words("pilot counters")?;
        if pilot.len() != flat_len {
            return Err(TraceCodecError::Corrupt("pilot length mismatches shape"));
        }
        let n = r.u32("interval count")? as usize;
        let mut intervals = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let gated_bank = read_gated_bank(&mut r, &shape)?;
            let done = r.flag("done flag")?;
            let counters = r.words("interval counters")?;
            if counters.len() != flat_len {
                return Err(TraceCodecError::Corrupt("interval length mismatches shape"));
            }
            intervals.push(IntervalRecord {
                points: vec![PointRecord { counters, done }],
                gated_bank,
            });
        }
        let finals = Self::decode_finals(&mut r)?;
        Ok(ActivityTrace {
            meta: TraceMeta {
                version: TRACE_FORMAT_V1,
                workload,
                config,
                processor_fingerprint,
                seed,
                uops_per_app,
                interval_cycles,
                shape,
                hop,
                replay_safe,
                dtm,
                points: vec![PointKey::Nominal],
            },
            pilot,
            intervals,
            finals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use proptest::prelude::*;

    fn sample_points(rng: &mut SplitMix64, shape: &TraceShape) -> Vec<PointKey> {
        let mut points = vec![PointKey::Nominal];
        if rng.chance(0.4) {
            points.push(PointKey::dvfs(0.7, 0.85));
        }
        if rng.chance(0.4) {
            points.push(PointKey::FetchGate { open: 1, period: 2 });
        }
        if rng.chance(0.4) {
            for p in 0..shape.partitions {
                points.push(PointKey::MigrateTo(p));
            }
        }
        points
    }

    fn sample_trace(seed: u64) -> ActivityTrace {
        let mut rng = SplitMix64::new(seed);
        let shape = TraceShape {
            partitions: 1 + (rng.next_below(3) as u32),
            backends: 1 + (rng.next_below(6) as u32),
            tc_banks: 1 + (rng.next_below(4) as u32),
        };
        let flat = shape.flat_len();
        let points = sample_points(&mut rng, &shape);
        let mut words = |n: usize| (0..n).map(|_| rng.next_u64()).collect::<Vec<u64>>();
        let pilot = words(flat);
        let n_intervals = 1 + rng.next_below(6) as usize;
        let mut intervals = Vec::new();
        for i in 0..n_intervals {
            let gated = if rng.chance(0.5) {
                Some(rng.next_below(u64::from(shape.tc_banks)) as u8)
            } else {
                None
            };
            intervals.push(IntervalRecord {
                points: points
                    .iter()
                    .map(|_| PointRecord {
                        counters: (0..flat).map(|_| rng.next_u64()).collect(),
                        done: i + 1 == n_intervals && rng.chance(0.8),
                    })
                    .collect(),
                gated_bank: gated,
            });
        }
        let name_pool = ["tiny", "gzip-mcf", "mix3", "baseline", "drc+bh+ab"];
        ActivityTrace {
            meta: TraceMeta {
                version: TRACE_FORMAT_VERSION,
                workload: name_pool[rng.next_below(5) as usize].to_string(),
                config: name_pool[rng.next_below(5) as usize].to_string(),
                processor_fingerprint: rng.next_u64(),
                seed: rng.next_u64(),
                uops_per_app: rng.next_u64(),
                interval_cycles: rng.next_u64(),
                shape,
                hop: rng.chance(0.5),
                replay_safe: rng.chance(0.9),
                dtm: rng.chance(0.5).then(|| "emergency-throttle".to_string()),
                points,
            },
            pilot,
            intervals,
            finals: FinalStats {
                cycles: rng.next_u64(),
                uops: rng.next_u64(),
                tc_hit_rate: rng.next_f64(),
                mispredict_rate: rng.next_f64(),
            },
        }
    }

    /// Encodes `trace` in the legacy v1 layout (nominal point only) — the
    /// committed-fixture generator and the backward-compat tests share
    /// this writer.
    fn encode_v1(trace: &ActivityTrace) -> Vec<u8> {
        let mut w = Writer::new();
        w.header(&TRACE_MAGIC, TRACE_FORMAT_V1);
        w.str(&trace.meta.workload);
        w.str(&trace.meta.config);
        w.u64(trace.meta.processor_fingerprint);
        w.u64(trace.meta.seed);
        w.u64(trace.meta.uops_per_app);
        w.u64(trace.meta.interval_cycles);
        w.u32(trace.meta.shape.partitions);
        w.u32(trace.meta.shape.backends);
        w.u32(trace.meta.shape.tc_banks);
        w.u8(u8::from(trace.meta.hop));
        w.u8(u8::from(trace.meta.replay_safe));
        match &trace.meta.dtm {
            None => w.u8(0),
            Some(name) => {
                w.u8(1);
                w.str(name);
            }
        }
        w.words(&trace.pilot);
        w.u32(trace.intervals.len() as u32);
        for rec in &trace.intervals {
            w.u16(rec.gated_bank.map_or(NO_GATED_BANK, u16::from));
            w.u8(u8::from(rec.nominal().done));
            w.words(&rec.nominal().counters);
        }
        w.u64(trace.finals.cycles);
        w.u64(trace.finals.uops);
        w.f64(trace.finals.tc_hit_rate);
        w.f64(trace.finals.mispredict_rate);
        w.into_vec()
    }

    /// Encodes `trace` in the superseded v2 layout (raw variant rows) —
    /// the committed-fixture generator and the backward-compat tests
    /// share this writer.
    fn encode_v2(trace: &ActivityTrace) -> Vec<u8> {
        let mut w = Writer::new();
        w.header(&TRACE_MAGIC, TRACE_FORMAT_V2);
        w.str(&trace.meta.workload);
        w.str(&trace.meta.config);
        w.u64(trace.meta.processor_fingerprint);
        w.u64(trace.meta.seed);
        w.u64(trace.meta.uops_per_app);
        w.u64(trace.meta.interval_cycles);
        w.u32(trace.meta.shape.partitions);
        w.u32(trace.meta.shape.backends);
        w.u32(trace.meta.shape.tc_banks);
        w.u8(u8::from(trace.meta.hop));
        w.u8(u8::from(trace.meta.replay_safe));
        match &trace.meta.dtm {
            None => w.u8(0),
            Some(name) => {
                w.u8(1);
                w.str(name);
            }
        }
        w.u32(trace.meta.points.len() as u32);
        for key in &trace.meta.points {
            write_point_key(&mut w, key);
        }
        w.words(&trace.pilot);
        w.u32(trace.intervals.len() as u32);
        for rec in &trace.intervals {
            w.u16(rec.gated_bank.map_or(NO_GATED_BANK, u16::from));
            for point in &rec.points {
                w.u8(u8::from(point.done));
                w.words(&point.counters);
            }
        }
        w.u64(trace.finals.cycles);
        w.u64(trace.finals.uops);
        w.f64(trace.finals.tc_hit_rate);
        w.f64(trace.finals.mispredict_rate);
        w.into_vec()
    }

    proptest! {
        /// encode → decode is the identity for arbitrary traces — with
        /// fully random (worst-case wrapping) counters, so the v3 delta
        /// bijection is exercised across the whole u64 range.
        #[test]
        fn encode_decode_roundtrip(seed in 0u64..1_000_000_000) {
            let trace = sample_trace(seed);
            let bytes = trace.encode();
            let back = ActivityTrace::decode(&bytes).unwrap();
            prop_assert_eq!(back, trace);
        }

        /// Truncating an encoded trace anywhere fails loudly, never
        /// panics, and never yields a successful decode — including cuts
        /// landing mid-varint inside a v3 delta row.
        #[test]
        fn truncation_is_detected(seed in 0u64..1_000_000, frac in 0.0f64..1.0) {
            let bytes = sample_trace(seed).encode();
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(ActivityTrace::decode(&bytes[..cut]).is_err());
        }

        /// A v1 stream decodes into the multi-point model: nominal-only
        /// family, same counters, `meta.version == 1`; and truncating it
        /// anywhere still fails loudly.
        #[test]
        fn v1_decodes_as_nominal_family(seed in 0u64..1_000_000, frac in 0.0f64..1.0) {
            let mut trace = sample_trace(seed);
            // A v1 writer can only express the nominal point.
            trace.meta.points = vec![PointKey::Nominal];
            for rec in &mut trace.intervals {
                rec.points.truncate(1);
            }
            let bytes = encode_v1(&trace);
            let back = ActivityTrace::decode(&bytes).unwrap();
            trace.meta.version = TRACE_FORMAT_V1;
            prop_assert_eq!(&back, &trace);
            // Re-encoding upgrades the container to the current version
            // losslessly.
            let upgraded = ActivityTrace::decode(&back.encode()).unwrap();
            trace.meta.version = TRACE_FORMAT_VERSION;
            prop_assert_eq!(upgraded, trace);
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(ActivityTrace::decode(&bytes[..cut]).is_err());
        }

        /// A v2 stream (raw variant rows) decodes to the same in-memory
        /// trace its v3 re-encoding round-trips to, with `meta.version`
        /// recording 2; truncation anywhere fails loudly.
        #[test]
        fn v2_decodes_and_upgrades_to_v3(seed in 0u64..1_000_000, frac in 0.0f64..1.0) {
            let mut trace = sample_trace(seed);
            let bytes = encode_v2(&trace);
            let back = ActivityTrace::decode(&bytes).unwrap();
            trace.meta.version = TRACE_FORMAT_V2;
            prop_assert_eq!(&back, &trace);
            let upgraded = ActivityTrace::decode(&back.encode()).unwrap();
            trace.meta.version = TRACE_FORMAT_VERSION;
            prop_assert_eq!(upgraded, trace);
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(ActivityTrace::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn flat_len_formula() {
        let s = TraceShape {
            partitions: 2,
            backends: 4,
            tc_banks: 3,
        };
        assert_eq!(s.flat_len(), 12 + 3 + 12 + 60);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample_trace(1).encode();
        assert_eq!(
            ActivityTrace::decode(b"NOPE"),
            Err(TraceCodecError::BadMagic)
        );
        bytes[4] = 99;
        assert_eq!(
            ActivityTrace::decode(&bytes),
            Err(TraceCodecError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_trace(2).encode();
        bytes.push(0);
        assert_eq!(
            ActivityTrace::decode(&bytes),
            Err(TraceCodecError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn v3_delta_rows_shrink_similar_variants() {
        // A ladder-like trace: variant rows differing from nominal in a
        // few counters by small magnitudes — the case v3 optimizes.
        let mut trace = sample_trace(5);
        trace.meta.points = vec![PointKey::Nominal, PointKey::dvfs(0.7, 0.85)];
        let flat = trace.meta.shape.flat_len();
        for rec in &mut trace.intervals {
            let nominal: Vec<u64> = (0..flat).map(|i| 1000 + i as u64).collect();
            let mut variant = nominal.clone();
            variant[0] -= 37;
            variant[flat / 2] += 5;
            rec.points = vec![
                PointRecord {
                    counters: nominal,
                    done: false,
                },
                PointRecord {
                    counters: variant,
                    done: false,
                },
            ];
        }
        let v3 = trace.encode();
        let v2 = encode_v2(&trace);
        // v2 spends 4 + 8*flat bytes per variant row; v3 spends ~flat.
        let saved = trace.intervals.len() * (4 + 8 * flat - (flat + 2));
        assert!(
            v3.len() <= v2.len() - saved,
            "v3 ({}) must undercut v2 ({}) by at least {saved} bytes",
            v3.len(),
            v2.len()
        );
        assert_eq!(
            ActivityTrace::decode(&v3).unwrap().intervals,
            trace.intervals
        );
    }

    #[test]
    fn truncation_mid_delta_varint_names_the_section() {
        // Force a multi-byte varint at the very end of the last delta
        // row, then cut inside it: the finals are 32 bytes, so a cut 3
        // bytes shy of them lands mid-varint.
        let mut trace = sample_trace(9);
        trace.meta.points = vec![PointKey::Nominal, PointKey::dvfs(0.7, 0.85)];
        let flat = trace.meta.shape.flat_len();
        for rec in &mut trace.intervals {
            let nominal = vec![0u64; flat];
            let variant = vec![1u64 << 40; flat];
            rec.points = vec![
                PointRecord {
                    counters: nominal,
                    done: false,
                },
                PointRecord {
                    counters: variant,
                    done: false,
                },
            ];
        }
        let bytes = trace.encode();
        let cut = bytes.len() - 32 - 3;
        assert_eq!(
            ActivityTrace::decode(&bytes[..cut]),
            Err(TraceCodecError::Truncated("interval point deltas"))
        );
    }

    #[test]
    fn gated_bank_255_round_trips_on_a_wide_machine() {
        // The u8 range's top value is a legal bank index when the shape
        // is wide enough; only the u16::MAX sentinel means "none".
        let mut trace = sample_trace(8);
        trace.meta.shape.tc_banks = 300;
        let flat = trace.meta.shape.flat_len();
        trace.pilot = vec![1; flat];
        for rec in &mut trace.intervals {
            for point in &mut rec.points {
                point.counters = vec![2; flat];
            }
            rec.gated_bank = Some(255);
        }
        let back = ActivityTrace::decode(&trace.encode()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn gated_bank_outside_shape_is_corrupt() {
        let mut trace = sample_trace(3);
        trace.intervals[0].gated_bank = Some(trace.meta.shape.tc_banks as u8);
        let bytes = trace.encode();
        assert_eq!(
            ActivityTrace::decode(&bytes),
            Err(TraceCodecError::Corrupt("gated bank outside shape"))
        );
    }

    #[test]
    fn family_invariants_are_enforced() {
        // Family must open with the nominal point…
        let mut trace = sample_trace(4);
        trace.meta.points = vec![PointKey::dvfs(0.7, 0.85)];
        for rec in &mut trace.intervals {
            rec.points.truncate(1);
        }
        assert_eq!(
            ActivityTrace::decode(&trace.encode()),
            Err(TraceCodecError::Corrupt("family must start nominal"))
        );
        // …must not repeat a point…
        let mut trace = sample_trace(4);
        trace.meta.points = vec![PointKey::Nominal, PointKey::Nominal];
        for rec in &mut trace.intervals {
            let nom = rec.points[0].clone();
            rec.points = vec![nom.clone(), nom];
        }
        assert_eq!(
            ActivityTrace::decode(&trace.encode()),
            Err(TraceCodecError::Corrupt("duplicate operating point"))
        );
        // …and a migration point must land inside the machine shape.
        let mut trace = sample_trace(4);
        trace.meta.points = vec![
            PointKey::Nominal,
            PointKey::MigrateTo(trace.meta.shape.partitions),
        ];
        for rec in &mut trace.intervals {
            let nom = rec.points[0].clone();
            rec.points = vec![nom.clone(), nom];
        }
        assert_eq!(
            ActivityTrace::decode(&trace.encode()),
            Err(TraceCodecError::Corrupt("migration point outside shape"))
        );
    }

    #[test]
    fn capability_id_is_stable_and_tainted_recordings_say_so() {
        let mut trace = sample_trace(6);
        trace.meta.replay_safe = true;
        trace.meta.points = vec![
            PointKey::Nominal,
            PointKey::dvfs(0.7, 0.85),
            PointKey::FetchGate { open: 1, period: 2 },
            PointKey::MigrateTo(1),
        ];
        assert_eq!(
            trace.meta.capability_id(),
            "nominal+dvfs(0.7x0.85)+gate(1of2)+migrate(1)"
        );
        trace.meta.replay_safe = false;
        assert_eq!(trace.meta.capability_id(), "tainted");
    }

    #[test]
    fn v2_to_v3_reencode_keeps_the_capability_identity() {
        // The version bump re-seeds every Fingerprint, but the
        // capability-set fold itself (points_id over the family) is
        // layout-independent: a v2 stream and its v3 re-encoding carry
        // the same capability_id, so store keys and the fingerprint's
        // points_id input are unchanged by the upgrade.
        let mut trace = sample_trace(11);
        trace.meta.replay_safe = true;
        trace.meta.points = vec![
            PointKey::Nominal,
            PointKey::dvfs(0.7, 0.85),
            PointKey::FetchGate { open: 1, period: 2 },
        ];
        for rec in &mut trace.intervals {
            let nom = rec.points[0].clone();
            rec.points = vec![nom.clone(), nom.clone(), nom];
        }
        let from_v2 = ActivityTrace::decode(&encode_v2(&trace)).unwrap();
        let from_v3 = ActivityTrace::decode(&from_v2.encode()).unwrap();
        assert_eq!(from_v2.meta.capability_id(), from_v3.meta.capability_id());
        assert_eq!(
            Fingerprint::new()
                .with_str(&from_v2.meta.capability_id())
                .finish(),
            Fingerprint::new()
                .with_str(&from_v3.meta.capability_id())
                .finish()
        );
    }

    #[test]
    fn point_index_and_covers() {
        let meta = sample_trace(7).meta;
        let mut meta = TraceMeta {
            points: vec![
                PointKey::Nominal,
                PointKey::FetchGate { open: 1, period: 2 },
            ],
            replay_safe: true,
            ..meta
        };
        assert_eq!(meta.point_index(PointKey::Nominal), Some(0));
        assert_eq!(
            meta.point_index(PointKey::FetchGate { open: 1, period: 2 }),
            Some(1)
        );
        assert_eq!(meta.point_index(PointKey::MigrateTo(0)), None);
        assert!(meta.covers(&[PointKey::Nominal]));
        assert!(!meta.covers(&[PointKey::Nominal, PointKey::dvfs(0.7, 0.85)]));
        // A tainted trace covers nothing, not even the nominal point.
        meta.replay_safe = false;
        assert!(!meta.covers(&[PointKey::Nominal]));
    }

    #[test]
    fn fingerprint_is_seeded_with_format_version() {
        // An empty fingerprint is NOT the bare FNV offset basis: the
        // format magic and version are folded in first, so a version bump
        // invalidates every derived content address.
        let empty = Fingerprint::new().finish();
        assert_ne!(empty, 0xcbf2_9ce4_8422_2325);
        // Reconstruct by hand: offset basis -> magic -> version LE.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in TRACE_MAGIC
            .iter()
            .copied()
            .chain(TRACE_FORMAT_VERSION.to_le_bytes())
        {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(empty, h);
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        let ab_c = Fingerprint::new().with_str("ab").with_str("c").finish();
        let a_bc = Fingerprint::new().with_str("a").with_str("bc").finish();
        assert_ne!(ab_c, a_bc, "length prefixes must separate fields");
        let xy = Fingerprint::new().with_u64(1).with_u64(2).finish();
        let yx = Fingerprint::new().with_u64(2).with_u64(1).finish();
        assert_ne!(xy, yx);
        // Bit identity for floats: -0.0 and 0.0 differ.
        assert_ne!(
            Fingerprint::new().with_f64(0.0).finish(),
            Fingerprint::new().with_f64(-0.0).finish()
        );
    }

    #[test]
    fn errors_display_helpfully() {
        let msgs = [
            TraceCodecError::BadMagic.to_string(),
            TraceCodecError::UnsupportedVersion(7).to_string(),
            TraceCodecError::Truncated("pilot counters").to_string(),
            TraceCodecError::Corrupt("trailing bytes").to_string(),
        ];
        assert!(msgs[0].contains("magic"));
        assert!(msgs[1].contains("version 7"));
        assert!(msgs[2].contains("pilot"));
        assert!(msgs[3].contains("trailing"));
    }
}
