//! Synthetic programs: control-flow graphs of basic blocks.
//!
//! A trace cache is only meaningful if re-fetching the same PC yields the
//! same micro-ops, so the generator cannot simply emit random micro-ops.
//! Instead we synthesize a static *program* — a CFG whose basic blocks are a
//! pure function of `(profile, seed)` — and the dynamic stream is a
//! stochastic walk over it. Code footprint, branch bias and register
//! dependence structure are all decided here, at "compile time".

use crate::profile::AppProfile;
use crate::rng::SplitMix64;
use crate::uop::{ArchReg, UopKind, NUM_FP_REGS, NUM_INT_REGS};

/// Base address of the synthetic code segment.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Byte size of one micro-op slot in the synthetic address space.
pub const UOP_BYTES: u64 = 16;

/// Which data region a memory template accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRegion {
    /// Small, frequently re-touched region (stack/globals); mostly L1 hits.
    Hot,
    /// The full working set; produces L1 (and possibly UL2) misses.
    Cold,
}

/// Static description of the address stream of one memory micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTemplate {
    /// Region the access falls in.
    pub region: MemRegion,
    /// Stride in bytes between successive dynamic executions.
    pub stride: u64,
    /// Fixed offset within the region.
    pub offset: u64,
}

/// Static description of one micro-op within a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopTemplate {
    /// Operation class.
    pub kind: UopKind,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Memory behaviour for loads/stores.
    pub mem: Option<MemTemplate>,
}

/// A basic block of the synthetic program. The last template is always a
/// [`UopKind::Branch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Index of this block in [`SyntheticProgram::blocks`].
    pub id: usize,
    /// Address of the first micro-op.
    pub pc: u64,
    /// The micro-ops of the block.
    pub templates: Vec<UopTemplate>,
    /// Block executed when the terminating branch is taken.
    pub taken_target: usize,
    /// Block executed on fall-through.
    pub fallthrough: usize,
    /// Probability the terminating branch is taken.
    pub taken_prob: f64,
}

impl BasicBlock {
    /// Address of the micro-op at position `idx`.
    pub fn uop_pc(&self, idx: usize) -> u64 {
        self.pc + idx as u64 * UOP_BYTES
    }

    /// Number of micro-ops in the block.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// `true` if the block holds no micro-ops (never true for generated
    /// programs; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// A complete synthetic program for one application profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticProgram {
    /// Profile name this program was generated from.
    pub name: &'static str,
    /// The basic blocks, laid out consecutively from [`CODE_BASE`].
    pub blocks: Vec<BasicBlock>,
    /// Byte size of the hot data region.
    pub hot_size: u64,
    /// Byte size of the cold data region (the full working set).
    pub cold_size: u64,
    /// Probability a memory access goes to the hot region.
    pub locality: f64,
    /// Total number of micro-op templates across all blocks.
    pub total_templates: usize,
}

impl SyntheticProgram {
    /// Synthesizes the program for `profile` with the given `seed`.
    ///
    /// The result is a pure function of its arguments.
    ///
    /// # Examples
    ///
    /// ```
    /// use distfront_trace::{AppProfile, SyntheticProgram};
    ///
    /// let p = SyntheticProgram::generate(&AppProfile::test_tiny(), 1);
    /// assert_eq!(p.blocks.len(), 24);
    /// ```
    pub fn generate(profile: &AppProfile, seed: u64) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile: {e}"));
        let mut rng = SplitMix64::new(seed ^ hash_name(profile.name));
        let n = profile.code_blocks;

        // Register allocation context: sources are picked from recently
        // written registers so dependence distance is baked into the code.
        let mut recent_int: Vec<ArchReg> = (0..8).map(ArchReg::int).collect();
        let mut recent_fp: Vec<ArchReg> = (0..8).map(ArchReg::fp).collect();
        let mut int_rr = 8u8; // round-robin destination cursors
        let mut fp_rr = 8u8;

        let mut blocks = Vec::with_capacity(n);
        let mut pc = CODE_BASE;
        let mut total_templates = 0;
        for id in 0..n {
            let body_len = sample_block_len(&mut rng, profile.block_len);
            let mut templates = Vec::with_capacity(body_len + 1);
            for _ in 0..body_len {
                templates.push(sample_template(
                    profile,
                    &mut rng,
                    &mut recent_int,
                    &mut recent_fp,
                    &mut int_rr,
                    &mut fp_rr,
                ));
            }
            // Terminating branch compares one or two recent integer values.
            templates.push(UopTemplate {
                kind: UopKind::Branch,
                dst: None,
                srcs: [
                    Some(pick_source(&mut rng, &recent_int, profile.dep_distance)),
                    None,
                ],
                mem: None,
            });
            total_templates += templates.len();

            let taken_target = sample_target(&mut rng, id, n);
            let fallthrough = (id + 1) % n;
            let taken_prob = sample_taken_prob(&mut rng, profile.taken_bias);
            let len = templates.len() as u64;
            blocks.push(BasicBlock {
                id,
                pc,
                templates,
                taken_target,
                fallthrough,
                taken_prob,
            });
            pc += len * UOP_BYTES;
        }

        let hot_size = (profile.working_set / 16).clamp(4 << 10, 64 << 10);
        SyntheticProgram {
            name: profile.name,
            blocks,
            hot_size,
            cold_size: profile.working_set,
            locality: profile.locality,
            total_templates,
        }
    }

    /// Finds the block starting at address `pc`, if any.
    pub fn block_at(&self, pc: u64) -> Option<&BasicBlock> {
        // Blocks are sorted by pc; binary search.
        self.blocks
            .binary_search_by(|b| b.pc.cmp(&pc))
            .ok()
            .map(|i| &self.blocks[i])
    }

    /// Total static code size in micro-ops.
    pub fn code_uops(&self) -> usize {
        self.total_templates
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so different app names get decorrelated streams even with the
    // same user seed.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn sample_block_len(rng: &mut SplitMix64, mean: f64) -> usize {
    // Uniform in [mean/2, 3*mean/2], at least 1 body micro-op, at most 23
    // (so a block with its branch fits in two 12-uop trace lines).
    let lo = (mean * 0.5).max(1.0);
    let hi = (mean * 1.5).min(23.0);
    let x = lo + rng.next_f64() * (hi - lo);
    x.round() as usize
}

fn sample_taken_prob(rng: &mut SplitMix64, bias: f64) -> f64 {
    // Real programs have mostly strongly-biased branches plus a hard-to-
    // predict minority; mix accordingly.
    let r = rng.next_f64();
    if r < 0.60 {
        // Strongly taken (loop back-edges).
        0.93 + 0.06 * rng.next_f64()
    } else if r < 0.88 {
        // Strongly not-taken.
        0.01 + 0.06 * rng.next_f64()
    } else {
        // Weakly biased around the profile mean.
        (bias + (rng.next_f64() - 0.5) * 0.5).clamp(0.05, 0.95)
    }
}

fn sample_target(rng: &mut SplitMix64, id: usize, n: usize) -> usize {
    // Branch targets show spatial locality: mostly short backward jumps
    // (loops), sometimes calls across the code footprint.
    if rng.chance(0.75) {
        let span = 8.min(n - 1).max(1) as u64;
        let back = 1 + rng.next_below(span) as usize;
        (id + n - back) % n
    } else {
        rng.next_below(n as u64) as usize
    }
}

fn pick_source(rng: &mut SplitMix64, recent: &[ArchReg], dep_distance: f64) -> ArchReg {
    debug_assert!(!recent.is_empty());
    let d = rng.geometric(dep_distance, recent.len() as u64) as usize;
    recent[recent.len() - d]
}

#[allow(clippy::too_many_arguments)]
fn sample_template(
    profile: &AppProfile,
    rng: &mut SplitMix64,
    recent_int: &mut Vec<ArchReg>,
    recent_fp: &mut Vec<ArchReg>,
    int_rr: &mut u8,
    fp_rr: &mut u8,
) -> UopTemplate {
    // Re-normalize the non-branch mix (branches terminate blocks instead).
    let non_branch = 1.0 - profile.branch_frac;
    let fp_p = profile.fp_frac / non_branch;
    let ld_p = profile.load_frac / non_branch;
    let st_p = profile.store_frac / non_branch;
    let r = rng.next_f64();

    let mut next_int_dst = |rng: &mut SplitMix64, recent_int: &mut Vec<ArchReg>| {
        // Sometimes overwrite a recent register (short lifetimes), otherwise
        // round-robin through the file.
        let dst = if rng.chance(0.3) {
            pick_source(rng, recent_int, 2.0)
        } else {
            *int_rr = (*int_rr + 1) % NUM_INT_REGS;
            ArchReg::int(*int_rr)
        };
        recent_int.push(dst);
        if recent_int.len() > 32 {
            recent_int.remove(0);
        }
        dst
    };

    if r < fp_p {
        // Floating-point op.
        let kr = rng.next_f64();
        let kind = if kr < profile.fp_mul_frac {
            UopKind::FpMul
        } else if kr < profile.fp_mul_frac + 0.06 {
            UopKind::FpDiv
        } else {
            UopKind::FpAdd
        };
        let s0 = pick_source(rng, recent_fp, profile.dep_distance);
        let s1 = pick_source(rng, recent_fp, profile.dep_distance * 1.5);
        *fp_rr = (*fp_rr + 1) % NUM_FP_REGS;
        let dst = ArchReg::fp(*fp_rr);
        recent_fp.push(dst);
        if recent_fp.len() > 32 {
            recent_fp.remove(0);
        }
        UopTemplate {
            kind,
            dst: Some(dst),
            srcs: [Some(s0), Some(s1)],
            mem: None,
        }
    } else if r < fp_p + ld_p {
        // Load; destination class follows the consumer mix.
        let addr_src = pick_source(rng, recent_int, profile.dep_distance * 2.0);
        let to_fp = rng.chance(profile.fp_frac * 2.0);
        let dst = if to_fp {
            *fp_rr = (*fp_rr + 1) % NUM_FP_REGS;
            let d = ArchReg::fp(*fp_rr);
            recent_fp.push(d);
            if recent_fp.len() > 32 {
                recent_fp.remove(0);
            }
            d
        } else {
            next_int_dst(rng, recent_int)
        };
        UopTemplate {
            kind: UopKind::Load,
            dst: Some(dst),
            srcs: [Some(addr_src), None],
            mem: Some(sample_mem(profile, rng)),
        }
    } else if r < fp_p + ld_p + st_p {
        let addr_src = pick_source(rng, recent_int, profile.dep_distance * 2.0);
        let data_src = if rng.chance(profile.fp_frac * 2.0) {
            pick_source(rng, recent_fp, profile.dep_distance)
        } else {
            pick_source(rng, recent_int, profile.dep_distance)
        };
        UopTemplate {
            kind: UopKind::Store,
            dst: None,
            srcs: [Some(addr_src), Some(data_src)],
            mem: Some(sample_mem(profile, rng)),
        }
    } else {
        // Integer ALU family.
        let kr = rng.next_f64();
        let kind = if kr < profile.int_mul_frac {
            UopKind::IntMul
        } else if kr < profile.int_mul_frac + 0.01 {
            UopKind::IntDiv
        } else {
            UopKind::IntAlu
        };
        let s0 = pick_source(rng, recent_int, profile.dep_distance);
        let s1 = if rng.chance(0.6) {
            Some(pick_source(rng, recent_int, profile.dep_distance * 1.5))
        } else {
            None
        };
        let dst = next_int_dst(rng, recent_int);
        UopTemplate {
            kind,
            dst: Some(dst),
            srcs: [Some(s0), s1],
            mem: None,
        }
    }
}

fn sample_mem(profile: &AppProfile, rng: &mut SplitMix64) -> MemTemplate {
    let region = if rng.chance(profile.locality) {
        MemRegion::Hot
    } else {
        MemRegion::Cold
    };
    // Strides: unit (sequential), cache-line, page-ish, or pointer-chase-y
    // (large pseudo-random stride).
    let stride = match rng.next_below(10) {
        0..=4 => 8,
        5..=6 => 64,
        7..=8 => 256,
        _ => 4096 + rng.next_below(8192),
    };
    MemTemplate {
        region,
        stride,
        offset: rng.next_below(1 << 12) * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticProgram {
        SyntheticProgram::generate(&AppProfile::test_tiny(), 7)
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticProgram::generate(&AppProfile::test_tiny(), 1);
        let b = SyntheticProgram::generate(&AppProfile::test_tiny(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn every_block_ends_with_branch() {
        for b in &tiny().blocks {
            assert_eq!(b.templates.last().unwrap().kind, UopKind::Branch);
            // ... and contains no interior branch.
            for t in &b.templates[..b.len() - 1] {
                assert_ne!(t.kind, UopKind::Branch);
            }
        }
    }

    #[test]
    fn blocks_laid_out_contiguously() {
        let p = tiny();
        let mut expect = CODE_BASE;
        for b in &p.blocks {
            assert_eq!(b.pc, expect);
            expect += b.len() as u64 * UOP_BYTES;
        }
    }

    #[test]
    fn targets_in_range() {
        let p = tiny();
        let n = p.blocks.len();
        for b in &p.blocks {
            assert!(b.taken_target < n);
            assert!(b.fallthrough < n);
            assert!((0.0..=1.0).contains(&b.taken_prob));
        }
    }

    #[test]
    fn block_at_finds_all_blocks() {
        let p = tiny();
        for b in &p.blocks {
            assert_eq!(p.block_at(b.pc).unwrap().id, b.id);
        }
        assert!(p.block_at(CODE_BASE + 1).is_none());
    }

    #[test]
    fn mem_ops_have_templates_and_only_mem_ops() {
        for b in &tiny().blocks {
            for t in &b.templates {
                assert_eq!(t.mem.is_some(), t.kind.is_mem(), "{t:?}");
            }
        }
    }

    #[test]
    fn code_footprint_scales_with_profile() {
        let small = SyntheticProgram::generate(&AppProfile::test_tiny(), 3);
        let gcc = SyntheticProgram::generate(AppProfile::by_name("gcc").unwrap(), 3);
        assert!(gcc.code_uops() > 20 * small.code_uops());
    }

    #[test]
    fn spec_programs_generate_without_panic() {
        for prof in AppProfile::spec2000() {
            let p = SyntheticProgram::generate(prof, 42);
            assert_eq!(p.blocks.len(), prof.code_blocks);
            assert!(p.hot_size <= p.cold_size || p.cold_size < 4 << 10);
        }
    }
}
