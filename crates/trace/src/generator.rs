//! Dynamic micro-op stream generation.
//!
//! A [`TraceGenerator`] performs a stochastic walk over a
//! [`SyntheticProgram`]'s CFG and materializes [`MicroOp`]s: branch outcomes
//! are drawn from per-block probabilities, and memory addresses evolve per
//! static memory template (base + n·stride within the template's region), so
//! the stream exhibits the profile's temporal and spatial locality.

use crate::profile::AppProfile;
use crate::program::{MemRegion, SyntheticProgram};
use crate::rng::SplitMix64;
use crate::uop::MicroOp;

/// Base address of the hot data region in the synthetic address space.
pub const HOT_BASE: u64 = 0x1000_0000;
/// Base address of the cold data region.
pub const COLD_BASE: u64 = 0x4000_0000;

/// An infinite, deterministic micro-op stream for one application.
///
/// # Examples
///
/// ```
/// use distfront_trace::{AppProfile, TraceGenerator};
///
/// let mut g = TraceGenerator::new(&AppProfile::test_tiny(), 1);
/// let first: Vec<_> = (&mut g).take(100).collect();
/// assert_eq!(first.len(), 100);
/// // Sequence numbers are program order.
/// assert!(first.windows(2).all(|w| w[1].seq == w[0].seq + 1));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    program: SyntheticProgram,
    rng: SplitMix64,
    /// Current block index.
    block: usize,
    /// Next template index within the current block.
    slot: usize,
    /// Next sequence number.
    seq: u64,
    /// Per-template dynamic execution counts (drives strided addresses).
    mem_iter: Vec<u64>,
    /// Cumulative template index of the first template of each block.
    template_base: Vec<usize>,
}

impl TraceGenerator {
    /// Creates a generator for `profile`, seeding both program synthesis and
    /// the dynamic walk from `seed`.
    pub fn new(profile: &AppProfile, seed: u64) -> Self {
        Self::from_program(SyntheticProgram::generate(profile, seed), seed)
    }

    /// Creates a generator over an existing program.
    pub fn from_program(program: SyntheticProgram, seed: u64) -> Self {
        let mut template_base = Vec::with_capacity(program.blocks.len());
        let mut acc = 0;
        for b in &program.blocks {
            template_base.push(acc);
            acc += b.len();
        }
        TraceGenerator {
            mem_iter: vec![0; acc],
            template_base,
            program,
            rng: SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1)),
            block: 0,
            slot: 0,
            seq: 0,
        }
    }

    /// The program being walked.
    pub fn program(&self) -> &SyntheticProgram {
        &self.program
    }

    /// Produces the next micro-op in program order.
    pub fn next_uop(&mut self) -> MicroOp {
        let blocks = &self.program.blocks;
        let block = &blocks[self.block];
        let t = &block.templates[self.slot];
        let pc = block.uop_pc(self.slot);
        let is_last = self.slot + 1 == block.len();

        let mem_addr = t.mem.map(|m| {
            let idx = self.template_base[self.block] + self.slot;
            let n = self.mem_iter[idx];
            self.mem_iter[idx] = n + 1;
            let (base, size) = match m.region {
                MemRegion::Hot => (HOT_BASE, self.program.hot_size),
                MemRegion::Cold => (COLD_BASE, self.program.cold_size),
            };
            base + (m.offset + n * m.stride) % size.max(8)
        });

        let (taken, target, next_block) = if is_last {
            let taken = self.rng.chance(block.taken_prob);
            let succ = if taken {
                block.taken_target
            } else {
                block.fallthrough
            };
            (taken, blocks[succ].pc, succ)
        } else {
            (false, 0, self.block)
        };

        let uop = MicroOp {
            seq: self.seq,
            pc,
            kind: t.kind,
            dst: t.dst,
            srcs: t.srcs,
            mem_addr,
            taken,
            target,
            ends_block: is_last,
        };

        self.seq += 1;
        if is_last {
            self.block = next_block;
            self.slot = 0;
        } else {
            self.slot += 1;
        }
        uop
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        Some(self.next_uop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::UopKind;
    use std::collections::HashMap;

    fn gen() -> TraceGenerator {
        TraceGenerator::new(&AppProfile::test_tiny(), 11)
    }

    #[test]
    fn deterministic_stream() {
        let a: Vec<_> = gen().take(5000).collect();
        let b: Vec<_> = gen().take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seq_is_program_order() {
        for (i, u) in gen().take(1000).enumerate() {
            assert_eq!(u.seq, i as u64);
        }
    }

    #[test]
    fn same_pc_same_static_content() {
        // The trace-cache invariant: revisiting a PC yields identical static
        // fields (kind, dst, srcs), though dynamic fields may differ.
        let mut seen: HashMap<u64, (UopKind, _, _)> = HashMap::new();
        for u in gen().take(20_000) {
            let entry = (u.kind, u.dst, u.srcs);
            if let Some(prev) = seen.get(&u.pc) {
                assert_eq!(*prev, entry, "pc {:#x} changed content", u.pc);
            } else {
                seen.insert(u.pc, entry);
            }
        }
    }

    #[test]
    fn branches_end_blocks_and_carry_targets() {
        for u in gen().take(5000) {
            if u.kind == UopKind::Branch {
                assert!(u.ends_block);
                assert!(u.target != 0);
            } else {
                assert!(!u.taken);
            }
        }
    }

    #[test]
    fn mem_ops_have_addresses_in_regions() {
        for u in gen().take(10_000) {
            if u.kind.is_mem() {
                let a = u.mem_addr.expect("mem op without address");
                assert!(a >= HOT_BASE, "address {a:#x} below hot base");
            } else {
                assert!(u.mem_addr.is_none());
            }
        }
    }

    #[test]
    fn mix_matches_profile_roughly() {
        let profile = *AppProfile::by_name("swim").unwrap();
        let g = TraceGenerator::new(&profile, 3);
        let n = 50_000;
        let mut loads = 0;
        let mut fp = 0;
        let mut branches = 0;
        for u in g.take(n) {
            match u.kind {
                UopKind::Load => loads += 1,
                UopKind::Branch => branches += 1,
                k if k.is_fp() => fp += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let ff = fp as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        assert!((lf - profile.load_frac).abs() < 0.08, "load frac {lf}");
        assert!((ff - profile.fp_frac).abs() < 0.10, "fp frac {ff}");
        // swim has very long blocks so branches are rare.
        assert!(bf < 0.10, "branch frac {bf}");
    }

    #[test]
    fn strided_template_advances() {
        // Find a load template executed twice and check its address moved.
        let mut first: HashMap<u64, u64> = HashMap::new();
        let mut advanced = false;
        for u in gen().take(20_000) {
            if let Some(a) = u.mem_addr {
                if let Some(&prev) = first.get(&u.pc) {
                    if prev != a {
                        advanced = true;
                        break;
                    }
                } else {
                    first.insert(u.pc, a);
                }
            }
        }
        assert!(advanced, "no strided access ever changed address");
    }

    #[test]
    fn all_spec_profiles_stream() {
        for p in AppProfile::spec2000() {
            let g = TraceGenerator::new(p, 1);
            assert_eq!(g.take(2000).count(), 2000);
        }
    }
}
