//! Dynamic micro-op stream generation.
//!
//! A [`TraceGenerator`] performs a stochastic walk over one or more
//! [`SyntheticProgram`] CFGs and materializes [`MicroOp`]s: branch outcomes
//! are drawn from per-block probabilities, and memory addresses evolve per
//! static memory template (base + n·stride within the template's region), so
//! the stream exhibits the profile's temporal and spatial locality.
//!
//! A generator over a [`PhasedProfile`] multiplexes one walk per phase:
//! each phase owns its own program, RNG stream and address-space slab, and
//! the generator rotates between them on the phase schedule, switching only
//! at basic-block boundaries (so every phase preserves the trace-cache
//! invariant that re-fetching a PC yields the same micro-ops). A
//! single-profile generator is the one-walk special case and produces a
//! stream bit-identical to the pre-phase implementation.

use crate::phased::PhasedProfile;
use crate::profile::AppProfile;
use crate::program::{MemRegion, SyntheticProgram};
use crate::rng::SplitMix64;
use crate::uop::MicroOp;

/// Base address of the hot data region in the synthetic address space.
pub const HOT_BASE: u64 = 0x1000_0000;
/// Base address of the cold data region.
pub const COLD_BASE: u64 = 0x4000_0000;

/// Address-space slab size per phase: phase `i` of a phased workload has
/// its code, hot and cold regions shifted by `i * PHASE_ADDR_STRIDE`, so
/// distinct programs never alias in the trace cache or data caches (the
/// largest SPEC2000 working set is well under a slab).
pub const PHASE_ADDR_STRIDE: u64 = 1 << 32;

/// One phase's stochastic walk over its program, with all state needed to
/// suspend at a block boundary and resume later.
#[derive(Debug, Clone)]
struct ProgramWalk {
    program: SyntheticProgram,
    rng: SplitMix64,
    /// Current block index.
    block: usize,
    /// Next template index within the current block.
    slot: usize,
    /// Per-template dynamic execution counts (drives strided addresses).
    mem_iter: Vec<u64>,
    /// Cumulative template index of the first template of each block.
    template_base: Vec<usize>,
    /// Address-space slab offset applied to code and data addresses.
    addr_offset: u64,
}

impl ProgramWalk {
    fn new(program: SyntheticProgram, seed: u64, addr_offset: u64) -> Self {
        let mut template_base = Vec::with_capacity(program.blocks.len());
        let mut acc = 0;
        for b in &program.blocks {
            template_base.push(acc);
            acc += b.len();
        }
        ProgramWalk {
            mem_iter: vec![0; acc],
            template_base,
            program,
            rng: SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1)),
            block: 0,
            slot: 0,
            addr_offset,
        }
    }

    /// Produces the next micro-op of this walk, stamped with the global
    /// sequence number `seq`.
    fn next_uop(&mut self, seq: u64) -> MicroOp {
        let blocks = &self.program.blocks;
        let block = &blocks[self.block];
        let t = &block.templates[self.slot];
        let pc = block.uop_pc(self.slot) + self.addr_offset;
        let is_last = self.slot + 1 == block.len();

        let mem_addr = t.mem.map(|m| {
            let idx = self.template_base[self.block] + self.slot;
            let n = self.mem_iter[idx];
            self.mem_iter[idx] = n + 1;
            let (base, size) = match m.region {
                MemRegion::Hot => (HOT_BASE, self.program.hot_size),
                MemRegion::Cold => (COLD_BASE, self.program.cold_size),
            };
            base + (m.offset + n * m.stride) % size.max(8) + self.addr_offset
        });

        let (taken, target, next_block) = if is_last {
            let taken = self.rng.chance(block.taken_prob);
            let succ = if taken {
                block.taken_target
            } else {
                block.fallthrough
            };
            (taken, blocks[succ].pc + self.addr_offset, succ)
        } else {
            (false, 0, self.block)
        };

        let uop = MicroOp {
            seq,
            pc,
            kind: t.kind,
            dst: t.dst,
            srcs: t.srcs,
            mem_addr,
            taken,
            target,
            ends_block: is_last,
        };

        if is_last {
            self.block = next_block;
            self.slot = 0;
        } else {
            self.slot += 1;
        }
        uop
    }
}

/// Per-phase seed: phase 0 reuses the workload seed exactly (so a
/// one-phase schedule reproduces the single-profile stream), later phases
/// decorrelate via an odd multiplier.
fn phase_seed(seed: u64, phase: usize) -> u64 {
    seed ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// An infinite, deterministic micro-op stream for one workload.
///
/// # Examples
///
/// ```
/// use distfront_trace::{AppProfile, TraceGenerator};
///
/// let mut g = TraceGenerator::new(&AppProfile::test_tiny(), 1);
/// let first: Vec<_> = (&mut g).take(100).collect();
/// assert_eq!(first.len(), 100);
/// // Sequence numbers are program order.
/// assert!(first.windows(2).all(|w| w[1].seq == w[0].seq + 1));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    walks: Vec<ProgramWalk>,
    /// Micro-op budget per visit, per walk.
    slices: Vec<u64>,
    /// Index of the walk currently emitting.
    active: usize,
    /// Micro-ops left in the current visit; once it reaches zero the
    /// generator rotates at the next block boundary.
    left: u64,
    /// Next global sequence number.
    seq: u64,
    /// Micro-ops emitted per phase (phase-boundary accounting).
    phase_uops: Vec<u64>,
}

impl TraceGenerator {
    /// Creates a generator for `profile`, seeding both program synthesis and
    /// the dynamic walk from `seed`.
    pub fn new(profile: &AppProfile, seed: u64) -> Self {
        Self::from_program(SyntheticProgram::generate(profile, seed), seed)
    }

    /// Creates a generator over an existing program.
    pub fn from_program(program: SyntheticProgram, seed: u64) -> Self {
        TraceGenerator {
            walks: vec![ProgramWalk::new(program, seed, 0)],
            slices: vec![u64::MAX],
            active: 0,
            left: u64::MAX,
            seq: 0,
            phase_uops: vec![0],
        }
    }

    /// Creates a generator over a phase schedule: one program walk per
    /// phase, each in its own address-space slab, rotated cyclically with
    /// visits of `phase.uops` micro-ops rounded up to a block boundary.
    ///
    /// # Panics
    ///
    /// Panics if the schedule fails [`PhasedProfile::validate`].
    pub fn phased(profile: &PhasedProfile, seed: u64) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("bad phased profile: {e}"));
        let walks: Vec<ProgramWalk> = profile
            .phases
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                let ps = phase_seed(seed, i);
                ProgramWalk::new(
                    SyntheticProgram::generate(&phase.profile, ps),
                    ps,
                    i as u64 * PHASE_ADDR_STRIDE,
                )
            })
            .collect();
        let slices: Vec<u64> = profile.phases.iter().map(|p| p.uops).collect();
        TraceGenerator {
            left: slices[0],
            phase_uops: vec![0; walks.len()],
            walks,
            slices,
            active: 0,
            seq: 0,
        }
    }

    /// The program the active phase is walking.
    pub fn program(&self) -> &SyntheticProgram {
        &self.walks[self.active].program
    }

    /// Number of phases (1 for a single-profile generator).
    pub fn phase_count(&self) -> usize {
        self.walks.len()
    }

    /// The phase currently emitting.
    pub fn active_phase(&self) -> usize {
        self.active
    }

    /// Micro-ops emitted so far, per phase. Each visit emits its phase's
    /// nominal slice rounded up to the basic-block boundary in flight, so
    /// per-phase totals exceed `visits × slice` by less than one block per
    /// visit.
    pub fn phase_uops(&self) -> &[u64] {
        &self.phase_uops
    }

    /// Produces the next micro-op in program order.
    pub fn next_uop(&mut self) -> MicroOp {
        let uop = self.walks[self.active].next_uop(self.seq);
        self.seq += 1;
        self.phase_uops[self.active] += 1;
        self.left = self.left.saturating_sub(1);
        if self.left == 0 && uop.ends_block && self.walks.len() > 1 {
            self.active = (self.active + 1) % self.walks.len();
            self.left = self.slices[self.active];
        }
        uop
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        Some(self.next_uop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phased::Phase;
    use crate::uop::UopKind;
    use std::collections::HashMap;

    fn gen() -> TraceGenerator {
        TraceGenerator::new(&AppProfile::test_tiny(), 11)
    }

    #[test]
    fn deterministic_stream() {
        let a: Vec<_> = gen().take(5000).collect();
        let b: Vec<_> = gen().take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seq_is_program_order() {
        for (i, u) in gen().take(1000).enumerate() {
            assert_eq!(u.seq, i as u64);
        }
    }

    #[test]
    fn same_pc_same_static_content() {
        // The trace-cache invariant: revisiting a PC yields identical static
        // fields (kind, dst, srcs), though dynamic fields may differ.
        let mut seen: HashMap<u64, (UopKind, _, _)> = HashMap::new();
        for u in gen().take(20_000) {
            let entry = (u.kind, u.dst, u.srcs);
            if let Some(prev) = seen.get(&u.pc) {
                assert_eq!(*prev, entry, "pc {:#x} changed content", u.pc);
            } else {
                seen.insert(u.pc, entry);
            }
        }
    }

    #[test]
    fn branches_end_blocks_and_carry_targets() {
        for u in gen().take(5000) {
            if u.kind == UopKind::Branch {
                assert!(u.ends_block);
                assert!(u.target != 0);
            } else {
                assert!(!u.taken);
            }
        }
    }

    #[test]
    fn mem_ops_have_addresses_in_regions() {
        for u in gen().take(10_000) {
            if u.kind.is_mem() {
                let a = u.mem_addr.expect("mem op without address");
                assert!(a >= HOT_BASE, "address {a:#x} below hot base");
            } else {
                assert!(u.mem_addr.is_none());
            }
        }
    }

    #[test]
    fn mix_matches_profile_roughly() {
        let profile = *AppProfile::by_name("swim").unwrap();
        let g = TraceGenerator::new(&profile, 3);
        let n = 50_000;
        let mut loads = 0;
        let mut fp = 0;
        let mut branches = 0;
        for u in g.take(n) {
            match u.kind {
                UopKind::Load => loads += 1,
                UopKind::Branch => branches += 1,
                k if k.is_fp() => fp += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let ff = fp as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        assert!((lf - profile.load_frac).abs() < 0.08, "load frac {lf}");
        assert!((ff - profile.fp_frac).abs() < 0.10, "fp frac {ff}");
        // swim has very long blocks so branches are rare.
        assert!(bf < 0.10, "branch frac {bf}");
    }

    #[test]
    fn strided_template_advances() {
        // Find a load template executed twice and check its address moved.
        let mut first: HashMap<u64, u64> = HashMap::new();
        let mut advanced = false;
        for u in gen().take(20_000) {
            if let Some(a) = u.mem_addr {
                if let Some(&prev) = first.get(&u.pc) {
                    if prev != a {
                        advanced = true;
                        break;
                    }
                } else {
                    first.insert(u.pc, a);
                }
            }
        }
        assert!(advanced, "no strided access ever changed address");
    }

    #[test]
    fn all_spec_profiles_stream() {
        for p in AppProfile::spec2000() {
            let g = TraceGenerator::new(p, 1);
            assert_eq!(g.take(2000).count(), 2000);
        }
    }

    #[test]
    fn one_phase_schedule_reproduces_the_single_profile_stream() {
        // The phased path with a single phase must be bit-identical to the
        // plain generator: same program seed, zero address offset, and a
        // rotation that never actually rotates.
        let profile = AppProfile::test_tiny();
        let phased = PhasedProfile::new(
            "solo",
            vec![Phase {
                profile,
                uops: 1_000,
            }],
        );
        let a: Vec<_> = TraceGenerator::new(&profile, 7).take(10_000).collect();
        let b: Vec<_> = TraceGenerator::phased(&phased, 7).take(10_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn phases_switch_at_block_boundaries_with_bounded_overshoot() {
        let a = AppProfile::test_tiny();
        let b = *AppProfile::by_name("gzip").unwrap();
        let slice = 1_000u64;
        let phased = PhasedProfile::alternating("ab", a, b, slice);
        let mut g = TraceGenerator::phased(&phased, 3);
        let mut prev_phase = g.active_phase();
        let mut last: Option<MicroOp> = None;
        let mut switches = 0;
        for _ in 0..40_000 {
            let u = g.next_uop();
            let phase = g.active_phase();
            if phase != prev_phase {
                switches += 1;
                // The uop just emitted closed a basic block.
                assert!(u.ends_block, "phase switched mid-block");
                prev_phase = phase;
            }
            last = Some(u);
        }
        assert!(switches >= 10, "only {switches} switches in 40k uops");
        assert!(last.is_some());
        // Accounting: both phases ran, each visit within one block of the
        // nominal slice. With alternating equal slices the totals differ by
        // at most (overshoot per visit) × visits; blocks are ≤ ~32 uops.
        let counts = g.phase_uops();
        assert_eq!(counts.len(), 2);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 40_000);
        for (i, &c) in counts.iter().enumerate() {
            let visits = c.div_ceil(slice);
            assert!(c >= slice, "phase {i} never completed a visit: {c}");
            assert!(
                c <= visits * (slice + 64),
                "phase {i} overshoot too large: {c} uops in {visits} visits"
            );
        }
    }

    #[test]
    fn phases_live_in_disjoint_address_slabs() {
        let a = AppProfile::test_tiny();
        let b = *AppProfile::by_name("gzip").unwrap();
        let phased = PhasedProfile::alternating("ab", a, b, 500);
        let mut g = TraceGenerator::phased(&phased, 5);
        let mut slabs = [false, false];
        for _ in 0..5_000 {
            let phase = g.active_phase();
            let u = g.next_uop();
            let slab = (u.pc / PHASE_ADDR_STRIDE) as usize;
            assert_eq!(slab, phase, "pc {:#x} outside its phase slab", u.pc);
            if let Some(m) = u.mem_addr {
                assert_eq!((m / PHASE_ADDR_STRIDE) as usize, phase);
            }
            slabs[slab] = true;
        }
        assert_eq!(slabs, [true, true], "one phase never ran");
    }

    #[test]
    fn interleaving_round_robins_every_program() {
        let apps: Vec<AppProfile> = ["gzip", "mcf", "swim"]
            .iter()
            .map(|n| *AppProfile::by_name(n).unwrap())
            .collect();
        let phased = PhasedProfile::interleaving("mix3", &apps, 300);
        let mut g = TraceGenerator::phased(&phased, 9);
        let mut order = Vec::new();
        let mut prev = g.active_phase();
        order.push(prev);
        for _ in 0..20_000 {
            g.next_uop();
            let phase = g.active_phase();
            if phase != prev {
                order.push(phase);
                prev = phase;
            }
        }
        // Rotation is strictly cyclic: 0, 1, 2, 0, 1, 2, ...
        for (i, &p) in order.iter().enumerate() {
            assert_eq!(p, i % 3, "rotation broke at visit {i}");
        }
        assert!(order.len() >= 12, "too few rotations: {}", order.len());
    }

    #[test]
    #[should_panic(expected = "bad phased profile")]
    fn phased_generator_rejects_empty_schedules() {
        TraceGenerator::phased(&PhasedProfile::new("none", vec![]), 1);
    }
}
