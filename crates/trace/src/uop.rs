//! The micro-op ISA understood by the simulator.
//!
//! The paper's frontend translates IA32 instructions into micro-ops and
//! stores *micro-ops* in the trace cache; everything downstream of decode
//! (rename, steer, issue, execute, commit) operates on micro-ops only. This
//! module defines that internal ISA.

use std::fmt;

/// Number of architectural integer registers visible to rename.
pub const NUM_INT_REGS: u8 = 32;
/// Number of architectural floating-point registers visible to rename.
pub const NUM_FP_REGS: u8 = 32;
/// Total number of architectural registers (`int` + `fp`).
pub const NUM_ARCH_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// Register class of an architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

/// An architectural (logical) register.
///
/// Registers `0..32` are integer, `32..64` floating point.
///
/// # Examples
///
/// ```
/// use distfront_trace::{ArchReg, RegClass};
///
/// assert_eq!(ArchReg::int(3).class(), RegClass::Int);
/// assert_eq!(ArchReg::fp(3).class(), RegClass::Fp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_INT_REGS`.
    pub fn int(idx: u8) -> Self {
        assert!(idx < NUM_INT_REGS, "integer register {idx} out of range");
        ArchReg(idx)
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_FP_REGS`.
    pub fn fp(idx: u8) -> Self {
        assert!(idx < NUM_FP_REGS, "fp register {idx} out of range");
        ArchReg(NUM_INT_REGS + idx)
    }

    /// Creates a register from a flat index in `0..NUM_ARCH_REGS`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_ARCH_REGS`.
    pub fn from_index(idx: u8) -> Self {
        assert!(idx < NUM_ARCH_REGS, "register {idx} out of range");
        ArchReg(idx)
    }

    /// The flat index of this register in `0..NUM_ARCH_REGS`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Which register file this register belongs to.
    pub fn class(self) -> RegClass {
        if self.0 < NUM_INT_REGS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.0),
            RegClass::Fp => write!(f, "f{}", self.0 - NUM_INT_REGS),
        }
    }
}

/// The operation class of a micro-op.
///
/// The set mirrors the functional-unit classes of the simulated backend
/// (integer ALU/mul/div, FP add/mul/div, memory, control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Floating-point add/sub/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Unpipelined floating-point divide/sqrt.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store (address generation + data).
    Store,
    /// Conditional or unconditional branch.
    Branch,
}

impl UopKind {
    /// Execution latency in cycles, excluding cache access time for memory
    /// operations (the data cache adds its own latency).
    pub fn latency(self) -> u32 {
        match self {
            UopKind::IntAlu | UopKind::Branch | UopKind::Store => 1,
            UopKind::IntMul => 3,
            UopKind::IntDiv => 20,
            UopKind::FpAdd => 4,
            UopKind::FpMul => 6,
            UopKind::FpDiv => 24,
            UopKind::Load => 1,
        }
    }

    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }

    /// `true` for operations that execute on the floating-point units.
    pub fn is_fp(self) -> bool {
        matches!(self, UopKind::FpAdd | UopKind::FpMul | UopKind::FpDiv)
    }
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::IntAlu => "alu",
            UopKind::IntMul => "mul",
            UopKind::IntDiv => "div",
            UopKind::FpAdd => "fadd",
            UopKind::FpMul => "fmul",
            UopKind::FpDiv => "fdiv",
            UopKind::Load => "ld",
            UopKind::Store => "st",
            UopKind::Branch => "br",
        };
        f.write_str(s)
    }
}

/// A dynamic micro-op instance flowing through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MicroOp {
    /// Program-order sequence number (0-based, strictly increasing).
    pub seq: u64,
    /// Address of the micro-op (synthetic PCs are 16-byte aligned).
    pub pc: u64,
    /// Operation class.
    pub kind: UopKind,
    /// Destination architectural register, if the op produces a value.
    pub dst: Option<ArchReg>,
    /// Source architectural registers (up to two).
    pub srcs: [Option<ArchReg>; 2],
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// For branches: the dynamic direction taken this time.
    pub taken: bool,
    /// For branches: branch target when taken.
    pub target: u64,
    /// Marks the last micro-op of its basic block.
    pub ends_block: bool,
}

impl MicroOp {
    /// A convenience constructor for a register-to-register op; useful in
    /// tests and examples.
    ///
    /// # Examples
    ///
    /// ```
    /// use distfront_trace::{ArchReg, MicroOp, UopKind};
    ///
    /// let add = MicroOp::reg_op(0, UopKind::IntAlu, ArchReg::int(1),
    ///                           [Some(ArchReg::int(2)), Some(ArchReg::int(3))]);
    /// assert_eq!(add.dst, Some(ArchReg::int(1)));
    /// ```
    pub fn reg_op(seq: u64, kind: UopKind, dst: ArchReg, srcs: [Option<ArchReg>; 2]) -> Self {
        MicroOp {
            seq,
            pc: seq * 16,
            kind,
            dst: Some(dst),
            srcs,
            mem_addr: None,
            taken: false,
            target: 0,
            ends_block: false,
        }
    }

    /// `true` if this micro-op is a branch.
    pub fn is_branch(&self) -> bool {
        self.kind == UopKind::Branch
    }

    /// Iterator over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_class_split() {
        assert_eq!(ArchReg::int(0).class(), RegClass::Int);
        assert_eq!(ArchReg::int(31).class(), RegClass::Int);
        assert_eq!(ArchReg::fp(0).class(), RegClass::Fp);
        assert_eq!(ArchReg::fp(31).class(), RegClass::Fp);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range() {
        ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_reg_out_of_range() {
        ArchReg::fp(32);
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(ArchReg::from_index(i).index(), usize::from(i));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchReg::int(4).to_string(), "r4");
        assert_eq!(ArchReg::fp(4).to_string(), "f4");
    }

    #[test]
    fn latencies_sane() {
        assert_eq!(UopKind::IntAlu.latency(), 1);
        assert!(UopKind::IntDiv.latency() > UopKind::IntMul.latency());
        assert!(UopKind::FpDiv.latency() > UopKind::FpMul.latency());
    }

    #[test]
    fn mem_and_fp_predicates() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::IntAlu.is_mem());
        assert!(UopKind::FpMul.is_fp());
        assert!(!UopKind::Load.is_fp());
    }

    #[test]
    fn sources_iterates_present_only() {
        let op = MicroOp::reg_op(
            0,
            UopKind::IntAlu,
            ArchReg::int(1),
            [Some(ArchReg::int(2)), None],
        );
        let srcs: Vec<_> = op.sources().collect();
        assert_eq!(srcs, vec![ArchReg::int(2)]);
    }
}
