//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the workload generator flows through
//! [`SplitMix64`], a tiny, well-mixed, seedable generator. Using our own
//! implementation (rather than an external crate) guarantees the generated
//! instruction streams are stable across dependency upgrades, which keeps the
//! paper-reproduction numbers stable too.

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) pseudo-random number
/// generator.
///
/// # Examples
///
/// ```
/// use distfront_trace::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the bounds used by the generator (< 2^32).
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples a geometric-ish distance in `[1, max]` with mean roughly
    /// `mean`. Used for register dependence distances.
    pub fn geometric(&mut self, mean: f64, max: u64) -> u64 {
        debug_assert!(mean >= 1.0);
        let p = 1.0 / mean;
        let mut d = 1;
        while d < max && !self.chance(p) {
            d += 1;
        }
        d
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0xD15F_0A11_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 17, 1 << 20] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_p_zero_never_and_p_one_always() {
        // The edges must hold over many draws, not just the first: p = 0
        // can never fire (next_f64 < 0.0 is impossible) and p = 1 always
        // fires (next_f64 lies in [0, 1)).
        let mut rng = SplitMix64::new(77);
        for _ in 0..10_000 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
        // Out-of-range probabilities clamp to the same certainties.
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn geometric_mean_one_is_always_one() {
        // mean = 1 gives success probability 1 per trial: the very first
        // trial terminates, so the distance is the lower clamp exactly.
        let mut rng = SplitMix64::new(21);
        for _ in 0..1_000 {
            assert_eq!(rng.geometric(1.0, 1 << 20), 1);
        }
    }

    #[test]
    fn geometric_max_clamp_binds() {
        // A mean far beyond the cap almost always walks to the cap; the
        // cap must bind exactly, never overshoot, and max = 1 degenerates
        // to the constant 1.
        let mut rng = SplitMix64::new(22);
        let mut hit_cap = 0;
        for _ in 0..2_000 {
            let d = rng.geometric(1e9, 16);
            assert!((1..=16).contains(&d));
            if d == 16 {
                hit_cap += 1;
            }
        }
        assert!(hit_cap > 1_900, "cap almost never reached: {hit_cap}/2000");
        for _ in 0..100 {
            assert_eq!(rng.geometric(8.0, 1), 1);
        }
    }

    #[test]
    fn geometric_mean_tracks_parameter_under_loose_cap() {
        // Sanity on the mean at a second operating point (the generator
        // uses means between ~3 and ~9).
        let mut rng = SplitMix64::new(23);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(8.0, 1_000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((6.5..9.5).contains(&mean), "mean {mean} out of band");
    }

    #[test]
    fn geometric_bounds() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..500 {
            let d = rng.geometric(4.0, 16);
            assert!((1..=16).contains(&d));
        }
    }

    #[test]
    fn geometric_mean_roughly_matches() {
        let mut rng = SplitMix64::new(13);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(4.0, 1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((3.0..5.0).contains(&mean), "mean {mean} out of band");
    }

    #[test]
    fn uniformity_coarse() {
        // Coarse chi-square-ish check: 16 buckets should each get ~1/16.
        let mut rng = SplitMix64::new(2024);
        let mut buckets = [0u32; 16];
        let n = 64_000;
        for _ in 0..n {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        for &b in &buckets {
            let frac = f64::from(b) / n as f64;
            assert!((0.05..0.075).contains(&frac), "bucket fraction {frac}");
        }
    }
}
