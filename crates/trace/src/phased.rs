//! Phase-structured and multi-program workloads.
//!
//! Real applications are not stationary: they alternate between hot
//! compute loops, memory-bound pointer chases and I/O-ish lulls, and a
//! multiprogrammed machine timeslices several of them. A [`PhasedProfile`]
//! composes existing [`AppProfile`]s into exactly such a workload: a
//! cyclic schedule of *phases*, each an `(AppProfile, micro-op slice)`
//! pair. The [`TraceGenerator`](crate::TraceGenerator) walks one synthetic
//! program per phase and rotates between them, switching only at basic
//! block boundaries so the trace-cache-critical "same PC, same micro-ops"
//! invariant holds within every phase.
//!
//! Two usage patterns fall out of the one mechanism:
//!
//! * **Phased execution** — a few long slices (tens of thousands of
//!   micro-ops): the thermal state actually follows the phase (hot →
//!   cool → hot), which is what distinguishes transient studies from the
//!   stationary single-profile runs.
//! * **Multi-program interleaving** — many short slices (a few thousand
//!   micro-ops): a round-robin timeslice of independent programs, each in
//!   its own address-space slab so their code and data never alias in the
//!   caches (a context switch thrashes the trace cache, exactly as on
//!   real hardware).
//!
//! [`Workload`] is the closed sum of both workload kinds the simulator
//! accepts; everything above the generator (the simulator, the engine,
//! the sweep executor, the scenario registry) is written against it.
//!
//! # Examples
//!
//! ```
//! use distfront_trace::{AppProfile, PhasedProfile, Workload};
//!
//! let gzip = *AppProfile::by_name("gzip").unwrap();
//! let mcf = *AppProfile::by_name("mcf").unwrap();
//! let phased = PhasedProfile::alternating("gzip-mcf", gzip, mcf, 20_000);
//! assert_eq!(phased.phases.len(), 2);
//! let workload = Workload::Phased(phased);
//! assert_eq!(workload.name(), "gzip-mcf");
//! workload.validate().unwrap();
//! ```

use crate::profile::AppProfile;

/// One phase of a [`PhasedProfile`]: which application to imitate and for
/// how many micro-ops per visit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// The application profile driving this phase.
    pub profile: AppProfile,
    /// Nominal micro-ops per visit of this phase. The generator overshoots
    /// to the end of the basic block in flight when the slice expires, so
    /// the realized visit length is `uops` rounded up to a block boundary.
    pub uops: u64,
}

/// A cyclic schedule of [`Phase`]s over existing [`AppProfile`]s.
///
/// The schedule repeats forever: phase 0 runs for its slice, then phase 1,
/// …, then phase 0 again, each phase resuming its own program walk where
/// it left off (programs are never restarted between visits).
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedProfile {
    /// Workload name used in reports and trace metadata. Keep it free of
    /// commas so CSV rows stay single-celled.
    pub name: &'static str,
    /// The schedule, visited cyclically.
    pub phases: Vec<Phase>,
}

impl PhasedProfile {
    /// A schedule from explicit phases.
    pub fn new(name: &'static str, phases: Vec<Phase>) -> Self {
        PhasedProfile { name, phases }
    }

    /// A two-phase workload alternating between `a` and `b`, `slice`
    /// micro-ops per visit — the canonical hot/cold phase structure.
    pub fn alternating(name: &'static str, a: AppProfile, b: AppProfile, slice: u64) -> Self {
        PhasedProfile {
            name,
            phases: vec![
                Phase {
                    profile: a,
                    uops: slice,
                },
                Phase {
                    profile: b,
                    uops: slice,
                },
            ],
        }
    }

    /// A round-robin multi-program interleaving: every program gets a
    /// `quantum`-micro-op timeslice per turn, mimicking an OS scheduler
    /// timeslicing independent address spaces.
    pub fn interleaving(name: &'static str, programs: &[AppProfile], quantum: u64) -> Self {
        PhasedProfile {
            name,
            phases: programs
                .iter()
                .map(|p| Phase {
                    profile: *p,
                    uops: quantum,
                })
                .collect(),
        }
    }

    /// Nominal micro-ops in one full trip around the schedule (the
    /// realized trip is slightly longer because every visit rounds up to
    /// a basic-block boundary).
    pub fn cycle_uops(&self) -> u64 {
        self.phases.iter().map(|p| p.uops).sum()
    }

    /// Validates the schedule and every underlying profile.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("{}: phased workload with no phases", self.name));
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if phase.uops == 0 {
                return Err(format!("{}: phase {i} has an empty slice", self.name));
            }
            phase
                .profile
                .validate()
                .map_err(|e| format!("{}: phase {i}: {e}", self.name))?;
        }
        Ok(())
    }
}

/// Any workload the simulator can run: a stationary single application or
/// a phase-structured composition.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// One application profile, stationary for the whole run (the
    /// original, pre-phase workload kind; streams are bit-identical to
    /// running the profile directly).
    Single(AppProfile),
    /// A cyclic phase schedule (including multi-program interleavings).
    Phased(PhasedProfile),
}

impl Workload {
    /// The workload's report name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Single(p) => p.name,
            Workload::Phased(p) => p.name,
        }
    }

    /// Validates the workload (every profile involved).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Workload::Single(p) => p.validate(),
            Workload::Phased(p) => p.validate(),
        }
    }
}

impl From<AppProfile> for Workload {
    fn from(profile: AppProfile) -> Self {
        Workload::Single(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_builds_two_phases() {
        let a = AppProfile::test_tiny();
        let b = *AppProfile::by_name("mcf").unwrap();
        let p = PhasedProfile::alternating("ab", a, b, 10_000);
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.cycle_uops(), 20_000);
        p.validate().unwrap();
    }

    #[test]
    fn interleaving_gives_every_program_the_quantum() {
        let apps: Vec<AppProfile> = ["gzip", "mcf", "swim"]
            .iter()
            .map(|n| *AppProfile::by_name(n).unwrap())
            .collect();
        let p = PhasedProfile::interleaving("mix3", &apps, 4_000);
        assert_eq!(p.phases.len(), 3);
        assert!(p.phases.iter().all(|ph| ph.uops == 4_000));
        p.validate().unwrap();
    }

    #[test]
    fn empty_and_zero_slice_schedules_are_invalid() {
        assert!(PhasedProfile::new("none", vec![]).validate().is_err());
        let p = PhasedProfile::new(
            "zero",
            vec![Phase {
                profile: AppProfile::test_tiny(),
                uops: 0,
            }],
        );
        assert!(p.validate().unwrap_err().contains("empty slice"));
    }

    #[test]
    fn invalid_profile_fails_workload_validation() {
        let mut bad = AppProfile::test_tiny();
        bad.block_len = 0.0;
        assert!(Workload::Single(bad).validate().is_err());
        let p = PhasedProfile::alternating("bad", AppProfile::test_tiny(), bad, 1_000);
        assert!(Workload::Phased(p).validate().is_err());
    }

    #[test]
    fn workload_names_and_conversion() {
        let w: Workload = AppProfile::test_tiny().into();
        assert_eq!(w.name(), "tiny");
        let p = Workload::Phased(PhasedProfile::alternating(
            "pair",
            AppProfile::test_tiny(),
            AppProfile::test_tiny(),
            500,
        ));
        assert_eq!(p.name(), "pair");
    }
}
