//! Per-application workload profiles.
//!
//! Each [`AppProfile`] captures the coarse dynamic characteristics of one of
//! the 26 SPEC2000 applications the paper evaluates: instruction mix,
//! branch behaviour, dependence distances, code footprint (which determines
//! trace-cache pressure) and data working-set size (which determines L1/UL2
//! behaviour). The values are representative of published SPEC2000
//! characterization studies, not measurements of the (unavailable) paper
//! traces; see `DESIGN.md` for the substitution argument.

/// Coarse dynamic characteristics of one application.
///
/// All ratios are fractions of the dynamic micro-op stream and must satisfy
/// `fp + load + store + branch <= 1.0`; the remainder is integer ALU work
/// (including the occasional multiply/divide, controlled by
/// [`AppProfile::int_mul_frac`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Short SPEC-style name, e.g. `"gzip"`.
    pub name: &'static str,
    /// `true` for SPECfp applications.
    pub is_fp: bool,
    /// Fraction of micro-ops that are floating point.
    pub fp_frac: f64,
    /// Fraction of micro-ops that are loads.
    pub load_frac: f64,
    /// Fraction of micro-ops that are stores.
    pub store_frac: f64,
    /// Fraction of micro-ops that are branches.
    pub branch_frac: f64,
    /// Probability that a conditional branch is taken (per static branch the
    /// generator perturbs this to create biased and unbiased branches).
    pub taken_bias: f64,
    /// Of the non-FP non-mem non-branch remainder, the fraction that is a
    /// multiply (a small slice of that again becomes a divide).
    pub int_mul_frac: f64,
    /// Of the FP slice, the fraction that is a multiply (rest add; a small
    /// slice becomes divide).
    pub fp_mul_frac: f64,
    /// Mean register dependence distance in micro-ops (small = serial code).
    pub dep_distance: f64,
    /// Number of basic blocks in the synthetic program (code footprint).
    /// Large values overflow the 32 K-micro-op trace cache.
    pub code_blocks: usize,
    /// Mean basic-block length in micro-ops.
    pub block_len: f64,
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Fraction of memory accesses that hit a small hot region (temporal
    /// locality knob; higher = better L1 hit rate).
    pub locality: f64,
}

impl AppProfile {
    /// The 26 SPEC2000 application profiles used throughout the evaluation
    /// (12 SPECint + 14 SPECfp), in the order the paper lists them.
    ///
    /// # Examples
    ///
    /// ```
    /// let apps = distfront_trace::AppProfile::spec2000();
    /// assert_eq!(apps.len(), 26);
    /// assert!(apps.iter().any(|a| a.name == "mcf"));
    /// ```
    pub fn spec2000() -> &'static [AppProfile] {
        SPEC2000
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<&'static AppProfile> {
        SPEC2000.iter().find(|p| p.name == name)
    }

    /// A small, fast profile for unit tests: tiny code footprint and working
    /// set so caches behave predictably.
    pub fn test_tiny() -> AppProfile {
        AppProfile {
            name: "tiny",
            is_fp: false,
            fp_frac: 0.05,
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.12,
            taken_bias: 0.6,
            int_mul_frac: 0.05,
            fp_mul_frac: 0.4,
            dep_distance: 4.0,
            code_blocks: 24,
            block_len: 8.0,
            working_set: 8 << 10,
            locality: 0.9,
        }
    }

    /// Validates the internal consistency of the profile.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mix = self.fp_frac + self.load_frac + self.store_frac + self.branch_frac;
        if !(0.0..=1.0).contains(&mix) {
            return Err(format!("{}: mix fractions sum to {mix}", self.name));
        }
        for (label, v) in [
            ("fp_frac", self.fp_frac),
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("taken_bias", self.taken_bias),
            ("int_mul_frac", self.int_mul_frac),
            ("fp_mul_frac", self.fp_mul_frac),
            ("locality", self.locality),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {label} = {v} outside [0,1]", self.name));
            }
        }
        if self.dep_distance < 1.0 {
            return Err(format!("{}: dep_distance < 1", self.name));
        }
        if self.code_blocks == 0 {
            return Err(format!("{}: no code blocks", self.name));
        }
        if self.block_len < 2.0 {
            return Err(format!("{}: block_len < 2", self.name));
        }
        if self.working_set == 0 {
            return Err(format!("{}: empty working set", self.name));
        }
        Ok(())
    }
}

macro_rules! profiles {
    ($($name:literal, $is_fp:expr, fp=$fp:expr, ld=$ld:expr, st=$st:expr, br=$br:expr,
       tb=$tb:expr, im=$im:expr, fm=$fm:expr, dd=$dd:expr, cb=$cb:expr, bl=$bl:expr,
       ws=$ws:expr, loc=$loc:expr;)*) => {
        &[$(AppProfile {
            name: $name, is_fp: $is_fp, fp_frac: $fp, load_frac: $ld, store_frac: $st,
            branch_frac: $br, taken_bias: $tb, int_mul_frac: $im, fp_mul_frac: $fm,
            dep_distance: $dd, code_blocks: $cb, block_len: $bl, working_set: $ws,
            locality: $loc,
        },)*]
    };
}

/// SPECint2000 (12) followed by SPECfp2000 (14). Code footprints are in
/// basic blocks of mean length `bl`; `gcc`, `perlbmk`, `vortex` and `eon`
/// get large footprints (trace-cache stressors), `mcf`/`art` get large data
/// working sets and poor locality (memory-bound), `swim`/`mgrid`/`applu`
/// are regular FP streaming codes with long dependence distances (high ILP).
static SPEC2000: &[AppProfile] = profiles![
    // SPECint2000
    "gzip",    false, fp=0.00, ld=0.22, st=0.10, br=0.14, tb=0.62, im=0.03, fm=0.30, dd=3.5,  cb=220,  bl=7.0,  ws=180<<10,  loc=0.85;
    "vpr",     false, fp=0.04, ld=0.28, st=0.10, br=0.12, tb=0.58, im=0.04, fm=0.35, dd=3.8,  cb=340,  bl=7.5,  ws=1<<20,    loc=0.80;
    "gcc",     false, fp=0.00, ld=0.26, st=0.13, br=0.16, tb=0.60, im=0.02, fm=0.30, dd=3.2,  cb=2600, bl=6.0,  ws=2<<20,    loc=0.72;
    "mcf",     false, fp=0.00, ld=0.31, st=0.09, br=0.17, tb=0.55, im=0.02, fm=0.30, dd=3.0,  cb=120,  bl=6.5,  ws=48<<20,   loc=0.35;
    "crafty",  false, fp=0.00, ld=0.27, st=0.08, br=0.11, tb=0.57, im=0.05, fm=0.30, dd=4.2,  cb=520,  bl=9.0,  ws=900<<10,  loc=0.82;
    "parser",  false, fp=0.00, ld=0.24, st=0.11, br=0.15, tb=0.59, im=0.02, fm=0.30, dd=3.4,  cb=760,  bl=6.5,  ws=12<<20,   loc=0.66;
    "eon",     false, fp=0.12, ld=0.26, st=0.13, br=0.10, tb=0.61, im=0.04, fm=0.45, dd=4.0,  cb=1400, bl=8.0,  ws=350<<10,  loc=0.84;
    "perlbmk", false, fp=0.00, ld=0.27, st=0.14, br=0.15, tb=0.60, im=0.03, fm=0.30, dd=3.3,  cb=2100, bl=6.0,  ws=30<<20,   loc=0.70;
    "gap",     false, fp=0.01, ld=0.25, st=0.11, br=0.13, tb=0.62, im=0.06, fm=0.30, dd=3.7,  cb=900,  bl=7.0,  ws=90<<20,   loc=0.68;
    "vortex",  false, fp=0.00, ld=0.29, st=0.15, br=0.14, tb=0.63, im=0.02, fm=0.30, dd=3.6,  cb=1900, bl=6.5,  ws=50<<20,   loc=0.74;
    "bzip2",   false, fp=0.00, ld=0.23, st=0.11, br=0.13, tb=0.61, im=0.03, fm=0.30, dd=3.6,  cb=200,  bl=7.5,  ws=60<<20,   loc=0.78;
    "twolf",   false, fp=0.03, ld=0.26, st=0.09, br=0.13, tb=0.56, im=0.05, fm=0.40, dd=3.9,  cb=420,  bl=7.0,  ws=2<<20,    loc=0.79;
    // SPECfp2000
    "wupwise", true,  fp=0.34, ld=0.22, st=0.09, br=0.05, tb=0.80, im=0.03, fm=0.55, dd=6.5,  cb=160,  bl=14.0, ws=160<<20,  loc=0.72;
    "swim",    true,  fp=0.36, ld=0.26, st=0.08, br=0.02, tb=0.92, im=0.02, fm=0.50, dd=8.0,  cb=90,   bl=18.0, ws=190<<20,  loc=0.55;
    "mgrid",   true,  fp=0.40, ld=0.28, st=0.05, br=0.01, tb=0.94, im=0.02, fm=0.55, dd=8.5,  cb=110,  bl=20.0, ws=56<<20,   loc=0.62;
    "applu",   true,  fp=0.38, ld=0.25, st=0.09, br=0.02, tb=0.92, im=0.02, fm=0.52, dd=8.0,  cb=140,  bl=19.0, ws=180<<20,  loc=0.58;
    "mesa",    true,  fp=0.22, ld=0.24, st=0.12, br=0.08, tb=0.68, im=0.04, fm=0.50, dd=5.0,  cb=640,  bl=9.0,  ws=9<<20,    loc=0.81;
    "galgel",  true,  fp=0.37, ld=0.27, st=0.06, br=0.04, tb=0.85, im=0.02, fm=0.58, dd=7.0,  cb=240,  bl=15.0, ws=32<<20,   loc=0.70;
    "art",     true,  fp=0.28, ld=0.32, st=0.05, br=0.09, tb=0.72, im=0.02, fm=0.60, dd=5.5,  cb=70,   bl=9.0,  ws=3700<<10, loc=0.40;
    "equake",  true,  fp=0.30, ld=0.30, st=0.07, br=0.06, tb=0.78, im=0.03, fm=0.56, dd=6.0,  cb=130,  bl=12.0, ws=40<<20,   loc=0.52;
    "facerec", true,  fp=0.33, ld=0.26, st=0.07, br=0.05, tb=0.80, im=0.02, fm=0.55, dd=6.8,  cb=210,  bl=13.0, ws=16<<20,   loc=0.69;
    "ammp",    true,  fp=0.31, ld=0.28, st=0.08, br=0.06, tb=0.74, im=0.02, fm=0.54, dd=6.2,  cb=260,  bl=11.0, ws=26<<20,   loc=0.60;
    "lucas",   true,  fp=0.39, ld=0.24, st=0.08, br=0.02, tb=0.90, im=0.02, fm=0.57, dd=8.2,  cb=120,  bl=18.0, ws=140<<20,  loc=0.63;
    "fma3d",   true,  fp=0.32, ld=0.26, st=0.10, br=0.05, tb=0.79, im=0.03, fm=0.53, dd=6.4,  cb=980,  bl=10.0, ws=100<<20,  loc=0.66;
    "sixtrack",true,  fp=0.35, ld=0.23, st=0.09, br=0.04, tb=0.83, im=0.03, fm=0.55, dd=7.2,  cb=700,  bl=13.0, ws=26<<20,   loc=0.75;
    "apsi",    true,  fp=0.34, ld=0.25, st=0.09, br=0.04, tb=0.82, im=0.02, fm=0.54, dd=7.0,  cb=330,  bl=14.0, ws=190<<20,  loc=0.68;
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_profiles() {
        assert_eq!(AppProfile::spec2000().len(), 26);
    }

    #[test]
    fn twelve_int_fourteen_fp() {
        let fp = AppProfile::spec2000().iter().filter(|p| p.is_fp).count();
        assert_eq!(fp, 14);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = AppProfile::spec2000().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn all_profiles_valid() {
        for p in AppProfile::spec2000() {
            p.validate().unwrap();
        }
        AppProfile::test_tiny().validate().unwrap();
    }

    #[test]
    fn by_name_hit_and_miss() {
        assert!(AppProfile::by_name("gcc").is_some());
        assert!(AppProfile::by_name("doom3").is_none());
    }

    #[test]
    fn int_apps_have_no_heavy_fp() {
        for p in AppProfile::spec2000().iter().filter(|p| !p.is_fp) {
            assert!(p.fp_frac < 0.15, "{} fp_frac {}", p.name, p.fp_frac);
        }
    }

    #[test]
    fn fp_apps_have_long_dep_chains() {
        for p in AppProfile::spec2000().iter().filter(|p| p.is_fp) {
            assert!(p.dep_distance >= 5.0, "{}", p.name);
        }
    }

    #[test]
    fn memory_bound_apps_have_poor_locality() {
        for name in ["mcf", "art"] {
            let p = AppProfile::by_name(name).unwrap();
            assert!(p.locality < 0.5, "{name}");
        }
    }
}
