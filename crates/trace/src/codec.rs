//! The shared binary codec under every durable byte in the workspace.
//!
//! Both the `.dft` trace format ([`crate::record`]) and `distfront`'s
//! on-disk store segments serialize through this one pair of primitives:
//! a [`Writer`] that appends little-endian integers, exact-bit floats,
//! length-prefixed UTF-8 strings and LEB128 varints to a byte vector, and
//! a bounds-checked [`Reader`] that decodes the same stream strictly —
//! every read names the section it is in (so a short file fails with
//! *which* field was truncated), unknown layouts are rejected rather than
//! guessed, and [`Reader::expect_end`] turns trailing bytes into a hard
//! error instead of silent acceptance.
//!
//! The conventions are fixed and shared by every format built on top:
//!
//! * multi-byte integers are **little-endian**;
//! * floats are stored as their exact IEEE-754 bits (`f64::to_bits`), so
//!   round-trips are bit identity, not numeric equality;
//! * strings are `u32` byte-length-prefixed UTF-8, validated on read;
//! * counter rows are `u32` count-prefixed `u64` words;
//! * variable-length integers are unsigned **LEB128** (7 bits per byte,
//!   high bit continues), at most 10 bytes for a `u64`; signed values map
//!   through **zig-zag** (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) first so
//!   small-magnitude deltas of either sign stay short on the wire.
//!
//! Errors carry only a static section name — [`CodecError::Truncated`]
//! when the buffer ran out, [`CodecError::Corrupt`] when the bytes were
//! present but structurally invalid. Formats layer their own error types
//! on top via `From<CodecError>`.
//!
//! # Examples
//!
//! ```
//! use distfront_trace::codec::{Reader, Writer};
//!
//! let mut w = Writer::new();
//! w.str("hello");
//! w.zigzag(-3);
//! let bytes = w.into_vec();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(r.str("greeting").unwrap(), "hello");
//! assert_eq!(r.zigzag("delta").unwrap(), -3);
//! r.expect_end().unwrap();
//! ```

/// Why a byte stream failed to decode at the codec layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended inside the named section.
    Truncated(&'static str),
    /// The bytes were present but structurally invalid (bad UTF-8, a
    /// flag byte that is neither 0 nor 1, an over-long varint, trailing
    /// bytes past the end of the format).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "stream truncated in {what}"),
            CodecError::Corrupt(what) => write!(f, "stream corrupt: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Longest legal LEB128 encoding of a `u64` (⌈64/7⌉ bytes).
const MAX_VARINT_LEN: usize = 10;

/// An append-only encoder for the codec's wire conventions.
///
/// Writers are infallible: every method appends to the internal vector.
/// Take the finished stream with [`Writer::into_vec`].
#[derive(Debug, Default)]
pub struct Writer(Vec<u8>);

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer(Vec::new())
    }

    /// An empty writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer(Vec::with_capacity(cap))
    }

    /// The encoded stream so far.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }

    /// Bytes appended so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends raw bytes verbatim (magic values, pre-encoded payloads).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes);
    }

    /// Appends a `magic` + little-endian `u32` version header.
    pub fn header(&mut self, magic: &[u8; 4], version: u32) {
        self.bytes(magic);
        self.u32(version);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a float as its exact IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `u32` byte-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// Appends a `u32` count-prefixed row of `u64` words.
    pub fn words(&mut self, words: &[u64]) {
        self.u32(words.len() as u32);
        for &w in words {
            self.u64(w);
        }
    }

    /// Appends an unsigned LEB128 varint (1–10 bytes).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.0.push(byte);
                return;
            }
            self.0.push(byte | 0x80);
        }
    }

    /// Appends a signed value as a zig-zag-mapped LEB128 varint, so
    /// small magnitudes of either sign encode in one byte.
    pub fn zigzag(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }
}

/// A strict, bounds-checked decoder over a borrowed byte slice.
///
/// Every read method takes a static section name that becomes the
/// payload of the error when the stream is short or malformed there.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Consumes the next `n` bytes, or fails naming `what`.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CodecError::Corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Validates a `magic` + version header and returns the version.
    /// A magic mismatch is reported as `Corrupt(magic_what)`.
    pub fn header(&mut self, magic: &[u8; 4], magic_what: &'static str) -> Result<u32, CodecError> {
        if self.take(4, magic_what)? != magic {
            return Err(CodecError::Corrupt(magic_what));
        }
        self.u32("version")
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a float from its exact IEEE-754 bits.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u32` byte-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("invalid UTF-8"))
    }

    /// Reads a `u32` count-prefixed row of `u64` words.
    pub fn words(&mut self, what: &'static str) -> Result<Vec<u64>, CodecError> {
        let len = self.u32(what)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }

    /// Reads a boolean stored as a strict 0/1 byte.
    pub fn flag(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("flag byte not 0/1")),
        }
    }

    /// Reads an unsigned LEB128 varint. More than 10 bytes — or a 10th
    /// byte carrying bits a `u64` cannot hold — is corrupt, not long.
    pub fn varint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for i in 0..MAX_VARINT_LEN {
            let byte = self.u8(what)?;
            let bits = u64::from(byte & 0x7f);
            if i == MAX_VARINT_LEN - 1 && bits > 1 {
                return Err(CodecError::Corrupt("varint overflows u64"));
            }
            v |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Corrupt("varint longer than 10 bytes"))
    }

    /// Reads a zig-zag-mapped LEB128 varint back to a signed value.
    pub fn zigzag(&mut self, what: &'static str) -> Result<i64, CodecError> {
        let n = self.varint(what)?;
        Ok((n >> 1) as i64 ^ -((n & 1) as i64))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with `Corrupt("trailing bytes")` unless the whole stream
    /// was consumed — the strict-decode backstop every format ends with.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.pos != self.buf.len() {
            return Err(CodecError::Corrupt("trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.header(b"TEST", 7);
        w.u8(0xab);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.str("héllo");
        w.words(&[1, 2, 3]);
        w.u8(1);
        let bytes = w.into_vec();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.header(b"TEST", "magic").unwrap(), 7);
        assert_eq!(r.u8("a").unwrap(), 0xab);
        assert_eq!(r.u16("b").unwrap(), 0xbeef);
        assert_eq!(r.u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("d").unwrap(), u64::MAX);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str("f").unwrap(), "héllo");
        assert_eq!(r.words("g").unwrap(), vec![1, 2, 3]);
        assert!(r.flag("h").unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn bad_magic_and_trailing_bytes_are_corrupt() {
        let mut w = Writer::new();
        w.header(b"GOOD", 1);
        let mut bytes = w.into_vec();
        assert_eq!(
            Reader::new(&bytes).header(b"WANT", "magic"),
            Err(CodecError::Corrupt("magic"))
        );
        bytes.push(0);
        let mut r = Reader::new(&bytes);
        r.header(b"GOOD", "magic").unwrap();
        assert_eq!(r.expect_end(), Err(CodecError::Corrupt("trailing bytes")));
    }

    #[test]
    fn flag_rejects_non_binary_bytes() {
        let bytes = [2u8];
        assert_eq!(
            Reader::new(&bytes).flag("flag"),
            Err(CodecError::Corrupt("flag byte not 0/1"))
        );
    }

    #[test]
    fn varint_edge_encodings() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut w = Writer::new();
            w.varint(v);
            let bytes = w.into_vec();
            assert!(bytes.len() <= 10);
            let mut r = Reader::new(&bytes);
            assert_eq!(r.varint("v").unwrap(), v);
            r.expect_end().unwrap();
        }
        // u64::MAX needs the full 10 bytes.
        let mut w = Writer::new();
        w.varint(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn overlong_and_overflowing_varints_are_corrupt() {
        // Eleven continuation bytes: no 10-byte u64 encoding continues.
        let overlong = [0x80u8; 11];
        assert_eq!(
            Reader::new(&overlong).varint("v"),
            Err(CodecError::Corrupt("varint longer than 10 bytes"))
        );
        // A 10th byte with more than the single bit a u64 has left.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert_eq!(
            Reader::new(&overflow).varint("v"),
            Err(CodecError::Corrupt("varint overflows u64"))
        );
        // The canonical top encoding still decodes.
        let mut max = [0xffu8; 10];
        max[9] = 0x01;
        assert_eq!(Reader::new(&max).varint("v").unwrap(), u64::MAX);
    }

    #[test]
    fn truncation_mid_varint_is_truncated_not_corrupt() {
        let mut w = Writer::new();
        w.varint(1 << 40);
        let bytes = w.into_vec();
        for cut in 0..bytes.len() {
            assert_eq!(
                Reader::new(&bytes[..cut]).varint("delta"),
                Err(CodecError::Truncated("delta"))
            );
        }
    }

    proptest! {
        /// varint and zigzag round-trip the full u64/i64 ranges (the
        /// signed value reinterprets the raw bits, covering both signs
        /// and the extremes).
        #[test]
        fn varint_zigzag_roundtrip(u in 0u64..u64::MAX, raw in 0u64..u64::MAX) {
            let s = raw as i64;
            let mut w = Writer::new();
            w.varint(u);
            w.zigzag(s);
            let bytes = w.into_vec();
            let mut r = Reader::new(&bytes);
            prop_assert_eq!(r.varint("u").unwrap(), u);
            prop_assert_eq!(r.zigzag("s").unwrap(), s);
            r.expect_end().unwrap();
        }

        /// Small-magnitude signed deltas stay short on the wire — the
        /// property the v3 trace layout's size win rests on.
        #[test]
        fn small_deltas_encode_in_one_byte(raw in 0u64..128) {
            let d = raw as i64 - 64;
            let mut w = Writer::new();
            w.zigzag(d);
            prop_assert_eq!(w.len(), 1);
        }
    }
}
