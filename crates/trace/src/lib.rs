//! Synthetic workload substrate for the `distfront` simulator.
//!
//! The original paper drives its simulator with IA32 SPEC2000 binaries that
//! are translated into micro-ops by the frontend. Those traces are not
//! redistributable, so this crate provides the closest synthetic equivalent:
//!
//! * a micro-op ISA ([`MicroOp`], [`UopKind`], [`ArchReg`]) matching what the
//!   paper's frontend stores in the trace cache,
//! * a deterministic [`rng::SplitMix64`] generator so every experiment is
//!   exactly reproducible,
//! * a [`program::SyntheticProgram`] — a control-flow graph of basic blocks
//!   whose micro-ops are a pure function of `(profile, block)`, so that
//!   re-visiting a PC re-fetches the *same* micro-ops (this is what makes a
//!   trace cache meaningful), and
//! * 26 per-application [`profile::AppProfile`]s that mimic the SPEC2000
//!   integer and floating-point mixes the paper evaluates,
//! * phase-structured and multi-program workloads
//!   ([`phased::PhasedProfile`], [`phased::Workload`]) composed from those
//!   profiles, and
//! * the serializable recorded-activity format
//!   ([`record::ActivityTrace`]) that the engine's record/replay pipeline
//!   stores per-interval per-unit activity in.
//!
//! # Examples
//!
//! ```
//! use distfront_trace::{AppProfile, TraceGenerator};
//!
//! let profile = AppProfile::spec2000()[0]; // "gzip"
//! let mut gen = TraceGenerator::new(&profile, 42);
//! let uop = gen.next_uop();
//! assert_eq!(uop.seq, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod generator;
pub mod phased;
pub mod profile;
pub mod program;
pub mod record;
pub mod rng;
pub mod uop;

pub use generator::TraceGenerator;
pub use phased::{Phase, PhasedProfile, Workload};
pub use profile::AppProfile;
pub use program::{BasicBlock, SyntheticProgram};
pub use record::{ActivityTrace, FinalStats, Fingerprint, IntervalRecord, TraceMeta, TraceShape};
pub use uop::{ArchReg, MicroOp, RegClass, UopKind};
