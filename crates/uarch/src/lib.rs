//! Cycle-level simulator of the paper's clustered microarchitecture.
//!
//! The processor of Fig. 2: a frontend (trace cache, branch predictor,
//! decode, rename, steer) feeding four backend clusters, each with its own
//! issue queues, register files, functional units, memory order buffer and
//! L1 data cache, over point-to-point links and shared buses. Both frontend
//! organizations of the paper are implemented:
//!
//! * the **centralized** baseline (monolithic RAT and ROB), and
//! * the **distributed** frontend of §3.1 ([`rename`] and [`rob`]), where
//!   each partition feeds a subset of the backends.
//!
//! [`sim::Simulator`] is the timing model; it produces
//! [`activity::ActivityCounters`] per interval, which `distfront-power`
//! converts to per-block power for the thermal model.
//!
//! # Examples
//!
//! ```
//! use distfront_trace::AppProfile;
//! use distfront_uarch::{ProcessorConfig, Simulator};
//!
//! let mut sim = Simulator::new(
//!     ProcessorConfig::hpca05_baseline(),
//!     &AppProfile::test_tiny(),
//!     1,
//! );
//! let stats = sim.run(5_000);
//! assert!(stats.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod bpred;
pub mod config;
pub mod record;
pub mod rename;
pub mod rob;
pub mod sim;
pub mod steer;
pub mod tracer;

pub use activity::ActivityCounters;
pub use config::{FrontendMode, ProcessorConfig};
pub use rob::DistributedRob;
pub use sim::{FetchGate, IntervalReport, RunStats, Simulator};
