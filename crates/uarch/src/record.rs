//! The recording tap: flattening [`ActivityCounters`] to and from the
//! serializable word layout of [`distfront_trace::record`].
//!
//! The engine records one flattened counter vector per interval boundary;
//! replay reverses the flattening bit-exactly (every counter is a `u64`,
//! so there is no precision to lose). The canonical order is part of the
//! trace format: any change here must bump
//! [`TRACE_FORMAT_VERSION`](distfront_trace::record::TRACE_FORMAT_VERSION),
//! and a test pins the layout length to
//! [`TraceShape::flat_len`](distfront_trace::record::TraceShape::flat_len).
//!
//! Layout (all lengths from the machine shape): 12 scalars (`cycles`,
//! `committed_uops`, `tc_fills`, `bp_accesses`, `itlb_accesses`,
//! `decoded_uops`, `steer_lookups`, `copy_requests`, `ul2_accesses`,
//! `bus_transfers`, `disamb_broadcasts`, `link_flits`), the per-bank
//! `tc_bank_accesses`, six per-partition vectors (`rat_reads`,
//! `rat_writes`, `rob_writes`, `rob_reads`, `rob_rl_writes`,
//! `rob_rl_reads`), then 15 counters per backend cluster in declaration
//! order.

use crate::activity::{ActivityCounters, BackendActivity};

/// Number of `u64` words a flattened record occupies for a machine shape.
pub const fn flat_len(partitions: usize, backends: usize, tc_banks: usize) -> usize {
    12 + tc_banks + 6 * partitions + 15 * backends
}

/// Appends the canonical flattening of `act` to `out`.
pub fn flatten_into(act: &ActivityCounters, out: &mut Vec<u64>) {
    out.reserve(flat_len(
        act.partitions(),
        act.backends.len(),
        act.tc_bank_accesses.len(),
    ));
    out.extend_from_slice(&[
        act.cycles,
        act.committed_uops,
        act.tc_fills,
        act.bp_accesses,
        act.itlb_accesses,
        act.decoded_uops,
        act.steer_lookups,
        act.copy_requests,
        act.ul2_accesses,
        act.bus_transfers,
        act.disamb_broadcasts,
        act.link_flits,
    ]);
    out.extend_from_slice(&act.tc_bank_accesses);
    for v in [
        &act.rat_reads,
        &act.rat_writes,
        &act.rob_writes,
        &act.rob_reads,
        &act.rob_rl_writes,
        &act.rob_rl_reads,
    ] {
        out.extend_from_slice(v);
    }
    for b in &act.backends {
        out.extend_from_slice(&[
            b.iq_writes,
            b.iq_issues,
            b.fpq_writes,
            b.fpq_issues,
            b.copy_ops,
            b.mob_allocs,
            b.mob_searches,
            b.irf_reads,
            b.irf_writes,
            b.fprf_reads,
            b.fprf_writes,
            b.int_fu_ops,
            b.fp_fu_ops,
            b.dl1_accesses,
            b.dtlb_accesses,
        ]);
    }
}

/// The canonical flattening of `act` as a fresh vector.
pub fn flatten(act: &ActivityCounters) -> Vec<u64> {
    let mut out = Vec::new();
    flatten_into(act, &mut out);
    out
}

/// Reverses [`flatten`] for the given machine shape.
///
/// # Errors
///
/// Returns a description of the mismatch when `flat` is not exactly
/// [`flat_len`] words long.
pub fn unflatten(
    partitions: usize,
    backends: usize,
    tc_banks: usize,
    flat: &[u64],
) -> Result<ActivityCounters, String> {
    let expect = flat_len(partitions, backends, tc_banks);
    if flat.len() != expect {
        return Err(format!(
            "flattened record holds {} words, shape ({partitions} partitions, \
             {backends} backends, {tc_banks} banks) needs {expect}",
            flat.len()
        ));
    }
    let mut it = flat.iter().copied();
    let mut act = ActivityCounters::new(partitions, backends, tc_banks);
    {
        let next = |it: &mut std::iter::Copied<std::slice::Iter<'_, u64>>| {
            it.next().expect("length checked above")
        };
        act.cycles = next(&mut it);
        act.committed_uops = next(&mut it);
        act.tc_fills = next(&mut it);
        act.bp_accesses = next(&mut it);
        act.itlb_accesses = next(&mut it);
        act.decoded_uops = next(&mut it);
        act.steer_lookups = next(&mut it);
        act.copy_requests = next(&mut it);
        act.ul2_accesses = next(&mut it);
        act.bus_transfers = next(&mut it);
        act.disamb_broadcasts = next(&mut it);
        act.link_flits = next(&mut it);
        act.tc_bank_accesses = it.by_ref().take(tc_banks).collect();
        act.rat_reads = it.by_ref().take(partitions).collect();
        act.rat_writes = it.by_ref().take(partitions).collect();
        act.rob_writes = it.by_ref().take(partitions).collect();
        act.rob_reads = it.by_ref().take(partitions).collect();
        act.rob_rl_writes = it.by_ref().take(partitions).collect();
        act.rob_rl_reads = it.by_ref().take(partitions).collect();
        act.backends = (0..backends)
            .map(|_| BackendActivity {
                iq_writes: next(&mut it),
                iq_issues: next(&mut it),
                fpq_writes: next(&mut it),
                fpq_issues: next(&mut it),
                copy_ops: next(&mut it),
                mob_allocs: next(&mut it),
                mob_searches: next(&mut it),
                irf_reads: next(&mut it),
                irf_writes: next(&mut it),
                fprf_reads: next(&mut it),
                fprf_writes: next(&mut it),
                int_fu_ops: next(&mut it),
                fp_fu_ops: next(&mut it),
                dl1_accesses: next(&mut it),
                dtlb_accesses: next(&mut it),
            })
            .collect();
    }
    Ok(act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfront_trace::record::TraceShape;

    /// Fills every counter with a distinct value so a misordered
    /// flattening cannot round-trip.
    fn dense(partitions: usize, backends: usize, tc_banks: usize) -> ActivityCounters {
        let mut act = ActivityCounters::new(partitions, backends, tc_banks);
        let mut n = 1u64;
        let mut next = || {
            n += 1;
            n
        };
        act.cycles = next();
        act.committed_uops = next();
        act.tc_fills = next();
        act.bp_accesses = next();
        act.itlb_accesses = next();
        act.decoded_uops = next();
        act.steer_lookups = next();
        act.copy_requests = next();
        act.ul2_accesses = next();
        act.bus_transfers = next();
        act.disamb_broadcasts = next();
        act.link_flits = next();
        for v in &mut act.tc_bank_accesses {
            *v = next();
        }
        for p in 0..partitions {
            act.rat_reads[p] = next();
            act.rat_writes[p] = next();
            act.rob_writes[p] = next();
            act.rob_reads[p] = next();
            act.rob_rl_writes[p] = next();
            act.rob_rl_reads[p] = next();
        }
        for b in &mut act.backends {
            b.iq_writes = next();
            b.iq_issues = next();
            b.fpq_writes = next();
            b.fpq_issues = next();
            b.copy_ops = next();
            b.mob_allocs = next();
            b.mob_searches = next();
            b.irf_reads = next();
            b.irf_writes = next();
            b.fprf_reads = next();
            b.fprf_writes = next();
            b.int_fu_ops = next();
            b.fp_fu_ops = next();
            b.dl1_accesses = next();
            b.dtlb_accesses = next();
        }
        act
    }

    #[test]
    fn flatten_unflatten_roundtrip_over_shapes() {
        for (p, b, t) in [(1, 4, 2), (2, 4, 3), (4, 8, 8), (1, 1, 1)] {
            let act = dense(p, b, t);
            let flat = flatten(&act);
            assert_eq!(flat.len(), flat_len(p, b, t));
            let back = unflatten(p, b, t, &flat).unwrap();
            assert_eq!(back, act, "shape ({p},{b},{t})");
        }
    }

    #[test]
    fn flat_len_matches_the_trace_format_formula() {
        // The trace codec validates record lengths against
        // TraceShape::flat_len; the uarch flattening must agree with it
        // for every shape, or recorded traces would fail to decode.
        for (p, b, t) in [(1, 4, 2), (2, 4, 3), (4, 8, 8), (3, 2, 5)] {
            let shape = TraceShape {
                partitions: p as u32,
                backends: b as u32,
                tc_banks: t as u32,
            };
            assert_eq!(flat_len(p, b, t), shape.flat_len(), "shape ({p},{b},{t})");
            assert_eq!(flatten(&dense(p, b, t)).len(), shape.flat_len());
        }
    }

    #[test]
    fn wrong_length_is_a_clear_error() {
        let act = dense(2, 4, 3);
        let flat = flatten(&act);
        let err = unflatten(1, 4, 3, &flat).unwrap_err();
        assert!(err.contains("needs"), "unhelpful error: {err}");
        assert!(unflatten(2, 4, 3, &flat[..flat.len() - 1]).is_err());
    }

    #[test]
    fn flatten_into_appends() {
        let act = dense(1, 4, 2);
        let mut out = vec![99u64];
        flatten_into(&act, &mut out);
        assert_eq!(out[0], 99);
        assert_eq!(&out[1..], flatten(&act).as_slice());
    }
}
