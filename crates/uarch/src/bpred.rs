//! Branch prediction (the `BP` block of the Fig. 10 floorplan).
//!
//! A classic bimodal predictor: a table of 2-bit saturating counters indexed
//! by PC, plus an always-present BTB (targets are synthetic, so the BTB is
//! modelled for activity only). Prediction accuracy emerges from the
//! per-branch bias of the synthetic programs, giving realistic mispredict
//! rates in the 2–10 % range.

/// A bimodal branch predictor with 2-bit saturating counters.
///
/// # Examples
///
/// ```
/// use distfront_uarch::bpred::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(4096);
/// // Train a strongly-taken branch.
/// for _ in 0..4 {
///     bp.update(0x400100, true);
/// }
/// assert!(bp.predict(0x400100));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        BranchPredictor {
            // Weakly taken: real predictors boot biased toward taken.
            counters: vec![2; entries],
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 4) as usize) & (self.counters.len() - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Predicts and records the outcome, updating the counter; returns
    /// `true` if the prediction was *wrong*.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.predictions += 1;
        let mispredicted = self.predict(pc) != taken;
        if mispredicted {
            self.mispredictions += 1;
        }
        self.update(pc, taken);
        mispredicted
    }

    /// Trains the counter at `pc` with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Total predictions made via [`Self::predict_and_update`].
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions among those.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]` (0 when no predictions were made).
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        BranchPredictor::new(1000);
    }

    #[test]
    fn learns_biased_branch() {
        let mut bp = BranchPredictor::new(1024);
        for _ in 0..8 {
            bp.predict_and_update(0x40_0000, false);
        }
        assert!(!bp.predict(0x40_0000));
        // After warmup it stops mispredicting.
        let before = bp.mispredictions();
        for _ in 0..8 {
            bp.predict_and_update(0x40_0000, false);
        }
        assert_eq!(bp.mispredictions(), before);
    }

    #[test]
    fn hysteresis_survives_single_flip() {
        let mut bp = BranchPredictor::new(1024);
        for _ in 0..4 {
            bp.update(0x100, true);
        }
        bp.update(0x100, false); // one not-taken
        assert!(bp.predict(0x100), "2-bit counter flipped too eagerly");
    }

    #[test]
    fn alternating_branch_mispredicts_heavily() {
        let mut bp = BranchPredictor::new(1024);
        for i in 0..100 {
            bp.predict_and_update(0x200, i % 2 == 0);
        }
        assert!(bp.mispredict_rate() > 0.4);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut bp = BranchPredictor::new(1024);
        for _ in 0..4 {
            bp.update(0x100, true);
            bp.update(0x200, false);
        }
        assert!(bp.predict(0x100));
        assert!(!bp.predict(0x200));
    }

    #[test]
    fn rate_zero_without_predictions() {
        assert_eq!(BranchPredictor::new(16).mispredict_rate(), 0.0);
    }
}
