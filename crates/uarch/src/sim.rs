//! The timing simulator.
//!
//! An instruction-driven cycle-accounting model of the Fig. 2 processor:
//! every micro-op flows fetch → decode/rename/steer → dispatch → issue →
//! execute → commit, with each stage's cycle computed from pipeline
//! latencies (Table 1), structural capacities (ROB, issue queues, MOB,
//! register files), bandwidth limits (8-wide dispatch/commit, 1 issue per
//! queue per cycle, 2 memory buses) and dataflow (per-backend register
//! ready times, inter-cluster copy latencies).
//!
//! Instruction-driven means the simulator walks micro-ops in program order
//! and *computes* the cycle each event happens instead of ticking every
//! cycle; the result is the same cycle arithmetic at a fraction of the
//! cost, which is what lets the full 26-application evaluation run on a
//! laptop. Structural hazards are modelled with capacity rings: a
//! structure of size `S` delays dispatch until the entry `S` positions
//! earlier has left.

use std::collections::{BinaryHeap, VecDeque};

use distfront_cache::l1d::L1DataCache;
use distfront_cache::trace_cache::TraceCache;
use distfront_cache::ul2::UnifiedL2;
use distfront_trace::profile::AppProfile;
use distfront_trace::uop::{MicroOp, RegClass, UopKind, NUM_ARCH_REGS};
use distfront_trace::{TraceGenerator, Workload};

use crate::activity::ActivityCounters;
use crate::bpred::BranchPredictor;
use crate::config::ProcessorConfig;
use crate::rename::{Release, RenameUnit};
use crate::steer::Steerer;
use crate::tracer::{TraceBuilder, TraceLimits};

/// Depth of the fetch→dispatch decoupling buffer in micro-ops.
const DECOUPLE_DEPTH: usize = 64;
/// Bus occupancy per transfer in cycles (the 4+1-cycle latency is charged
/// separately).
const BUS_OCCUPANCY: u64 = 2;

/// A fetch-toggling duty cycle: the fetch unit delivers during `open` of
/// every `period` cycles (§ DTM fetch gating). `open == period` is
/// equivalent to no gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchGate {
    /// Cycles per period the fetch unit is enabled.
    pub open: u32,
    /// Period of the gating pattern in cycles.
    pub period: u32,
}

impl FetchGate {
    /// Validates the duty cycle.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.open == 0 || self.period == 0 || self.open > self.period {
            return Err(format!(
                "fetch gate {}/{} is not a valid duty cycle",
                self.open, self.period
            ));
        }
        Ok(())
    }
}

/// Report for one simulation step (interval).
#[derive(Debug, Clone)]
pub struct IntervalReport {
    /// Activity of this interval only.
    pub activity: ActivityCounters,
    /// Cycle at which the interval ended (last commit observed).
    pub end_cycle: u64,
    /// Cumulative committed micro-ops.
    pub total_committed: u64,
    /// `true` once the micro-op budget passed to [`Simulator::step`] has
    /// been reached.
    pub done: bool,
}

/// Cumulative run statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Total committed micro-ops.
    pub committed_uops: u64,
    /// Cycle of the last commit.
    pub cycles: u64,
    /// Committed micro-ops per cycle.
    pub ipc: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Trace-cache hit rate.
    pub tc_hit_rate: f64,
}

/// Min-heap of release cycles modelling a finite structure.
#[derive(Debug, Clone, Default)]
struct CapacityHeap {
    heap: BinaryHeap<std::cmp::Reverse<u64>>,
}

impl CapacityHeap {
    fn push(&mut self, release: u64) {
        self.heap.push(std::cmp::Reverse(release));
    }

    /// Ensures a free slot at `cand`, possibly raising it; drains entries
    /// that have already left.
    fn wait_for_slot(&mut self, cand: &mut u64, capacity: usize) {
        while let Some(&std::cmp::Reverse(r)) = self.heap.peek() {
            if r <= *cand {
                self.heap.pop();
            } else {
                break;
            }
        }
        if self.heap.len() >= capacity {
            let std::cmp::Reverse(r) = self.heap.pop().expect("non-empty");
            *cand = (*cand).max(r);
        }
    }
}

/// Bandwidth-limited slot allocator (dispatch/commit width).
#[derive(Debug, Clone)]
struct SlotAllocator {
    width: u32,
    cycle: u64,
    used: u32,
}

impl SlotAllocator {
    fn new(width: u32) -> Self {
        SlotAllocator {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Allocates a slot at or after `cand`; returns the granted cycle.
    fn alloc(&mut self, cand: u64) -> u64 {
        if cand > self.cycle {
            self.cycle = cand;
            self.used = 1;
        } else if self.used < self.width {
            self.used += 1;
        } else {
            self.cycle += 1;
            self.used = 1;
        }
        self.cycle
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    commit_cycle: u64,
    backend: usize,
    releases: Vec<Release>,
}

#[derive(Debug, Clone)]
struct BackendTiming {
    /// Next cycle each issue port is free (int, fp, copy, mem).
    int_issue_free: u64,
    fp_issue_free: u64,
    copy_issue_free: u64,
    mem_issue_free: u64,
    /// Unpipelined divider availability.
    int_div_free: u64,
    fp_div_free: u64,
    /// Occupancy of the issue queues / MOB.
    int_q: CapacityHeap,
    fp_q: CapacityHeap,
    copy_q: CapacityHeap,
    mem_q: CapacityHeap,
    /// Per-logical-register value-ready cycle in this backend.
    reg_ready: Vec<u64>,
}

impl BackendTiming {
    fn new() -> Self {
        BackendTiming {
            int_issue_free: 0,
            fp_issue_free: 0,
            copy_issue_free: 0,
            mem_issue_free: 0,
            int_div_free: 0,
            fp_div_free: 0,
            int_q: CapacityHeap::default(),
            fp_q: CapacityHeap::default(),
            copy_q: CapacityHeap::default(),
            mem_q: CapacityHeap::default(),
            reg_ready: vec![0; usize::from(NUM_ARCH_REGS)],
        }
    }
}

/// The clustered-processor timing simulator.
///
/// # Examples
///
/// ```
/// use distfront_trace::AppProfile;
/// use distfront_uarch::config::ProcessorConfig;
/// use distfront_uarch::sim::Simulator;
///
/// let mut sim = Simulator::new(
///     ProcessorConfig::hpca05_baseline(),
///     &AppProfile::test_tiny(),
///     42,
/// );
/// let stats = sim.run(10_000);
/// assert!(stats.committed_uops >= 10_000);
/// assert!(stats.ipc > 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: ProcessorConfig,
    builder: TraceBuilder,
    bp: BranchPredictor,
    tc: TraceCache,
    ul2: UnifiedL2,
    l1d: Vec<L1DataCache>,
    rename: RenameUnit,
    steerer: Steerer,
    act: ActivityCounters,

    backends: Vec<BackendTiming>,
    rob_rings: Vec<VecDeque<InFlight>>,
    dispatch_slots: SlotAllocator,
    commit_slots: SlotAllocator,
    bus_free: Vec<u64>,

    fetch_cycle: u64,
    redirect_floor: u64,
    decouple: VecDeque<u64>,
    last_commit: u64,
    interval_start: u64,
    total_committed: u64,
    tc_lookups: u64,
    tc_hits: u64,

    /// DTM hooks, inactive by default (see the setters for semantics).
    fetch_gate: Option<FetchGate>,
    clock_scale: f64,
}

impl Simulator {
    /// Creates a simulator for `profile` with a deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ProcessorConfig::validate`].
    pub fn new(cfg: ProcessorConfig, profile: &AppProfile, seed: u64) -> Self {
        Self::with_workload(cfg, &Workload::Single(*profile), seed)
    }

    /// Creates a simulator for any [`Workload`] — a stationary application
    /// profile or a phase-structured composition — with a deterministic
    /// `seed`. Single-profile workloads are bit-identical to
    /// [`Simulator::new`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ProcessorConfig::validate`] or the workload
    /// fails [`Workload::validate`].
    pub fn with_workload(cfg: ProcessorConfig, workload: &Workload, seed: u64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("bad config: {e}"));
        let generator = match workload {
            Workload::Single(profile) => TraceGenerator::new(profile, seed),
            Workload::Phased(phased) => TraceGenerator::phased(phased, seed),
        };
        let partitions = cfg.frontend_mode.partitions();
        let tc = TraceCache::new(cfg.trace_cache);
        let physical_banks = cfg.trace_cache.physical_banks();
        Simulator {
            builder: TraceBuilder::new(
                generator,
                TraceLimits {
                    max_uops: cfg.trace_cache.line_uops as usize,
                    max_branches: 3,
                },
            ),
            bp: BranchPredictor::new(16 * 1024),
            tc,
            ul2: UnifiedL2::new(cfg.ul2),
            l1d: (0..cfg.backends)
                .map(|_| L1DataCache::new(cfg.l1d))
                .collect(),
            rename: RenameUnit::new(cfg.backends, partitions, cfg.int_regs, cfg.fp_regs),
            steerer: Steerer::new(cfg.backends, cfg.steering),
            act: ActivityCounters::new(partitions, cfg.backends, physical_banks),
            backends: (0..cfg.backends).map(|_| BackendTiming::new()).collect(),
            rob_rings: vec![VecDeque::new(); partitions],
            dispatch_slots: SlotAllocator::new(cfg.dispatch_width),
            commit_slots: SlotAllocator::new(cfg.commit_width),
            bus_free: vec![0; cfg.memory_buses],
            fetch_cycle: 0,
            redirect_floor: 0,
            decouple: VecDeque::with_capacity(DECOUPLE_DEPTH),
            last_commit: 0,
            interval_start: 0,
            total_committed: 0,
            tc_lookups: 0,
            tc_hits: 0,
            fetch_gate: None,
            clock_scale: 1.0,
            cfg,
        }
    }

    /// Gates the fetch unit to a duty cycle (thermal fetch toggling), or
    /// removes the gate with `None`. Gated fetch delivers traces at
    /// `open/period` of the nominal bandwidth, which lowers front-end
    /// activity density at an IPC cost when fetch is the bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if the gate fails [`FetchGate::validate`].
    pub fn set_fetch_gate(&mut self, gate: Option<FetchGate>) {
        if let Some(g) = gate {
            g.validate()
                .unwrap_or_else(|e| panic!("bad fetch gate: {e}"));
        }
        self.fetch_gate = gate;
    }

    /// The fetch gate in force, if any.
    pub fn fetch_gate(&self) -> Option<FetchGate> {
        self.fetch_gate
    }

    /// Sets the core-domain clock as a fraction of nominal (global DVFS).
    ///
    /// The memory buses and UL2 sit on a fixed uncore domain, so when the
    /// core domain slows by `scale`, uncore latencies cost proportionally
    /// fewer *core* cycles — the classic "memory gets relatively closer
    /// under DVFS" effect. `1.0` restores nominal timing exactly.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn set_clock_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && 0.0 < scale && scale <= 1.0,
            "clock scale {scale} outside (0, 1]"
        );
        self.clock_scale = scale;
    }

    /// The core-domain clock scale in force.
    pub fn clock_scale(&self) -> f64 {
        self.clock_scale
    }

    /// Biases dispatch steering toward the backends fed by frontend
    /// partition `partition` (front-end activity migration), or removes the
    /// bias with `None`. With a centralized frontend the single partition
    /// covers every backend, so the bias is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn set_partition_bias(&mut self, partition: Option<usize>) {
        let range = partition.map(|p| {
            assert!(
                p < self.cfg.frontend_mode.partitions(),
                "partition {p} out of range"
            );
            let per = self.cfg.backends_per_frontend();
            (p * per, (p + 1) * per)
        });
        self.steerer.set_preferred(range);
    }

    /// An uncore latency converted to core cycles at the current clock
    /// scale (identity at nominal).
    fn uncore_cycles(&self, lat: u64) -> u64 {
        if self.clock_scale == 1.0 {
            lat
        } else {
            ((lat as f64 * self.clock_scale).round() as u64).max(1)
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.cfg
    }

    /// Resets the simulator to a fresh run of `profile` under the same
    /// processor configuration: all caches, predictors, rename state,
    /// timing rings and statistics return to their initial state, exactly
    /// as if the simulator had just been constructed. This is what lets an
    /// engine reuse one simulator across its pilot and evaluation phases
    /// (and across grid cells) instead of rebuilding it.
    pub fn reset(&mut self, profile: &AppProfile, seed: u64) {
        *self = Simulator::new(self.cfg.clone(), profile, seed);
    }

    /// [`reset`](Self::reset) for any [`Workload`]: returns the simulator
    /// to a fresh run of `workload` under the same processor
    /// configuration.
    pub fn reset_workload(&mut self, workload: &Workload, seed: u64) {
        *self = Simulator::with_workload(self.cfg.clone(), workload, seed);
    }

    /// A fresh simulator with the same configuration, ready to run
    /// `profile` from cycle zero.
    pub fn fresh(&self, profile: &AppProfile, seed: u64) -> Simulator {
        Simulator::new(self.cfg.clone(), profile, seed)
    }

    /// Mutable access to the trace cache, for the thermal control loop
    /// (hopping and mapping rebalance happen at interval boundaries).
    pub fn trace_cache_mut(&mut self) -> &mut TraceCache {
        &mut self.tc
    }

    /// Shared access to the trace cache.
    pub fn trace_cache(&self) -> &TraceCache {
        &self.tc
    }

    /// Cycle of the most recent commit.
    pub fn current_cycle(&self) -> u64 {
        self.last_commit
    }

    /// Total micro-ops committed so far.
    pub fn total_committed(&self) -> u64 {
        self.total_committed
    }

    /// Branch misprediction rate so far.
    pub fn mispredict_rate(&self) -> f64 {
        self.bp.mispredict_rate()
    }

    /// Trace-cache hit rate so far.
    pub fn tc_hit_rate(&self) -> f64 {
        if self.tc_lookups == 0 {
            1.0
        } else {
            self.tc_hits as f64 / self.tc_lookups as f64
        }
    }

    /// Runs until `cycle_target` is passed or `uop_target` total micro-ops
    /// have committed, returning the interval's activity.
    pub fn step(&mut self, cycle_target: u64, uop_target: u64) -> IntervalReport {
        while self.last_commit < cycle_target && self.total_committed < uop_target {
            self.run_trace();
        }
        // Fold cache/rename counters into the interval activity.
        let bank_acc = self.tc.take_bank_accesses();
        for (a, b) in self.act.tc_bank_accesses.iter_mut().zip(&bank_acc) {
            *a += b;
        }
        let ra = self.rename.take_activity();
        for (a, b) in self.act.rat_reads.iter_mut().zip(&ra.rat_reads) {
            *a += b;
        }
        for (a, b) in self.act.rat_writes.iter_mut().zip(&ra.rat_writes) {
            *a += b;
        }
        self.act.steer_lookups += ra.steer_lookups;
        self.act.copy_requests += ra.copy_requests;
        self.act.cycles = self.last_commit.saturating_sub(self.interval_start).max(1);
        self.interval_start = self.last_commit;
        IntervalReport {
            activity: self.act.take(),
            end_cycle: self.last_commit,
            total_committed: self.total_committed,
            done: self.total_committed >= uop_target,
        }
    }

    /// Runs one interval at a *hypothetical* operating point on a
    /// throwaway fork of the simulator, leaving the live run untouched.
    ///
    /// This is the multi-point recording tap: at each interval boundary a
    /// recorder can snapshot what the core *would have done* under every
    /// policy-actionable DTM variant (clock-scaled, fetch-gated, dispatch-
    /// biased) by probing each one from the identical pipeline state the
    /// live interval starts from. `configure` receives the fork with all
    /// DTM hooks at the live run's current settings; it should set them to
    /// the variant's (e.g. [`set_clock_scale`](Self::set_clock_scale),
    /// [`set_fetch_gate`](Self::set_fetch_gate),
    /// [`set_partition_bias`](Self::set_partition_bias)). The fork then
    /// runs one [`step`](Self::step) to `cycle_target`/`uop_target` and is
    /// discarded, so the live simulator's state — caches, predictors,
    /// rename rings, statistics — is bit-identical to never having probed.
    pub fn probe_interval(
        &self,
        configure: impl FnOnce(&mut Simulator),
        cycle_target: u64,
        uop_target: u64,
    ) -> IntervalReport {
        let mut fork = self.clone();
        configure(&mut fork);
        fork.step(cycle_target, uop_target)
    }

    /// Runs at least `uops` further micro-ops to completion (rounding up to
    /// a whole trace) and returns cumulative stats.
    pub fn run(&mut self, uops: u64) -> RunStats {
        let target = self.total_committed + uops;
        while self.total_committed < target {
            self.run_trace();
        }
        RunStats {
            committed_uops: self.total_committed,
            cycles: self.last_commit,
            ipc: self.total_committed as f64 / self.last_commit.max(1) as f64,
            mispredict_rate: self.bp.mispredict_rate(),
            tc_hit_rate: self.tc_hit_rate(),
        }
    }

    /// Fetches and fully processes one trace.
    fn run_trace(&mut self) {
        let mut fc = self.fetch_cycle.max(self.redirect_floor);
        // Fetch/dispatch decoupling: the fetch unit stalls when the buffer
        // between fetch and dispatch is full.
        if self.decouple.len() >= DECOUPLE_DEPTH {
            let oldest_dispatch = *self.decouple.front().expect("non-empty");
            let pipe = u64::from(self.cfg.fetch_to_dispatch + self.cfg.decode_rename_steer);
            fc = fc.max(oldest_dispatch.saturating_sub(pipe));
        }

        let trace = self.builder.next_trace();
        self.act.itlb_accesses += 1;
        self.tc_lookups += 1;
        let hit = self.tc.lookup(trace.key);
        let deliver = if hit {
            self.tc_hits += 1;
            fc + 1
        } else {
            // Build the trace from the UL2 over a memory bus.
            self.act.tc_fills += 1;
            self.act.ul2_accesses += 1;
            let (grant, bus_lat) = self.alloc_bus(fc);
            let raw_lat = u64::from(self.ul2.access(trace.key.start_pc));
            let lat = self.uncore_cycles(raw_lat);
            self.tc.insert(trace.key);
            // Line build streams the micro-ops through decode.
            let build = trace.len() as u64 / 4 + 1;
            grant + bus_lat + lat + build
        };
        let mut fetch_cycles = (trace.len() as u64).div_ceil(u64::from(self.cfg.fetch_width));
        if let Some(g) = self.fetch_gate {
            // Toggling: the same fetch work spreads over period/open the
            // cycles (integer arithmetic keeps the timing deterministic).
            fetch_cycles = (fetch_cycles * u64::from(g.period)).div_ceil(u64::from(g.open));
        }
        self.fetch_cycle = deliver + fetch_cycles;
        let front_ready =
            deliver + u64::from(self.cfg.fetch_to_dispatch + self.cfg.decode_rename_steer);
        for uop in &trace.uops {
            self.process_uop(uop, front_ready);
        }
    }

    /// Allocates a memory bus at or after `request`; returns the grant
    /// cycle and the bus latency to charge.
    fn alloc_bus(&mut self, request: u64) -> (u64, u64) {
        self.act.bus_transfers += 1;
        let (idx, &free) = self
            .bus_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("at least one bus");
        let grant = request.max(free);
        self.bus_free[idx] = grant + BUS_OCCUPANCY;
        (grant, self.uncore_cycles(u64::from(self.cfg.bus_latency)))
    }

    /// Pops the globally oldest in-flight instruction, applying its
    /// register releases. Returns `false` if nothing is in flight.
    fn pop_oldest_rob(&mut self) -> bool {
        let oldest = (0..self.rob_rings.len())
            .filter(|&p| !self.rob_rings[p].is_empty())
            .min_by_key(|&p| self.rob_rings[p].front().expect("checked").commit_cycle);
        let Some(p) = oldest else {
            return false;
        };
        let inf = self.rob_rings[p].pop_front().expect("checked");
        self.rename.commit_release(&inf.releases);
        self.steerer.note_retire(inf.backend);
        true
    }

    /// Drains ROB entries whose commit cycle has passed `cand`, then waits
    /// for a slot in `partition` if still full.
    fn wait_rob_slot(&mut self, partition: usize, cand: &mut u64) {
        let cap = self.cfg.rob_per_partition();
        loop {
            let ring = &self.rob_rings[partition];
            match ring.front() {
                Some(front) if front.commit_cycle <= *cand || ring.len() >= cap => {
                    *cand = (*cand).max(self.rob_rings[partition][0].commit_cycle);
                    let inf = self.rob_rings[partition].pop_front().expect("non-empty");
                    self.rename.commit_release(&inf.releases);
                    self.steerer.note_retire(inf.backend);
                    if ring_has_room(&self.rob_rings[partition], cap) {
                        break;
                    }
                }
                _ => break,
            }
        }
    }

    /// Processes one micro-op through rename → dispatch → issue → commit.
    fn process_uop(&mut self, uop: &MicroOp, front_ready: u64) {
        let cfg_dispatch_latency = u64::from(self.cfg.dispatch_latency);
        self.act.decoded_uops += 1;

        // -- Steer and rename ------------------------------------------------
        let backend = self.steerer.steer(uop, &self.rename);
        let partition = self.cfg.frontend_of(backend);
        let renamed = loop {
            match self.rename.rename(uop, backend) {
                Ok(r) => break r,
                Err(_) => {
                    let ok = self.pop_oldest_rob();
                    assert!(ok, "register deadlock with empty ROB");
                }
            }
        };

        // -- Dispatch --------------------------------------------------------
        let mut cand = front_ready;
        self.wait_rob_slot(partition, &mut cand);
        {
            let b = &mut self.backends[backend];
            match queue_class(uop.kind) {
                QueueClass::Int => b.int_q.wait_for_slot(&mut cand, self.cfg.int_queue),
                QueueClass::Fp => b.fp_q.wait_for_slot(&mut cand, self.cfg.fp_queue),
                QueueClass::Mem => b.mem_q.wait_for_slot(&mut cand, self.cfg.mem_queue),
            }
        }
        let dispatch = self.dispatch_slots.alloc(cand);
        if self.decouple.len() >= DECOUPLE_DEPTH {
            self.decouple.pop_front();
        }
        self.decouple.push_back(dispatch);

        // ROB write (plus the L-field patch of the previous entry in the
        // distributed organization).
        self.act.rob_writes[partition] += 1;
        if self.cfg.frontend_mode.is_distributed() {
            // The previous entry's L field is patched (narrow write).
            self.act.rob_rl_writes[partition] += 1;
        }

        // -- Copies to localize remote sources --------------------------------
        for copy in &renamed.copies {
            let from_t = &mut self.backends[copy.from];
            let val_ready = from_t.reg_ready[copy.reg.index()];
            // A cross-partition copy is generated by the other frontend
            // after a request signal (§3.1.1, step 2): one extra cycle.
            let request = u64::from(copy.cross_partition);
            let mut c_cand = (dispatch + cfg_dispatch_latency + request).max(val_ready);
            from_t
                .copy_q
                .wait_for_slot(&mut c_cand, self.cfg.copy_queue);
            let issue = c_cand.max(from_t.copy_issue_free);
            from_t.copy_issue_free = issue + 1;
            from_t.copy_q.push(issue);
            let hops = u64::from(self.cfg.hops_between(copy.from, copy.to));
            let arrival = issue + 1 + hops;
            self.backends[copy.to].reg_ready[copy.reg.index()] =
                self.backends[copy.to].reg_ready[copy.reg.index()].max(arrival);

            // Activity: copy issues at the source, value lands at the dest.
            self.act.backends[copy.from].copy_ops += 1;
            self.act.link_flits += hops.max(1);
            match copy.reg.class() {
                RegClass::Int => {
                    self.act.backends[copy.from].irf_reads += 1;
                    self.act.backends[copy.to].irf_writes += 1;
                }
                RegClass::Fp => {
                    self.act.backends[copy.from].fprf_reads += 1;
                    self.act.backends[copy.to].fprf_writes += 1;
                }
            }
        }

        // -- Issue -----------------------------------------------------------
        let earliest_issue = dispatch + cfg_dispatch_latency;
        let operands = uop
            .sources()
            .map(|s| self.backends[backend].reg_ready[s.index()])
            .max()
            .unwrap_or(0);
        let bt = &mut self.backends[backend];
        let mut issue = earliest_issue.max(operands);
        match queue_class(uop.kind) {
            QueueClass::Int => {
                issue = issue.max(bt.int_issue_free);
                if uop.kind == UopKind::IntDiv {
                    issue = issue.max(bt.int_div_free);
                    bt.int_div_free = issue + u64::from(uop.kind.latency());
                }
                bt.int_issue_free = issue + 1;
                bt.int_q.push(issue);
                self.act.backends[backend].iq_writes += 1;
                self.act.backends[backend].iq_issues += 1;
                self.act.backends[backend].int_fu_ops += 1;
            }
            QueueClass::Fp => {
                issue = issue.max(bt.fp_issue_free);
                if uop.kind == UopKind::FpDiv {
                    issue = issue.max(bt.fp_div_free);
                    bt.fp_div_free = issue + u64::from(uop.kind.latency());
                }
                bt.fp_issue_free = issue + 1;
                bt.fp_q.push(issue);
                self.act.backends[backend].fpq_writes += 1;
                self.act.backends[backend].fpq_issues += 1;
                self.act.backends[backend].fp_fu_ops += 1;
            }
            QueueClass::Mem => {
                issue = issue.max(bt.mem_issue_free);
                bt.mem_issue_free = issue + 1;
                self.act.backends[backend].int_fu_ops += 1; // address generation
            }
        }

        // Register-file reads for sources, write for the destination.
        for s in uop.sources() {
            match s.class() {
                RegClass::Int => self.act.backends[backend].irf_reads += 1,
                RegClass::Fp => self.act.backends[backend].fprf_reads += 1,
            }
        }

        // -- Execute ---------------------------------------------------------
        let mut complete = issue + u64::from(uop.kind.latency());
        match uop.kind {
            UopKind::Load => {
                self.act.backends[backend].dl1_accesses += 1;
                self.act.backends[backend].dtlb_accesses += 1;
                self.act.backends[backend].mob_allocs += 1;
                self.act.backends[backend].mob_searches += 1;
                let addr = uop.mem_addr.expect("load without address");
                if self.l1d[backend].load(addr) {
                    complete += u64::from(self.cfg.l1d.hit_latency);
                } else {
                    let (grant, bus_lat) = self.alloc_bus(complete);
                    self.act.ul2_accesses += 1;
                    let raw_l2 = u64::from(self.ul2.access(addr));
                    let l2 = self.uncore_cycles(raw_l2);
                    complete = grant + bus_lat + l2;
                }
                // Loads release their MOB entry once disambiguated
                // (modelled at completion).
                self.backends[backend].mem_q.push(complete);
            }
            UopKind::Store => {
                self.act.backends[backend].dl1_accesses += 1;
                self.act.backends[backend].dtlb_accesses += 1;
                let addr = uop.mem_addr.expect("store without address");
                self.l1d[backend].store(addr);
                // Address broadcast on the disambiguation bus; a slot is
                // held in every cluster's MOB until commit (§2).
                self.act.disamb_broadcasts += 1;
                for b in 0..self.cfg.backends {
                    self.act.backends[b].mob_allocs += 1;
                }
            }
            UopKind::Branch => {
                self.act.bp_accesses += 2; // predict at fetch + update at resolve
                let mispredicted = self.bp.predict_and_update(uop.pc, uop.taken);
                if mispredicted {
                    let redirect = complete + u64::from(self.cfg.mispredict_penalty());
                    self.redirect_floor = self.redirect_floor.max(redirect);
                }
            }
            _ => {}
        }

        if let Some(dst) = uop.dst {
            self.backends[backend].reg_ready[dst.index()] = complete;
            match dst.class() {
                RegClass::Int => self.act.backends[backend].irf_writes += 1,
                RegClass::Fp => self.act.backends[backend].fprf_writes += 1,
            }
        }

        // -- Commit ----------------------------------------------------------
        let commit_ready = complete + 1 + u64::from(self.cfg.distributed_commit_penalty);
        let commit = self.commit_slots.alloc(commit_ready);
        self.act.rob_reads[partition] += 1;
        if self.cfg.frontend_mode.is_distributed() {
            // Amortized R/L pre-read of the commit walk (§3.1.2).
            for p in 0..self.rob_rings.len() {
                self.act.rob_rl_reads[p] += 1;
            }
        }
        if uop.kind == UopKind::Store {
            // The store's MOB slots (all clusters) free at commit.
            for b in 0..self.cfg.backends {
                if b != backend {
                    self.backends[b].mem_q.push(commit);
                }
            }
            self.backends[backend].mem_q.push(commit);
        }
        self.rob_rings[partition].push_back(InFlight {
            commit_cycle: commit,
            backend,
            releases: renamed.releases,
        });
        self.last_commit = self.last_commit.max(commit);
        self.total_committed += 1;
        self.act.committed_uops += 1;
    }
}

fn ring_has_room(ring: &VecDeque<InFlight>, cap: usize) -> bool {
    ring.len() < cap
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueClass {
    Int,
    Fp,
    Mem,
}

fn queue_class(kind: UopKind) -> QueueClass {
    match kind {
        UopKind::Load | UopKind::Store => QueueClass::Mem,
        k if k.is_fp() => QueueClass::Fp,
        _ => QueueClass::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_sim() -> Simulator {
        Simulator::new(
            ProcessorConfig::hpca05_baseline(),
            &AppProfile::test_tiny(),
            7,
        )
    }

    #[test]
    fn runs_and_commits_exactly() {
        let mut sim = baseline_sim();
        let stats = sim.run(5_000);
        assert!(
            stats.committed_uops >= 5_000,
            "ran {}",
            stats.committed_uops
        );
        assert!(stats.committed_uops < 5_000 + 16, "overshot a full trace");
        assert!(stats.cycles > 0);
    }

    #[test]
    fn deterministic() {
        let a = baseline_sim().run(20_000);
        let b = baseline_sim().run(20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn ipc_in_plausible_range() {
        let mut sim = baseline_sim();
        let stats = sim.run(50_000);
        assert!(
            stats.ipc > 0.2 && stats.ipc <= 8.0,
            "ipc {} out of range",
            stats.ipc
        );
    }

    #[test]
    fn branch_predictor_learns_workload() {
        let mut sim = baseline_sim();
        let stats = sim.run(50_000);
        assert!(
            stats.mispredict_rate < 0.25,
            "mispredict rate {}",
            stats.mispredict_rate
        );
        assert!(stats.mispredict_rate > 0.0, "perfect prediction is fishy");
    }

    #[test]
    fn trace_cache_warms_up() {
        let mut sim = baseline_sim();
        let stats = sim.run(50_000);
        assert!(stats.tc_hit_rate > 0.8, "tc hit rate {}", stats.tc_hit_rate);
    }

    #[test]
    fn distributed_mode_runs_with_small_slowdown() {
        let base = baseline_sim().run(60_000);
        let mut dsim = Simulator::new(
            ProcessorConfig::distributed_rename_commit(),
            &AppProfile::test_tiny(),
            7,
        );
        let dist = dsim.run(60_000);
        let slowdown = dist.cycles as f64 / base.cycles as f64;
        assert!(
            (0.95..1.25).contains(&slowdown),
            "distributed slowdown {slowdown}"
        );
    }

    #[test]
    fn step_partitions_activity() {
        let mut sim = baseline_sim();
        let r1 = sim.step(u64::MAX, 10_000);
        assert!(r1.done);
        assert!(r1.total_committed >= 10_000);
        assert_eq!(r1.activity.committed_uops, r1.total_committed);
        assert!(r1.activity.decoded_uops >= r1.total_committed);
        // A second step starts from zeroed activity.
        let r2 = sim.step(u64::MAX, 15_000);
        assert_eq!(
            r2.activity.committed_uops,
            r2.total_committed - r1.total_committed
        );
        assert!(r2.total_committed >= 15_000);
    }

    #[test]
    fn activity_spread_over_backends() {
        let mut sim = baseline_sim();
        let r = sim.step(u64::MAX, 40_000);
        for (b, a) in r.activity.backends.iter().enumerate() {
            assert!(
                a.iq_writes + a.fpq_writes + a.dl1_accesses > 0,
                "backend {b} idle"
            );
        }
    }

    #[test]
    fn tc_bank_accesses_recorded() {
        let mut sim = baseline_sim();
        let r = sim.step(u64::MAX, 40_000);
        let total: u64 = r.activity.tc_bank_accesses.iter().sum();
        assert!(total > 0);
        assert_eq!(r.activity.tc_bank_accesses.len(), 2);
    }

    #[test]
    fn centralized_has_single_partition_counters() {
        let mut sim = baseline_sim();
        let r = sim.step(u64::MAX, 5_000);
        assert_eq!(r.activity.rat_reads.len(), 1);
        assert_eq!(r.activity.copy_requests, 0);
    }

    #[test]
    fn distributed_generates_copy_requests() {
        let mut sim = Simulator::new(
            ProcessorConfig::distributed_rename_commit(),
            &AppProfile::test_tiny(),
            7,
        );
        let r = sim.step(u64::MAX, 40_000);
        assert_eq!(r.activity.rat_reads.len(), 2);
        assert!(r.activity.copy_requests > 0, "no cross-partition copies");
        // Rename activity is split across both partitions.
        assert!(r.activity.rat_writes[0] > 0);
        assert!(r.activity.rat_writes[1] > 0);
    }

    #[test]
    fn stores_broadcast_disambiguation() {
        let mut sim = baseline_sim();
        let r = sim.step(u64::MAX, 20_000);
        assert!(r.activity.disamb_broadcasts > 0);
        // Every store allocates a MOB slot in all four clusters.
        let total_allocs: u64 = r.activity.backends.iter().map(|b| b.mob_allocs).sum();
        assert!(total_allocs >= r.activity.disamb_broadcasts * 4);
    }

    #[test]
    fn memory_bound_app_is_slower() {
        let fast = Simulator::new(
            ProcessorConfig::hpca05_baseline(),
            AppProfile::by_name("crafty").unwrap(),
            3,
        )
        .run(200_000);
        let slow = Simulator::new(
            ProcessorConfig::hpca05_baseline(),
            AppProfile::by_name("mcf").unwrap(),
            3,
        )
        .run(200_000);
        assert!(
            slow.ipc < fast.ipc,
            "mcf ({}) should be slower than crafty ({})",
            slow.ipc,
            fast.ipc
        );
    }

    #[test]
    fn reset_equals_fresh_construction() {
        let mut sim = baseline_sim();
        sim.run(30_000);
        sim.reset(&AppProfile::test_tiny(), 7);
        assert_eq!(sim.current_cycle(), 0);
        assert_eq!(sim.total_committed(), 0);
        let after_reset = sim.run(20_000);
        let fresh = baseline_sim().run(20_000);
        assert_eq!(after_reset, fresh, "reset run differs from fresh run");
    }

    #[test]
    fn reset_can_switch_profile_and_seed() {
        let mut sim = baseline_sim();
        sim.run(10_000);
        let gzip = AppProfile::by_name("gzip").unwrap();
        sim.reset(gzip, 99);
        let a = sim.run(20_000);
        let b = Simulator::new(ProcessorConfig::hpca05_baseline(), gzip, 99).run(20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn fresh_leaves_original_untouched() {
        let mut sim = baseline_sim();
        sim.run(10_000);
        let committed = sim.total_committed();
        let mut clone = sim.fresh(&AppProfile::test_tiny(), 7);
        clone.run(5_000);
        assert_eq!(sim.total_committed(), committed);
        assert_eq!(clone.config(), sim.config());
    }

    #[test]
    fn fetch_gate_slows_the_run() {
        let free = baseline_sim().run(40_000);
        let mut gated_sim = baseline_sim();
        gated_sim.set_fetch_gate(Some(FetchGate { open: 1, period: 4 }));
        let gated = gated_sim.run(40_000);
        assert!(
            gated.cycles > free.cycles,
            "quarter-duty fetch must cost cycles: {} vs {}",
            gated.cycles,
            free.cycles
        );
        // Removing the gate restores nominal timing for fresh runs.
        gated_sim.set_fetch_gate(None);
        assert_eq!(gated_sim.fetch_gate(), None);
    }

    #[test]
    fn full_duty_gate_is_identical_to_no_gate() {
        let free = baseline_sim().run(30_000);
        let mut sim = baseline_sim();
        sim.set_fetch_gate(Some(FetchGate { open: 3, period: 3 }));
        assert_eq!(sim.run(30_000), free);
    }

    #[test]
    #[should_panic(expected = "bad fetch gate")]
    fn inverted_duty_cycle_rejected() {
        baseline_sim().set_fetch_gate(Some(FetchGate { open: 5, period: 2 }));
    }

    #[test]
    fn clock_scale_shrinks_uncore_latency() {
        // A slowed core domain sees the fixed-speed uncore as closer, so a
        // memory-bound run completes in fewer core cycles.
        let mcf = AppProfile::by_name("mcf").unwrap();
        let nominal = Simulator::new(ProcessorConfig::hpca05_baseline(), mcf, 3).run(60_000);
        let mut slow = Simulator::new(ProcessorConfig::hpca05_baseline(), mcf, 3);
        slow.set_clock_scale(0.5);
        let scaled = slow.run(60_000);
        assert!(
            scaled.cycles < nominal.cycles,
            "scaled {} vs nominal {}",
            scaled.cycles,
            nominal.cycles
        );
    }

    #[test]
    fn unit_clock_scale_is_identical() {
        let free = baseline_sim().run(30_000);
        let mut sim = baseline_sim();
        sim.set_clock_scale(1.0);
        assert_eq!(sim.run(30_000), free);
        assert_eq!(sim.clock_scale(), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn overclocked_scale_rejected() {
        baseline_sim().set_clock_scale(1.5);
    }

    #[test]
    fn partition_bias_moves_commit_activity() {
        let cfg = ProcessorConfig::distributed_rename_commit();
        let app = AppProfile::test_tiny();
        let mut unbiased = Simulator::new(cfg.clone(), &app, 7);
        let ru = unbiased.step(u64::MAX, 40_000);
        let mut biased = Simulator::new(cfg, &app, 7);
        biased.set_partition_bias(Some(1));
        let rb = biased.step(u64::MAX, 40_000);
        // Partition 1 feeds backends 2 and 3; the bias must shift issue
        // activity (and with it RAT/ROB work) toward that partition.
        let share = |r: &IntervalReport| {
            let hi: u64 = r.activity.backends[2..].iter().map(|b| b.iq_writes).sum();
            let all: u64 = r.activity.backends.iter().map(|b| b.iq_writes).sum();
            hi as f64 / all as f64
        };
        assert!(
            share(&rb) > share(&ru) + 0.1,
            "biased share {} vs unbiased {}",
            share(&rb),
            share(&ru)
        );
        assert!(rb.activity.rat_writes[1] > ru.activity.rat_writes[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_bias_bounds_checked() {
        baseline_sim().set_partition_bias(Some(1));
    }

    #[test]
    fn probe_interval_is_invisible_to_the_live_run() {
        // Interleaving probes (at perturbing operating points!) between
        // live steps must leave the live trajectory bit-identical.
        let mut probed = baseline_sim();
        let mut plain = baseline_sim();
        let mut probed_reports = Vec::new();
        loop {
            let target = probed.current_cycle() + 5_000;
            let dvfs = probed.probe_interval(|s| s.set_clock_scale(0.7), target, 30_000);
            let gated = probed.probe_interval(
                |s| s.set_fetch_gate(Some(FetchGate { open: 1, period: 2 })),
                target,
                30_000,
            );
            assert!(gated.activity.cycles >= dvfs.activity.cycles / 2);
            let live = probed.step(target, 30_000);
            let reference = plain.step(plain.current_cycle() + 5_000, 30_000);
            assert_eq!(live.activity, reference.activity);
            assert_eq!(live.end_cycle, reference.end_cycle);
            probed_reports.push((dvfs, gated));
            if live.done {
                break;
            }
        }
        assert_eq!(probed.total_committed(), plain.total_committed());
        assert!(!probed_reports.is_empty());
    }

    #[test]
    fn probe_interval_matches_a_manual_fork() {
        let mut sim = baseline_sim();
        sim.step(sim.current_cycle() + 5_000, 30_000);
        let target = sim.current_cycle() + 5_000;
        let probe = sim.probe_interval(|s| s.set_clock_scale(0.5), target, 30_000);
        let mut fork = sim.clone();
        fork.set_clock_scale(0.5);
        let manual = fork.step(target, 30_000);
        assert_eq!(probe.activity, manual.activity);
        assert_eq!(probe.end_cycle, manual.end_cycle);
        assert_eq!(probe.done, manual.done);
    }

    #[test]
    fn commits_monotonic_and_bandwidth_bounded() {
        let mut sim = baseline_sim();
        let stats = sim.run(30_000);
        // Cannot commit faster than commit_width per cycle.
        assert!(stats.cycles >= 30_000 / 8);
    }
}
