//! Trace construction for the trace cache.
//!
//! The fetch unit delivers *traces*: dynamic sequences of up to
//! [`TraceLimits::max_uops`] micro-ops containing at most
//! [`TraceLimits::max_branches`] branches, identified by the PC of the
//! first micro-op plus the directions of the branches inside
//! ([`distfront_cache::trace_cache::TraceKey`]). A trace ends early at its
//! branch limit, so re-walking the same path re-creates the same key — the
//! property that makes the trace cache work.

use distfront_cache::trace_cache::TraceKey;
use distfront_trace::generator::TraceGenerator;
use distfront_trace::uop::MicroOp;

/// Structural limits of a trace line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceLimits {
    /// Maximum micro-ops per trace (the trace-cache line size).
    pub max_uops: usize,
    /// Maximum branches per trace (the classic trace cache stores 3).
    pub max_branches: usize,
}

impl Default for TraceLimits {
    fn default() -> Self {
        TraceLimits {
            max_uops: 16,
            max_branches: 3,
        }
    }
}

/// A fetched trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace-cache key (start PC + branch directions).
    pub key: TraceKey,
    /// The micro-ops, in program order.
    pub uops: Vec<MicroOp>,
}

impl Trace {
    /// Number of micro-ops in the trace.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// `true` if the trace carries no micro-ops (never produced by
    /// [`TraceBuilder`]).
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }
}

/// Builds traces by consuming a [`TraceGenerator`] stream.
///
/// Traces are aligned to basic-block boundaries: a trace ends when the next
/// whole block would not fit, at its branch limit, or at the micro-op limit
/// (blocks longer than a line are split at fixed offsets). Alignment keeps
/// the set of distinct trace keys proportional to the *code footprint*
/// rather than to the number of distinct dynamic paths, which is what lets
/// a real trace cache converge on the hot path.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    generator: TraceGenerator,
    limits: TraceLimits,
    /// Micro-ops of the block currently being consumed, not yet emitted.
    pending: std::collections::VecDeque<MicroOp>,
}

impl TraceBuilder {
    /// Wraps a generator with the given limits.
    pub fn new(generator: TraceGenerator, limits: TraceLimits) -> Self {
        TraceBuilder {
            generator,
            limits,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// Pulls one whole basic block from the generator into `pending`.
    fn refill(&mut self) {
        loop {
            let uop = self.generator.next_uop();
            let ends = uop.ends_block;
            self.pending.push_back(uop);
            if ends {
                break;
            }
        }
    }

    /// Builds the next trace along the executed path.
    pub fn next_trace(&mut self) -> Trace {
        let mut uops = Vec::with_capacity(self.limits.max_uops);
        let mut branch_bits = 0u8;
        let mut branches = 0;
        loop {
            if self.pending.is_empty() {
                self.refill();
            }
            let block_len = self.pending.len();
            let fits = uops.len() + block_len <= self.limits.max_uops;
            if !fits && !uops.is_empty() {
                break; // end the trace at the block boundary
            }
            let take = if fits {
                block_len
            } else {
                self.limits.max_uops
            };
            for _ in 0..take {
                let uop = self.pending.pop_front().expect("refilled above");
                let is_branch = uop.is_branch();
                let taken = uop.taken;
                uops.push(uop);
                if is_branch {
                    if taken {
                        branch_bits |= 1 << branches;
                    }
                    branches += 1;
                }
            }
            if branches >= self.limits.max_branches || uops.len() >= self.limits.max_uops {
                break;
            }
        }
        let start_pc = uops[0].pc;
        Trace {
            key: TraceKey::new(start_pc, branch_bits),
            uops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfront_trace::profile::AppProfile;
    use distfront_trace::uop::UopKind;
    use std::collections::HashMap;

    fn builder() -> TraceBuilder {
        TraceBuilder::new(
            TraceGenerator::new(&AppProfile::test_tiny(), 9),
            TraceLimits::default(),
        )
    }

    #[test]
    fn traces_respect_limits() {
        let mut b = builder();
        for _ in 0..500 {
            let t = b.next_trace();
            assert!(!t.is_empty());
            assert!(t.len() <= 16);
            let branches = t.uops.iter().filter(|u| u.is_branch()).count();
            assert!(branches <= 3);
        }
    }

    #[test]
    fn traces_are_contiguous_in_program_order() {
        let mut b = builder();
        let mut expect_seq = 0;
        for _ in 0..200 {
            let t = b.next_trace();
            for u in &t.uops {
                assert_eq!(u.seq, expect_seq);
                expect_seq += 1;
            }
        }
    }

    #[test]
    fn key_encodes_branch_directions() {
        let mut b = builder();
        for _ in 0..300 {
            let t = b.next_trace();
            let mut bits = 0u8;
            for (i, u) in t
                .uops
                .iter()
                .filter(|u| u.kind == UopKind::Branch)
                .enumerate()
            {
                if u.taken {
                    bits |= 1 << i;
                }
            }
            assert_eq!(t.key.branch_bits, bits);
            assert_eq!(t.key.start_pc, t.uops[0].pc);
        }
    }

    #[test]
    fn same_key_means_same_static_content() {
        // The fundamental trace-cache property.
        let mut b = builder();
        let mut seen: HashMap<TraceKey, Vec<(u64, UopKind)>> = HashMap::new();
        for _ in 0..2000 {
            let t = b.next_trace();
            let sig: Vec<_> = t.uops.iter().map(|u| (u.pc, u.kind)).collect();
            if let Some(prev) = seen.get(&t.key) {
                assert_eq!(prev, &sig, "key {:?} changed contents", t.key);
            } else {
                seen.insert(t.key, sig);
            }
        }
        assert!(seen.len() > 4, "workload produced too few distinct traces");
    }

    #[test]
    fn trace_ends_at_third_branch() {
        let mut b = builder();
        for _ in 0..300 {
            let t = b.next_trace();
            let branches = t.uops.iter().filter(|u| u.is_branch()).count();
            if branches == 3 {
                assert!(
                    t.uops.last().unwrap().is_branch(),
                    "3rd branch must end trace"
                );
            }
        }
    }
}
