//! Reorder buffers: the centralized baseline and the distributed version
//! with the `R`/`L` commit walk of §3.1.2 (Figs. 6–8).
//!
//! In the distributed organization each frontend partition owns a partial
//! reorder buffer holding only the instructions steered to its backends.
//! Every entry carries a *ready* bit `R` and a *location* field `L` naming
//! the partition that holds the next instruction in program order; a special
//! head register names the partition holding the oldest instruction. Commit
//! selection walks `R`/`L` pairs until the bandwidth is exhausted or a
//! not-ready instruction is found.

use std::collections::VecDeque;

/// One reorder-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobEntry {
    /// Program-order sequence number of the instruction.
    pub seq: u64,
    /// Ready-to-commit bit (`R`).
    pub ready: bool,
    /// Partition holding the next instruction in program order (`L`);
    /// `None` until the following instruction is dispatched.
    pub next: Option<u8>,
}

/// Error returned when pushing into a full reorder buffer (partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobFullError {
    /// The partition that was full.
    pub partition: usize,
}

impl std::fmt::Display for RobFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reorder buffer partition {} is full", self.partition)
    }
}

impl std::error::Error for RobFullError {}

/// A reorder buffer distributed over one or more partitions.
///
/// With a single partition this degenerates exactly to the centralized
/// reorder buffer of Fig. 6 (the `L` field always names partition 0 and the
/// walk reduces to "commit ready instructions from the head").
///
/// # Examples
///
/// ```
/// use distfront_uarch::rob::DistributedRob;
///
/// let mut rob = DistributedRob::new(2, 4); // 2 partitions x 4 entries
/// rob.push(0, 0).unwrap(); // seq 0 -> partition 0
/// rob.push(1, 1).unwrap(); // seq 1 -> partition 1
/// rob.mark_ready(0);
/// rob.mark_ready(1);
/// let committed = rob.commit(8);
/// assert_eq!(committed, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct DistributedRob {
    partitions: Vec<VecDeque<RobEntry>>,
    capacity_per_partition: usize,
    /// Partition holding the oldest in-flight instruction.
    head: u8,
    /// Partition that received the most recent push (its entry's `L` field
    /// is patched by the next push).
    last_pushed: Option<u8>,
    /// Total entries currently in flight.
    len: usize,
    /// Cumulative reorder-buffer read operations (commit walks).
    reads: u64,
    /// Cumulative reorder-buffer writes (dispatches + `L`-field patches).
    writes: u64,
}

impl DistributedRob {
    /// Creates a reorder buffer with `partitions` partitions of
    /// `capacity_per_partition` entries each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or `partitions > 255`.
    pub fn new(partitions: usize, capacity_per_partition: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        assert!(partitions <= 255, "too many partitions");
        assert!(capacity_per_partition > 0, "capacity must be positive");
        DistributedRob {
            partitions: vec![VecDeque::with_capacity(capacity_per_partition); partitions],
            capacity_per_partition,
            head: 0,
            last_pushed: None,
            len: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Entries in flight across all partitions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no instruction is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries in flight in one partition.
    pub fn partition_len(&self, partition: usize) -> usize {
        self.partitions[partition].len()
    }

    /// `true` if `partition` cannot accept another instruction.
    pub fn is_partition_full(&self, partition: usize) -> bool {
        self.partitions[partition].len() >= self.capacity_per_partition
    }

    /// Appends the instruction `seq` (next in program order) to `partition`.
    ///
    /// The previous instruction's `L` field is patched to point here, as the
    /// dispatch hardware does.
    ///
    /// # Errors
    ///
    /// Returns [`RobFullError`] if the partition is full.
    pub fn push(&mut self, seq: u64, partition: usize) -> Result<(), RobFullError> {
        if self.is_partition_full(partition) {
            return Err(RobFullError { partition });
        }
        if let Some(prev) = self.last_pushed {
            if let Some(e) = self.partitions[usize::from(prev)].back_mut() {
                e.next = Some(partition as u8);
                self.writes += 1;
            }
        } else {
            // Very first in-flight instruction defines the commit head.
            self.head = partition as u8;
        }
        self.partitions[partition].push_back(RobEntry {
            seq,
            ready: false,
            next: None,
        });
        self.writes += 1;
        self.last_pushed = Some(partition as u8);
        self.len += 1;
        Ok(())
    }

    /// Marks instruction `seq` ready to commit (sets its `R` bit).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    pub fn mark_ready(&mut self, seq: u64) {
        for p in &mut self.partitions {
            if let Some(e) = p.iter_mut().find(|e| e.seq == seq) {
                e.ready = true;
                return;
            }
        }
        panic!("sequence {seq} not in flight");
    }

    /// Performs the §3.1.2 selection walk and returns the sequence numbers
    /// that *would* commit this cycle, without removing them.
    ///
    /// Starting from the head partition the walk inspects `R`/`L` pairs:
    /// a not-ready entry stops it; a ready entry is selected and the walk
    /// continues in the partition its `L` field names, until `bandwidth`
    /// instructions have been selected.
    pub fn select_commit(&self, bandwidth: usize) -> Vec<u64> {
        let mut selected = Vec::with_capacity(bandwidth);
        let mut cursors = vec![0usize; self.partitions.len()];
        let mut current = usize::from(self.head);
        while selected.len() < bandwidth {
            let part = &self.partitions[current];
            let Some(entry) = part.get(cursors[current]) else {
                break; // ran past the youngest instruction in this partition
            };
            if !entry.ready {
                break;
            }
            selected.push(entry.seq);
            cursors[current] += 1;
            match entry.next {
                Some(next) => current = usize::from(next),
                None => break, // youngest in-flight instruction
            }
        }
        selected
    }

    /// Commits up to `bandwidth` instructions, removing them, advancing the
    /// head register, and accounting the reorder-buffer reads of the walk
    /// (the `C` oldest `R`/`L` fields of *each* partition are read, then the
    /// selected entries themselves).
    pub fn commit(&mut self, bandwidth: usize) -> Vec<u64> {
        // R/L pre-read of up to `bandwidth` oldest entries per partition.
        for p in &self.partitions {
            self.reads += p.len().min(bandwidth) as u64;
        }
        let selected = self.select_commit(bandwidth);
        self.reads += selected.len() as u64;
        for &seq in &selected {
            let current = usize::from(self.head);
            let entry = self.partitions[current]
                .pop_front()
                .expect("selected entry vanished");
            debug_assert_eq!(entry.seq, seq, "commit out of program order");
            self.len -= 1;
            match entry.next {
                Some(next) => self.head = next,
                None => self.last_pushed = None, // buffer drained
            }
        }
        selected
    }

    /// Cumulative reorder-buffer read operations.
    pub fn read_ops(&self) -> u64 {
        self.reads
    }

    /// Cumulative reorder-buffer write operations.
    pub fn write_ops(&self) -> u64 {
        self.writes
    }

    /// Takes and resets the read/write counters.
    pub fn take_ops(&mut self) -> (u64, u64) {
        let out = (self.reads, self.writes);
        self.reads = 0;
        self.writes = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the Fig. 8 example: commit bandwidth 4, two partitions.
    ///
    /// Program order: I0-0, I0-1, I1-0, I0-2, I0-3, I0-4, I1-1, ...
    /// with I0-3 not ready. Expected selection: I0-0, I0-1, I1-0, I0-2.
    #[test]
    fn figure8_walk() {
        let mut rob = DistributedRob::new(2, 8);
        // seq numbers encode the figure's names: I<p>-<i>.
        let order = [
            (0u64, 0usize), // I0-0
            (1, 0),         // I0-1
            (10, 1),        // I1-0
            (2, 0),         // I0-2
            (3, 0),         // I0-3 (not ready)
            (4, 0),         // I0-4 (not ready in figure)
            (11, 1),        // I1-1
            (12, 1),        // I1-2
            (13, 1),        // I1-3 (not ready)
            (14, 1),        // I1-4
        ];
        for (seq, p) in order {
            rob.push(seq, p).unwrap();
        }
        for seq in [0, 1, 10, 2, 11, 12, 14] {
            rob.mark_ready(seq);
        }
        assert_eq!(rob.select_commit(4), vec![0, 1, 10, 2]);
        // The walk stops at not-ready I0-3 even with spare bandwidth.
        assert_eq!(rob.select_commit(8), vec![0, 1, 10, 2]);
    }

    #[test]
    fn centralized_degenerates_to_fifo() {
        let mut rob = DistributedRob::new(1, 16);
        for seq in 0..10 {
            rob.push(seq, 0).unwrap();
        }
        for seq in [0, 1, 2, 4] {
            rob.mark_ready(seq);
        }
        // Stops at the not-ready seq 3.
        assert_eq!(rob.commit(8), vec![0, 1, 2]);
        rob.mark_ready(3);
        assert_eq!(rob.commit(2), vec![3, 4]);
        assert_eq!(rob.len(), 5);
    }

    #[test]
    fn bandwidth_limits_commit() {
        let mut rob = DistributedRob::new(1, 16);
        for seq in 0..8 {
            rob.push(seq, 0).unwrap();
            rob.mark_ready(seq);
        }
        assert_eq!(rob.commit(4), vec![0, 1, 2, 3]);
        assert_eq!(rob.commit(4), vec![4, 5, 6, 7]);
        assert!(rob.is_empty());
    }

    #[test]
    fn head_register_follows_commits() {
        let mut rob = DistributedRob::new(2, 8);
        rob.push(0, 1).unwrap(); // oldest lives in partition 1
        rob.push(1, 0).unwrap();
        rob.push(2, 1).unwrap();
        rob.mark_ready(0);
        rob.mark_ready(1);
        rob.mark_ready(2);
        assert_eq!(rob.commit(1), vec![0]);
        assert_eq!(rob.commit(1), vec![1]);
        assert_eq!(rob.commit(1), vec![2]);
    }

    #[test]
    fn partition_capacity_enforced() {
        let mut rob = DistributedRob::new(2, 2);
        rob.push(0, 0).unwrap();
        rob.push(1, 0).unwrap();
        let err = rob.push(2, 0).unwrap_err();
        assert_eq!(err.partition, 0);
        // The other partition still has room.
        rob.push(2, 1).unwrap();
    }

    #[test]
    fn commit_across_empty_partition_boundary() {
        // All instructions in one partition of a two-partition ROB.
        let mut rob = DistributedRob::new(2, 8);
        for seq in 0..4 {
            rob.push(seq, 1).unwrap();
            rob.mark_ready(seq);
        }
        assert_eq!(rob.commit(8), vec![0, 1, 2, 3]);
    }

    #[test]
    fn youngest_entry_has_no_next() {
        let mut rob = DistributedRob::new(2, 8);
        rob.push(0, 0).unwrap();
        rob.mark_ready(0);
        // Walk must not run off the end.
        assert_eq!(rob.select_commit(8), vec![0]);
        assert_eq!(rob.commit(8), vec![0]);
        // Buffer reusable after draining.
        rob.push(1, 1).unwrap();
        rob.mark_ready(1);
        assert_eq!(rob.commit(8), vec![1]);
    }

    #[test]
    fn read_write_ops_accounted() {
        let mut rob = DistributedRob::new(2, 8);
        rob.push(0, 0).unwrap(); // 1 write
        rob.push(1, 1).unwrap(); // 1 write + 1 L-field patch
        assert_eq!(rob.write_ops(), 3);
        rob.mark_ready(0);
        rob.mark_ready(1);
        rob.commit(8);
        // Pre-reads: min(len, bw) per partition (1+1) + 2 selected reads.
        assert_eq!(rob.read_ops(), 4);
        let (r, w) = rob.take_ops();
        assert_eq!((r, w), (4, 3));
        assert_eq!(rob.read_ops(), 0);
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn mark_ready_unknown_panics() {
        let mut rob = DistributedRob::new(1, 4);
        rob.mark_ready(42);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Instructions always commit in exact program order, regardless of
        /// steering pattern, readiness order, or commit bandwidth.
        #[test]
        fn commits_in_program_order(
            parts in proptest::collection::vec(0usize..3, 1..120),
            bw in 1usize..9,
        ) {
            let mut rob = DistributedRob::new(3, 64);
            let mut pushed = Vec::new();
            for (seq, &p) in parts.iter().enumerate() {
                if rob.push(seq as u64, p).is_ok() {
                    pushed.push(seq as u64);
                }
            }
            // Mark ready in a scrambled order.
            let mut order = pushed.clone();
            order.reverse();
            let mut committed = Vec::new();
            for seq in order {
                rob.mark_ready(seq);
                committed.extend(rob.commit(bw));
            }
            loop {
                let c = rob.commit(bw);
                if c.is_empty() { break; }
                committed.extend(c);
            }
            prop_assert_eq!(committed, pushed);
            prop_assert!(rob.is_empty());
        }

        /// select_commit never exceeds the bandwidth and never selects a
        /// not-ready instruction.
        #[test]
        fn selection_respects_bandwidth(
            parts in proptest::collection::vec(0usize..2, 1..60),
            ready_mask in proptest::collection::vec(proptest::bool::ANY, 60),
            bw in 1usize..9,
        ) {
            let mut rob = DistributedRob::new(2, 64);
            for (seq, &p) in parts.iter().enumerate() {
                rob.push(seq as u64, p).unwrap();
                if ready_mask[seq] {
                    rob.mark_ready(seq as u64);
                }
            }
            let sel = rob.select_commit(bw);
            prop_assert!(sel.len() <= bw);
            for &s in &sel {
                prop_assert!(ready_mask[s as usize]);
            }
            // Selection is a program-order prefix of the ready run.
            for (i, &s) in sel.iter().enumerate() {
                prop_assert_eq!(s, i as u64);
            }
        }
    }
}
