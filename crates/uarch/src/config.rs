//! Processor configuration (Table 1 of the paper).
//!
//! [`ProcessorConfig::hpca05_baseline`] reproduces the paper's baseline: an
//! 8-wide frontend feeding four backend clusters, each with its own issue
//! queues, register files, memory order buffer and L1 data cache, connected
//! by bidirectional point-to-point links and shared memory/disambiguation
//! buses.

use crate::steer::SteeringPolicy;
use distfront_cache::l1d::L1Config;
use distfront_cache::trace_cache::TraceCacheConfig;
use distfront_cache::ul2::Ul2Config;

/// How the rename/commit logic is organized (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendMode {
    /// Monolithic rename table and reorder buffer (the baseline).
    Centralized,
    /// RAT and ROB split across `frontends` partitions, each feeding
    /// `backends / frontends` backend clusters.
    Distributed {
        /// Number of frontend partitions (the paper evaluates 2).
        frontends: usize,
    },
}

impl FrontendMode {
    /// Number of frontend partitions.
    pub fn partitions(self) -> usize {
        match self {
            FrontendMode::Centralized => 1,
            FrontendMode::Distributed { frontends } => frontends,
        }
    }

    /// `true` for [`FrontendMode::Distributed`].
    pub fn is_distributed(self) -> bool {
        matches!(self, FrontendMode::Distributed { .. })
    }
}

/// Complete static configuration of the simulated processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorConfig {
    /// Micro-ops fetched per cycle (Table 1: 8).
    pub fetch_width: u32,
    /// Micro-ops dispatched per cycle (Table 1: 8).
    pub dispatch_width: u32,
    /// Micro-ops committed per cycle (Table 1: 8).
    pub commit_width: u32,
    /// Trace-cache fetch-to-dispatch latency in cycles (Table 1: 4).
    pub fetch_to_dispatch: u32,
    /// Decode + rename + steer pipeline length in cycles (Table 1: 8).
    pub decode_rename_steer: u32,
    /// Dispatch latency into a backend in cycles (Table 1: 10).
    pub dispatch_latency: u32,
    /// Number of backend clusters (the paper's baseline: 4).
    pub backends: usize,
    /// Frontend organization under evaluation.
    pub frontend_mode: FrontendMode,
    /// Extra commit latency for the distributed reorder buffer (§3.1.2
    /// adds 1 cycle; 0 for the centralized baseline).
    pub distributed_commit_penalty: u32,
    /// Total reorder-buffer capacity in micro-ops (split evenly across
    /// partitions when distributed).
    pub rob_entries: usize,
    /// Integer issue-queue entries per backend (Table 1: 40).
    pub int_queue: usize,
    /// Floating-point issue-queue entries per backend (Table 1: 40).
    pub fp_queue: usize,
    /// Copy issue-queue entries per backend (Table 1: 40).
    pub copy_queue: usize,
    /// Memory order buffer entries per backend (Table 1: 96).
    pub mem_queue: usize,
    /// Issue bandwidth per queue per backend in micro-ops/cycle (Table 1: 1).
    pub issue_per_queue: u32,
    /// Integer physical registers per backend (Table 1: 160).
    pub int_regs: usize,
    /// Floating-point physical registers per backend (Table 1: 160).
    pub fp_regs: usize,
    /// Point-to-point link latency per hop in cycles (Table 1: 1).
    pub hop_latency: u32,
    /// Memory/disambiguation bus latency in cycles (Table 1: 4 + 1 arbiter).
    pub bus_latency: u32,
    /// Number of memory buses (Table 1: 2).
    pub memory_buses: usize,
    /// Trace-cache configuration.
    pub trace_cache: TraceCacheConfig,
    /// Per-cluster L1 data-cache configuration.
    pub l1d: L1Config,
    /// Unified L2 configuration.
    pub ul2: Ul2Config,
    /// Clock frequency in Hz (the paper assumes 10 GHz at 65 nm).
    pub frequency_hz: f64,
    /// Steering heuristic for the dispatch stage.
    pub steering: SteeringPolicy,
}

impl ProcessorConfig {
    /// The paper's baseline configuration (Table 1): quad-cluster backend,
    /// centralized rename/commit, two-banked trace cache with no thermal
    /// management.
    pub fn hpca05_baseline() -> Self {
        ProcessorConfig {
            fetch_width: 8,
            dispatch_width: 8,
            commit_width: 8,
            fetch_to_dispatch: 4,
            decode_rename_steer: 8,
            dispatch_latency: 10,
            backends: 4,
            frontend_mode: FrontendMode::Centralized,
            distributed_commit_penalty: 0,
            rob_entries: 256,
            int_queue: 40,
            fp_queue: 40,
            copy_queue: 40,
            mem_queue: 96,
            issue_per_queue: 1,
            int_regs: 160,
            fp_regs: 160,
            hop_latency: 1,
            bus_latency: 5, // 4-cycle bus + 1-cycle arbiter
            memory_buses: 2,
            trace_cache: TraceCacheConfig::baseline_two_banks(),
            l1d: L1Config::table1(),
            ul2: Ul2Config::table1(),
            frequency_hz: 10e9,
            steering: SteeringPolicy::DependenceBalance,
        }
    }

    /// Baseline with the distributed rename/commit technique enabled
    /// (bi-clustered frontend, quad-clustered backend, +1 commit cycle).
    pub fn distributed_rename_commit() -> Self {
        ProcessorConfig {
            frontend_mode: FrontendMode::Distributed { frontends: 2 },
            distributed_commit_penalty: 1,
            ..Self::hpca05_baseline()
        }
    }

    /// Backends fed by each frontend partition.
    pub fn backends_per_frontend(&self) -> usize {
        self.backends / self.frontend_mode.partitions()
    }

    /// The frontend partition feeding backend `backend`.
    ///
    /// With the Fig. 3 organization, frontend 0 feeds backends 0 and 1 and
    /// frontend 1 feeds backends 2 and 3.
    pub fn frontend_of(&self, backend: usize) -> usize {
        backend / self.backends_per_frontend()
    }

    /// Reorder-buffer entries per partition.
    pub fn rob_per_partition(&self) -> usize {
        self.rob_entries / self.frontend_mode.partitions()
    }

    /// Mispredict redirect penalty: the front pipeline must refill.
    pub fn mispredict_penalty(&self) -> u32 {
        self.fetch_to_dispatch + self.decode_rename_steer
    }

    /// Hop distance between two backends on the bidirectional point-to-point
    /// link (Table 1: 1 cycle per hop, 2 from side to side of the chip).
    pub fn hops_between(&self, a: usize, b: usize) -> u32 {
        // Clusters sit in a row pairwise: |0 1 2 3|, bidirectional link.
        let dist = a.abs_diff(b) as u32;
        // Side-to-side (0 <-> 3) costs 2 per Table 1.
        dist.min(2) * self.hop_latency
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant, e.g. a
    /// backend count that is not divisible by the frontend count.
    pub fn validate(&self) -> Result<(), String> {
        if self.backends == 0 {
            return Err("no backend clusters".into());
        }
        let parts = self.frontend_mode.partitions();
        if parts == 0 {
            return Err("no frontend partitions".into());
        }
        if !self.backends.is_multiple_of(parts) {
            return Err(format!(
                "{} backends not divisible by {parts} frontends",
                self.backends
            ));
        }
        if !self.rob_entries.is_multiple_of(parts) {
            return Err(format!(
                "{} ROB entries not divisible by {parts} partitions",
                self.rob_entries
            ));
        }
        if self.fetch_width == 0 || self.dispatch_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be positive".into());
        }
        if self.frequency_hz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        Ok(())
    }
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        Self::hpca05_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = ProcessorConfig::hpca05_baseline();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.backends, 4);
        assert_eq!(c.int_queue, 40);
        assert_eq!(c.mem_queue, 96);
        assert_eq!(c.int_regs, 160);
        assert_eq!(c.trace_cache.total_uops, 32 * 1024);
        assert_eq!(c.ul2.hit_latency, 12);
        assert_eq!(c.l1d.capacity, 16 << 10);
        c.validate().unwrap();
    }

    #[test]
    fn distributed_config() {
        let c = ProcessorConfig::distributed_rename_commit();
        assert_eq!(c.frontend_mode.partitions(), 2);
        assert_eq!(c.backends_per_frontend(), 2);
        assert_eq!(c.distributed_commit_penalty, 1);
        assert_eq!(c.rob_per_partition(), 128);
        c.validate().unwrap();
    }

    #[test]
    fn frontend_of_fig3_layout() {
        let c = ProcessorConfig::distributed_rename_commit();
        assert_eq!(c.frontend_of(0), 0);
        assert_eq!(c.frontend_of(1), 0);
        assert_eq!(c.frontend_of(2), 1);
        assert_eq!(c.frontend_of(3), 1);
    }

    #[test]
    fn centralized_has_one_partition() {
        let c = ProcessorConfig::hpca05_baseline();
        assert_eq!(c.frontend_mode.partitions(), 1);
        assert!(!c.frontend_mode.is_distributed());
        for b in 0..4 {
            assert_eq!(c.frontend_of(b), 0);
        }
    }

    #[test]
    fn hops_clamped_side_to_side() {
        let c = ProcessorConfig::hpca05_baseline();
        assert_eq!(c.hops_between(0, 0), 0);
        assert_eq!(c.hops_between(0, 1), 1);
        assert_eq!(c.hops_between(1, 3), 2);
        assert_eq!(c.hops_between(0, 3), 2, "side-to-side costs 2");
        assert_eq!(c.hops_between(3, 0), 2, "link is bidirectional");
    }

    #[test]
    fn validate_catches_bad_partitioning() {
        let mut c = ProcessorConfig::hpca05_baseline();
        c.frontend_mode = FrontendMode::Distributed { frontends: 3 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn mispredict_penalty_is_front_pipeline() {
        let c = ProcessorConfig::hpca05_baseline();
        assert_eq!(c.mispredict_penalty(), 12);
    }
}
