//! Per-functional-block activity counters.
//!
//! The paper's power model (§2.1) associates an activity counter with each
//! functional block and multiplies it by an energy-per-operation value.
//! [`ActivityCounters`] is the counter half of that model; the energy half
//! lives in `distfront-power`.

/// Maximum number of backend clusters the counters are sized for.
pub const MAX_BACKENDS: usize = 8;
/// Maximum number of frontend partitions.
pub const MAX_PARTITIONS: usize = 4;
/// Maximum number of physical trace-cache banks.
pub const MAX_TC_BANKS: usize = 8;

/// Activity of one backend cluster over an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendActivity {
    /// Micro-ops written into the integer issue queue.
    pub iq_writes: u64,
    /// Micro-ops issued from the integer issue queue.
    pub iq_issues: u64,
    /// Micro-ops written into the FP issue queue.
    pub fpq_writes: u64,
    /// Micro-ops issued from the FP issue queue.
    pub fpq_issues: u64,
    /// Copy micro-ops handled by the copy queue.
    pub copy_ops: u64,
    /// Memory-order-buffer allocations (loads, plus a slot per store in
    /// every cluster for disambiguation).
    pub mob_allocs: u64,
    /// Associative MOB searches (one per executed load).
    pub mob_searches: u64,
    /// Integer register-file reads.
    pub irf_reads: u64,
    /// Integer register-file writes.
    pub irf_writes: u64,
    /// FP register-file reads.
    pub fprf_reads: u64,
    /// FP register-file writes.
    pub fprf_writes: u64,
    /// Integer functional-unit operations.
    pub int_fu_ops: u64,
    /// FP functional-unit operations.
    pub fp_fu_ops: u64,
    /// L1 data-cache accesses.
    pub dl1_accesses: u64,
    /// Data-TLB accesses.
    pub dtlb_accesses: u64,
}

impl BackendActivity {
    /// Sum of all events (used in sanity tests).
    pub fn total(&self) -> u64 {
        self.iq_writes
            + self.iq_issues
            + self.fpq_writes
            + self.fpq_issues
            + self.copy_ops
            + self.mob_allocs
            + self.mob_searches
            + self.irf_reads
            + self.irf_writes
            + self.fprf_reads
            + self.fprf_writes
            + self.int_fu_ops
            + self.fp_fu_ops
            + self.dl1_accesses
            + self.dtlb_accesses
    }
}

/// Activity of every block of the processor over an interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Cycles covered by this interval.
    pub cycles: u64,
    /// Micro-ops committed in this interval.
    pub committed_uops: u64,
    /// Trace-cache accesses per physical bank.
    pub tc_bank_accesses: Vec<u64>,
    /// Trace-cache line builds (misses serviced from UL2).
    pub tc_fills: u64,
    /// Branch-predictor lookups and updates.
    pub bp_accesses: u64,
    /// Instruction-TLB accesses (one per trace fetch).
    pub itlb_accesses: u64,
    /// Micro-ops decoded.
    pub decoded_uops: u64,
    /// Rename-table reads per partition (source lookups).
    pub rat_reads: Vec<u64>,
    /// Rename-table writes per partition (destination mappings).
    pub rat_writes: Vec<u64>,
    /// Availability-table lookups at the steering stage.
    pub steer_lookups: u64,
    /// Reorder-buffer writes per partition (dispatch).
    pub rob_writes: Vec<u64>,
    /// Reorder-buffer reads per partition (full-entry commit reads).
    pub rob_reads: Vec<u64>,
    /// Narrow `L`-field patch writes per partition (§3.1.2; a few bits,
    /// far cheaper than a full entry write).
    pub rob_rl_writes: Vec<u64>,
    /// Narrow `R`/`L` pre-reads of the distributed commit walk.
    pub rob_rl_reads: Vec<u64>,
    /// Copy requests sent between frontend partitions (§3.1.1).
    pub copy_requests: u64,
    /// Per-backend activity.
    pub backends: Vec<BackendActivity>,
    /// UL2 accesses.
    pub ul2_accesses: u64,
    /// Memory-bus transfers (L1 misses and trace builds).
    pub bus_transfers: u64,
    /// Disambiguation-bus broadcasts (one per store address).
    pub disamb_broadcasts: u64,
    /// Point-to-point link flits (copy value transfers, weighted by hops).
    pub link_flits: u64,
}

impl ActivityCounters {
    /// Creates zeroed counters for a machine with `partitions` frontend
    /// partitions, `backends` clusters and `tc_banks` physical banks.
    pub fn new(partitions: usize, backends: usize, tc_banks: usize) -> Self {
        ActivityCounters {
            cycles: 0,
            committed_uops: 0,
            tc_bank_accesses: vec![0; tc_banks],
            tc_fills: 0,
            bp_accesses: 0,
            itlb_accesses: 0,
            decoded_uops: 0,
            rat_reads: vec![0; partitions],
            rat_writes: vec![0; partitions],
            steer_lookups: 0,
            rob_writes: vec![0; partitions],
            rob_reads: vec![0; partitions],
            rob_rl_writes: vec![0; partitions],
            rob_rl_reads: vec![0; partitions],
            copy_requests: 0,
            backends: vec![BackendActivity::default(); backends],
            ul2_accesses: 0,
            bus_transfers: 0,
            disamb_broadcasts: 0,
            link_flits: 0,
        }
    }

    /// Number of frontend partitions these counters describe.
    pub fn partitions(&self) -> usize {
        self.rat_reads.len()
    }

    /// Resets every counter to zero, keeping the shape.
    pub fn reset(&mut self) {
        *self = ActivityCounters::new(
            self.rat_reads.len(),
            self.backends.len(),
            self.tc_bank_accesses.len(),
        );
    }

    /// Takes the current values, leaving zeros behind.
    pub fn take(&mut self) -> ActivityCounters {
        let copy = self.clone();
        self.reset();
        copy
    }

    /// Adds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &ActivityCounters) {
        assert_eq!(self.partitions(), other.partitions());
        assert_eq!(self.backends.len(), other.backends.len());
        assert_eq!(self.tc_bank_accesses.len(), other.tc_bank_accesses.len());
        self.cycles += other.cycles;
        self.committed_uops += other.committed_uops;
        for (a, b) in self
            .tc_bank_accesses
            .iter_mut()
            .zip(&other.tc_bank_accesses)
        {
            *a += b;
        }
        self.tc_fills += other.tc_fills;
        self.bp_accesses += other.bp_accesses;
        self.itlb_accesses += other.itlb_accesses;
        self.decoded_uops += other.decoded_uops;
        for (a, b) in self.rat_reads.iter_mut().zip(&other.rat_reads) {
            *a += b;
        }
        for (a, b) in self.rat_writes.iter_mut().zip(&other.rat_writes) {
            *a += b;
        }
        self.steer_lookups += other.steer_lookups;
        for (a, b) in self.rob_writes.iter_mut().zip(&other.rob_writes) {
            *a += b;
        }
        for (a, b) in self.rob_reads.iter_mut().zip(&other.rob_reads) {
            *a += b;
        }
        for (a, b) in self.rob_rl_writes.iter_mut().zip(&other.rob_rl_writes) {
            *a += b;
        }
        for (a, b) in self.rob_rl_reads.iter_mut().zip(&other.rob_rl_reads) {
            *a += b;
        }
        self.copy_requests += other.copy_requests;
        for (a, b) in self.backends.iter_mut().zip(&other.backends) {
            a.iq_writes += b.iq_writes;
            a.iq_issues += b.iq_issues;
            a.fpq_writes += b.fpq_writes;
            a.fpq_issues += b.fpq_issues;
            a.copy_ops += b.copy_ops;
            a.mob_allocs += b.mob_allocs;
            a.mob_searches += b.mob_searches;
            a.irf_reads += b.irf_reads;
            a.irf_writes += b.irf_writes;
            a.fprf_reads += b.fprf_reads;
            a.fprf_writes += b.fprf_writes;
            a.int_fu_ops += b.int_fu_ops;
            a.fp_fu_ops += b.fp_fu_ops;
            a.dl1_accesses += b.dl1_accesses;
            a.dtlb_accesses += b.dtlb_accesses;
        }
        self.ul2_accesses += other.ul2_accesses;
        self.bus_transfers += other.bus_transfers;
        self.disamb_broadcasts += other.disamb_broadcasts;
        self.link_flits += other.link_flits;
    }

    /// Committed micro-ops per cycle for this interval (0 for an empty
    /// interval).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let a = ActivityCounters::new(2, 4, 3);
        assert_eq!(a.cycles, 0);
        assert_eq!(a.rat_reads, vec![0, 0]);
        assert_eq!(a.backends.len(), 4);
        assert_eq!(a.tc_bank_accesses.len(), 3);
        assert_eq!(a.ipc(), 0.0);
    }

    #[test]
    fn take_resets() {
        let mut a = ActivityCounters::new(1, 4, 2);
        a.cycles = 100;
        a.committed_uops = 250;
        a.backends[2].dl1_accesses = 9;
        let t = a.take();
        assert_eq!(t.cycles, 100);
        assert!((t.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(a.cycles, 0);
        assert_eq!(a.backends[2].dl1_accesses, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ActivityCounters::new(2, 4, 3);
        let mut b = ActivityCounters::new(2, 4, 3);
        a.rat_reads[0] = 5;
        b.rat_reads[0] = 7;
        b.rob_writes[1] = 3;
        b.backends[0].int_fu_ops = 11;
        b.tc_bank_accesses[2] = 4;
        a.merge(&b);
        assert_eq!(a.rat_reads[0], 12);
        assert_eq!(a.rob_writes[1], 3);
        assert_eq!(a.backends[0].int_fu_ops, 11);
        assert_eq!(a.tc_bank_accesses[2], 4);
    }

    #[test]
    #[should_panic]
    fn merge_shape_mismatch_panics() {
        let mut a = ActivityCounters::new(1, 4, 2);
        let b = ActivityCounters::new(2, 4, 2);
        a.merge(&b);
    }

    #[test]
    fn backend_total_counts_everything() {
        let b = BackendActivity {
            iq_writes: 1,
            irf_reads: 2,
            dl1_accesses: 3,
            ..BackendActivity::default()
        };
        assert_eq!(b.total(), 6);
    }
}
