//! The centralized steering unit.
//!
//! Steering decides the destination backend for each micro-op using the
//! availability table (which backends already hold the sources — sending an
//! instruction there avoids copies) balanced against backend load. The
//! paper keeps this stage centralized in both frontend organizations.

use crate::rename::RenameUnit;
use distfront_trace::uop::MicroOp;

/// Steering heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteeringPolicy {
    /// Prefer the backend holding the most source operands; break ties
    /// toward the least-loaded backend. This is the paper-era standard for
    /// clustered machines and the default.
    #[default]
    DependenceBalance,
    /// Ignore dependences entirely (ablation baseline).
    RoundRobin,
}

/// Score bonus for a backend inside the preferred range, in the same units
/// as the dependence-match weight (one match = 6). Strong enough to pull
/// single-dependence micro-ops toward the preferred clusters, weak enough
/// that double-dependence chains stay where their values live.
const PREFERRED_BONUS: i64 = 9;

/// The steering unit.
///
/// # Examples
///
/// ```
/// use distfront_uarch::rename::RenameUnit;
/// use distfront_uarch::steer::{Steerer, SteeringPolicy};
/// use distfront_trace::uop::{ArchReg, MicroOp, UopKind};
///
/// let ru = RenameUnit::new(4, 1, 160, 160);
/// let mut steerer = Steerer::new(4, SteeringPolicy::DependenceBalance);
/// let uop = MicroOp::reg_op(0, UopKind::IntAlu, ArchReg::int(1), [None, None]);
/// let backend = steerer.steer(&uop, &ru);
/// assert!(backend < 4);
/// ```
#[derive(Debug, Clone)]
pub struct Steerer {
    policy: SteeringPolicy,
    /// Estimated in-flight micro-ops per backend.
    in_flight: Vec<i64>,
    /// Half-open backend range favoured by the thermal-migration control
    /// (`None` = unbiased).
    preferred: Option<(usize, usize)>,
    rr: usize,
}

impl Steerer {
    /// Creates a steering unit for `backends` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is zero.
    pub fn new(backends: usize, policy: SteeringPolicy) -> Self {
        assert!(backends > 0, "need at least one backend");
        Steerer {
            policy,
            in_flight: vec![0; backends],
            preferred: None,
            rr: 0,
        }
    }

    /// Biases [`SteeringPolicy::DependenceBalance`] toward the backends in
    /// `range` (half-open), or removes the bias with `None`. The front-end
    /// activity-migration DTM policy uses this to drain work away from a
    /// hot frontend partition's clusters.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn set_preferred(&mut self, range: Option<(usize, usize)>) {
        if let Some((start, end)) = range {
            assert!(start < end && end <= self.in_flight.len(), "bad range");
        }
        self.preferred = range;
    }

    /// The backend range currently favoured, if any.
    pub fn preferred(&self) -> Option<(usize, usize)> {
        self.preferred
    }

    /// Chooses the destination backend for `uop`.
    pub fn steer(&mut self, uop: &MicroOp, rename: &RenameUnit) -> usize {
        let n = self.in_flight.len();
        let choice = match self.policy {
            SteeringPolicy::RoundRobin => {
                self.rr = (self.rr + 1) % n;
                self.rr
            }
            SteeringPolicy::DependenceBalance => {
                let min_load = *self.in_flight.iter().min().expect("non-empty");
                // Rotate tie-breaking so score ties spread over all
                // backends instead of systematically favouring backend 0
                // (which would skew one frontend partition hot).
                self.rr = (self.rr + 1) % n;
                let rr = self.rr;
                (0..n)
                    .max_by_key(|&b| {
                        let matches =
                            uop.sources().filter(|&s| rename.is_available(s, b)).count() as i64;
                        // Dependence matches dominate unless the backend is
                        // over-loaded (each match worth 6 in-flight
                        // micro-ops of imbalance).
                        let balance = -(self.in_flight[b] - min_load);
                        let bias = match self.preferred {
                            Some((start, end)) if (start..end).contains(&b) => PREFERRED_BONUS,
                            _ => 0,
                        };
                        (
                            matches * 6 + balance + bias,
                            std::cmp::Reverse((b + n - rr) % n),
                        )
                    })
                    .expect("non-empty")
            }
        };
        self.in_flight[choice] += 1;
        choice
    }

    /// Notifies the steerer that a micro-op retired from `backend`.
    pub fn note_retire(&mut self, backend: usize) {
        self.in_flight[backend] -= 1;
        debug_assert!(self.in_flight[backend] >= 0, "retire underflow");
    }

    /// Estimated in-flight micro-ops per backend.
    pub fn loads(&self) -> &[i64] {
        &self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfront_trace::uop::{ArchReg, UopKind};

    fn alu(seq: u64, dst: u8, src: u8) -> MicroOp {
        MicroOp::reg_op(
            seq,
            UopKind::IntAlu,
            ArchReg::int(dst),
            [Some(ArchReg::int(src)), None],
        )
    }

    #[test]
    fn round_robin_cycles() {
        let ru = RenameUnit::new(4, 1, 160, 160);
        let mut s = Steerer::new(4, SteeringPolicy::RoundRobin);
        let picks: Vec<_> = (0..8).map(|i| s.steer(&alu(i, 1, 2), &ru)).collect();
        assert_eq!(picks, vec![1, 2, 3, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn dependence_follows_producer() {
        let mut ru = RenameUnit::new(4, 1, 160, 160);
        let mut s = Steerer::new(4, SteeringPolicy::DependenceBalance);
        // Produce r1 on backend 2 (write invalidates other copies).
        ru.rename(&alu(0, 1, 2), 2).unwrap();
        // A consumer of r1 should be steered to backend 2.
        let pick = s.steer(&alu(1, 3, 1), &ru);
        assert_eq!(pick, 2);
    }

    #[test]
    fn balance_spreads_independent_work() {
        let ru = RenameUnit::new(4, 1, 160, 160);
        let mut s = Steerer::new(4, SteeringPolicy::DependenceBalance);
        // All sources boot available everywhere: matches tie, so load
        // balancing must distribute.
        for i in 0..40 {
            s.steer(&alu(i, 1, 2), &ru);
        }
        let max = *s.loads().iter().max().unwrap();
        let min = *s.loads().iter().min().unwrap();
        assert!(max - min <= 1, "loads {:?}", s.loads());
    }

    #[test]
    fn retire_decrements_load() {
        let ru = RenameUnit::new(2, 1, 160, 160);
        let mut s = Steerer::new(2, SteeringPolicy::RoundRobin);
        let b = s.steer(&alu(0, 1, 2), &ru);
        assert_eq!(s.loads()[b], 1);
        s.note_retire(b);
        assert_eq!(s.loads()[b], 0);
    }

    #[test]
    fn preferred_range_attracts_independent_work() {
        let ru = RenameUnit::new(4, 1, 160, 160);
        let mut s = Steerer::new(4, SteeringPolicy::DependenceBalance);
        s.set_preferred(Some((2, 4)));
        for i in 0..40 {
            s.steer(&alu(i, 1, 2), &ru);
        }
        let left: i64 = s.loads()[..2].iter().sum();
        let right: i64 = s.loads()[2..].iter().sum();
        assert!(right > left * 2, "loads {:?}", s.loads());
        // Clearing the bias restores balance for new work.
        s.set_preferred(None);
        assert_eq!(s.preferred(), None);
    }

    #[test]
    fn preferred_range_yields_to_heavy_overload() {
        let ru = RenameUnit::new(2, 1, 160, 160);
        let mut s = Steerer::new(2, SteeringPolicy::DependenceBalance);
        s.set_preferred(Some((1, 2)));
        for i in 0..60 {
            s.steer(&alu(i, 1, 2), &ru);
        }
        // The bias shifts work but load balancing still uses both clusters.
        assert!(s.loads()[0] > 0, "loads {:?}", s.loads());
        assert!(s.loads()[1] > s.loads()[0], "loads {:?}", s.loads());
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn empty_preferred_range_rejected() {
        let mut s = Steerer::new(4, SteeringPolicy::DependenceBalance);
        s.set_preferred(Some((2, 2)));
    }

    #[test]
    fn overload_overrides_dependence() {
        let mut ru = RenameUnit::new(2, 1, 160, 160);
        let mut s = Steerer::new(2, SteeringPolicy::DependenceBalance);
        ru.rename(&alu(0, 1, 2), 0).unwrap(); // r1 lives on backend 0
                                              // Pile load onto backend 0 beyond the 12-entry dependence bonus.
        for i in 0..30 {
            s.steer(&alu(i + 1, 2, 1), &ru);
        }
        // Eventually consumers of r1 spill to backend 1 despite dependence.
        assert!(s.loads()[1] > 0, "loads {:?}", s.loads());
    }
}
