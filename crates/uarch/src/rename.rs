//! Register renaming: centralized baseline and the distributed scheme of
//! §3.1.1 (Figs. 4–5).
//!
//! The pieces, following the paper:
//!
//! * The **steering stage** is centralized. It owns the *availability
//!   table* (one bit per backend per logical register: does that backend
//!   hold a valid copy?) and the per-backend *freelists*. Destination
//!   registers are renamed here, right after the steering decision, so the
//!   per-partition rename tables never need to communicate.
//! * Each **frontend partition** owns a rename table (RAT) with columns for
//!   its backends only; source operands are mapped there.
//! * When a source value lives only in backends of *another* partition, a
//!   **copy request** is sent to that partition, which generates the copy
//!   instruction (the two-step process of §3.1.1).
//!
//! [`RenameUnit`] models all of this with real freelists and mapping
//! tables; the timing simulator consumes its [`Renamed`] outcomes.

use distfront_trace::uop::{ArchReg, MicroOp, RegClass, NUM_ARCH_REGS};

/// Identifier of a physical register within one backend's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg(pub u16);

/// A register-value copy between backends, generated at rename.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyOp {
    /// The logical register being copied.
    pub reg: ArchReg,
    /// Backend that holds the value (source of the copy instruction).
    pub from: usize,
    /// Backend that needs the value.
    pub to: usize,
    /// `true` when `from` belongs to a different frontend partition than
    /// `to`, i.e. a copy *request* had to cross partitions (§3.1.1 step 2).
    pub cross_partition: bool,
    /// Physical register allocated for the copy in the destination backend.
    pub dest_phys: PhysReg,
}

/// A physical register to return to a freelist when the owning instruction
/// commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Release {
    /// Backend whose freelist receives the register.
    pub backend: usize,
    /// Register class.
    pub class: RegClass,
    /// The register itself.
    pub reg: PhysReg,
}

/// Outcome of renaming one micro-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Renamed {
    /// Copies that must execute before the micro-op's sources are local.
    pub copies: Vec<CopyOp>,
    /// Registers to free when this micro-op commits (stale copies of the
    /// overwritten logical destination).
    pub releases: Vec<Release>,
    /// Physical destination allocated for the micro-op, if it has one.
    pub dest_phys: Option<PhysReg>,
}

/// Error: a required freelist was empty; the frontend must stall until a
/// commit releases registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRegisters {
    /// Backend whose freelist was exhausted.
    pub backend: usize,
    /// Class that ran dry.
    pub class: RegClass,
}

impl std::fmt::Display for OutOfRegisters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "backend {} has no free {:?} registers",
            self.backend, self.class
        )
    }
}

impl std::error::Error for OutOfRegisters {}

/// Per-partition activity counters maintained by the rename unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenameActivity {
    /// Source-mapping lookups per partition.
    pub rat_reads: Vec<u64>,
    /// Destination-mapping writes per partition.
    pub rat_writes: Vec<u64>,
    /// Availability-table lookups at steer.
    pub steer_lookups: u64,
    /// Cross-partition copy requests.
    pub copy_requests: u64,
}

#[derive(Debug, Clone)]
struct FreeList {
    free: Vec<PhysReg>,
    capacity: usize,
}

impl FreeList {
    fn new(capacity: usize, reserved: usize) -> Self {
        // Registers `0..reserved` boot as the architectural mappings.
        FreeList {
            free: (reserved..capacity).map(|i| PhysReg(i as u16)).collect(),
            capacity,
        }
    }

    fn alloc(&mut self) -> Option<PhysReg> {
        self.free.pop()
    }

    fn release(&mut self, r: PhysReg) {
        debug_assert!(self.free.len() < self.capacity, "double free");
        self.free.push(r);
    }

    fn available(&self) -> usize {
        self.free.len()
    }
}

/// The complete rename subsystem.
///
/// # Examples
///
/// ```
/// use distfront_trace::uop::{ArchReg, MicroOp, UopKind};
/// use distfront_uarch::rename::RenameUnit;
///
/// // Bi-clustered frontend over four backends (Fig. 3).
/// let mut ru = RenameUnit::new(4, 2, 160, 160);
/// let add = MicroOp::reg_op(0, UopKind::IntAlu, ArchReg::int(1),
///                           [Some(ArchReg::int(2)), None]);
/// let out = ru.rename(&add, 0).unwrap();
/// assert!(out.copies.is_empty()); // r2 boots available everywhere
/// ```
#[derive(Debug, Clone)]
pub struct RenameUnit {
    backends: usize,
    partitions: usize,
    /// Availability table: bit `b` set when backend `b` holds a valid copy.
    availability: Vec<u32>,
    /// `mapping[backend][logical]` — current physical mapping, if any.
    mapping: Vec<Vec<Option<PhysReg>>>,
    int_free: Vec<FreeList>,
    fp_free: Vec<FreeList>,
    activity: RenameActivity,
}

impl RenameUnit {
    /// Creates a rename unit for `backends` clusters grouped into
    /// `partitions` frontend partitions, with the given per-backend
    /// register-file sizes.
    ///
    /// Every logical register boots with a valid copy in every backend, as
    /// after a context switch that broadcast the architectural state.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is not divisible by `partitions`, or the
    /// register files are too small to hold the architectural state.
    pub fn new(backends: usize, partitions: usize, int_regs: usize, fp_regs: usize) -> Self {
        assert!(partitions > 0 && backends.is_multiple_of(partitions));
        let arch_per_class = usize::from(NUM_ARCH_REGS) / 2;
        assert!(int_regs > arch_per_class, "int register file too small");
        assert!(fp_regs > arch_per_class, "fp register file too small");
        let all = (1u32 << backends) - 1;
        let mapping = (0..backends)
            .map(|_| {
                (0..usize::from(NUM_ARCH_REGS))
                    .map(|l| Some(PhysReg((l % arch_per_class) as u16)))
                    .collect()
            })
            .collect();
        RenameUnit {
            backends,
            partitions,
            availability: vec![all; usize::from(NUM_ARCH_REGS)],
            mapping,
            int_free: (0..backends)
                .map(|_| FreeList::new(int_regs, arch_per_class))
                .collect(),
            fp_free: (0..backends)
                .map(|_| FreeList::new(fp_regs, arch_per_class))
                .collect(),
            activity: RenameActivity {
                rat_reads: vec![0; partitions],
                rat_writes: vec![0; partitions],
                steer_lookups: 0,
                copy_requests: 0,
            },
        }
    }

    /// Number of backend clusters.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Number of frontend partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The frontend partition feeding `backend`.
    pub fn partition_of(&self, backend: usize) -> usize {
        backend / (self.backends / self.partitions)
    }

    /// Backends currently holding a valid copy of `reg`.
    pub fn holders(&self, reg: ArchReg) -> impl Iterator<Item = usize> + '_ {
        let mask = self.availability[reg.index()];
        (0..self.backends).filter(move |&b| mask & (1 << b) != 0)
    }

    /// `true` if `backend` holds a valid copy of `reg`.
    pub fn is_available(&self, reg: ArchReg, backend: usize) -> bool {
        self.availability[reg.index()] & (1 << backend) != 0
    }

    /// Free integer/fp registers of a backend (diagnostics and tests).
    pub fn free_regs(&self, backend: usize, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.int_free[backend].available(),
            RegClass::Fp => self.fp_free[backend].available(),
        }
    }

    fn freelist(&mut self, backend: usize, class: RegClass) -> &mut FreeList {
        match class {
            RegClass::Int => &mut self.int_free[backend],
            RegClass::Fp => &mut self.fp_free[backend],
        }
    }

    /// Renames `uop` after the steering unit chose `backend`.
    ///
    /// Generates the copies needed to localize source operands, allocates
    /// the destination register from the centralized freelist, updates the
    /// availability table and the owning partition's RAT, and reports which
    /// stale physical registers the commit of this micro-op will release.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRegisters`] if a required freelist is empty; the
    /// caller should retire older instructions and retry. The unit's state
    /// is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is out of range.
    pub fn rename(&mut self, uop: &MicroOp, backend: usize) -> Result<Renamed, OutOfRegisters> {
        assert!(backend < self.backends, "backend out of range");
        // Feasibility pre-check so errors leave state untouched: count
        // registers needed per class.
        let mut need_int = 0usize;
        let mut need_fp = 0usize;
        for src in uop.sources() {
            if !self.is_available(src, backend) {
                match src.class() {
                    RegClass::Int => need_int += 1,
                    RegClass::Fp => need_fp += 1,
                }
            }
        }
        if let Some(dst) = uop.dst {
            match dst.class() {
                RegClass::Int => need_int += 1,
                RegClass::Fp => need_fp += 1,
            }
        }
        if self.int_free[backend].available() < need_int {
            return Err(OutOfRegisters {
                backend,
                class: RegClass::Int,
            });
        }
        if self.fp_free[backend].available() < need_fp {
            return Err(OutOfRegisters {
                backend,
                class: RegClass::Fp,
            });
        }

        let part = self.partition_of(backend);
        let mut copies = Vec::new();
        let mut releases = Vec::new();

        // Source localization (availability lookups happen at steer).
        for src in uop.sources() {
            self.activity.steer_lookups += 1;
            self.activity.rat_reads[part] += 1;
            if !self.is_available(src, backend) {
                let from = self
                    .nearest_holder(src, backend)
                    .expect("register lost from every backend");
                let cross = self.partition_of(from) != part;
                if cross {
                    self.activity.copy_requests += 1;
                }
                let dest_phys = self
                    .freelist(backend, src.class())
                    .alloc()
                    .expect("pre-checked allocation failed");
                self.mapping[backend][src.index()] = Some(dest_phys);
                self.availability[src.index()] |= 1 << backend;
                // The copy's mapping is written in the destination
                // partition's RAT.
                self.activity.rat_writes[part] += 1;
                copies.push(CopyOp {
                    reg: src,
                    from,
                    to: backend,
                    cross_partition: cross,
                    dest_phys,
                });
            }
        }

        // Destination rename at the steering stage (centralized freelists).
        let dest_phys = match uop.dst {
            Some(dst) => {
                // Stale copies everywhere are released when this commits.
                let mask = self.availability[dst.index()];
                for b in 0..self.backends {
                    if mask & (1 << b) != 0 {
                        if let Some(old) = self.mapping[b][dst.index()] {
                            releases.push(Release {
                                backend: b,
                                class: dst.class(),
                                reg: old,
                            });
                        }
                    }
                }
                let fresh = self
                    .freelist(backend, dst.class())
                    .alloc()
                    .expect("pre-checked allocation failed");
                self.mapping[backend][dst.index()] = Some(fresh);
                for b in 0..self.backends {
                    if b != backend {
                        self.mapping[b][dst.index()] = None;
                    }
                }
                self.availability[dst.index()] = 1 << backend;
                self.activity.rat_writes[part] += 1;
                Some(fresh)
            }
            None => None,
        };

        Ok(Renamed {
            copies,
            releases,
            dest_phys,
        })
    }

    /// Returns the holder of `reg` nearest to `backend`, preferring holders
    /// in the same partition (request-free copies) over closer holders in
    /// other partitions.
    fn nearest_holder(&self, reg: ArchReg, backend: usize) -> Option<usize> {
        let part = self.partition_of(backend);
        let mut best: Option<(bool, usize, usize)> = None; // (foreign, dist, b)
        for b in self.holders(reg) {
            let key = (self.partition_of(b) != part, b.abs_diff(backend), b);
            if best.is_none() || key < best.unwrap() {
                best = Some(key);
            }
        }
        best.map(|(_, _, b)| b)
    }

    /// Returns registers to the freelists when their owning instruction
    /// commits.
    pub fn commit_release(&mut self, releases: &[Release]) {
        for r in releases {
            self.freelist(r.backend, r.class).release(r.reg);
        }
    }

    /// Takes and resets the rename activity counters.
    pub fn take_activity(&mut self) -> RenameActivity {
        let fresh = RenameActivity {
            rat_reads: vec![0; self.partitions],
            rat_writes: vec![0; self.partitions],
            steer_lookups: 0,
            copy_requests: 0,
        };
        std::mem::replace(&mut self.activity, fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfront_trace::uop::UopKind;

    fn alu(seq: u64, dst: u8, src: u8) -> MicroOp {
        MicroOp::reg_op(
            seq,
            UopKind::IntAlu,
            ArchReg::int(dst),
            [Some(ArchReg::int(src)), None],
        )
    }

    #[test]
    fn boot_state_available_everywhere() {
        let ru = RenameUnit::new(4, 2, 160, 160);
        for i in 0..4 {
            assert!(ru.is_available(ArchReg::int(5), i));
            assert!(ru.is_available(ArchReg::fp(5), i));
        }
        assert_eq!(ru.free_regs(0, RegClass::Int), 160 - 32);
    }

    #[test]
    fn local_sources_need_no_copies() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        let out = ru.rename(&alu(0, 1, 2), 3).unwrap();
        assert!(out.copies.is_empty());
        assert!(out.dest_phys.is_some());
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        ru.rename(&alu(0, 1, 2), 0).unwrap();
        assert!(ru.is_available(ArchReg::int(1), 0));
        for b in 1..4 {
            assert!(!ru.is_available(ArchReg::int(1), b));
        }
    }

    #[test]
    fn remote_source_generates_copy() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        ru.rename(&alu(0, 1, 2), 0).unwrap(); // r1 now only in backend 0
        let out = ru.rename(&alu(1, 3, 1), 1).unwrap(); // r1 read on backend 1
        assert_eq!(out.copies.len(), 1);
        let c = out.copies[0];
        assert_eq!(c.from, 0);
        assert_eq!(c.to, 1);
        assert!(!c.cross_partition, "backends 0 and 1 share frontend 0");
        // After the copy, r1 is available on backend 1 too.
        assert!(ru.is_available(ArchReg::int(1), 1));
    }

    #[test]
    fn cross_partition_copy_raises_request() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        ru.rename(&alu(0, 1, 2), 0).unwrap(); // r1 only in backend 0 (frontend 0)
        let out = ru.rename(&alu(1, 3, 1), 2).unwrap(); // consumed on backend 2 (frontend 1)
        assert_eq!(out.copies.len(), 1);
        assert!(out.copies[0].cross_partition);
        assert_eq!(ru.take_activity().copy_requests, 1);
    }

    #[test]
    fn centralized_never_requests() {
        let mut ru = RenameUnit::new(4, 1, 160, 160);
        ru.rename(&alu(0, 1, 2), 0).unwrap();
        ru.rename(&alu(1, 3, 1), 3).unwrap();
        let act = ru.take_activity();
        assert_eq!(act.copy_requests, 0, "single partition cannot cross");
    }

    #[test]
    fn overwrite_releases_stale_copies() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        // r1 boots available in all 4 backends -> 4 stale copies released.
        let out = ru.rename(&alu(0, 1, 2), 0).unwrap();
        assert_eq!(out.releases.len(), 4);
        // A second write releases only the single live copy.
        let out2 = ru.rename(&alu(1, 1, 2), 0).unwrap();
        assert_eq!(out2.releases.len(), 1);
    }

    #[test]
    fn commit_release_returns_registers() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        let before = ru.free_regs(0, RegClass::Int);
        let out = ru.rename(&alu(0, 1, 2), 0).unwrap();
        assert_eq!(ru.free_regs(0, RegClass::Int), before - 1);
        ru.commit_release(&out.releases);
        // Backend 0 got its stale copy of r1 back; net usage is stable.
        assert_eq!(ru.free_regs(0, RegClass::Int), before);
    }

    #[test]
    fn exhaustion_is_reported_and_state_preserved() {
        let mut ru = RenameUnit::new(2, 1, 33, 33); // one spare register
        ru.rename(&alu(0, 1, 2), 0).unwrap(); // uses the spare
        let err = ru.rename(&alu(1, 3, 2), 0).unwrap_err();
        assert_eq!(err.backend, 0);
        assert_eq!(err.class, RegClass::Int);
        // Backend 1 untouched.
        assert_eq!(ru.free_regs(1, RegClass::Int), 1);
    }

    #[test]
    fn rename_counts_rat_activity_per_partition() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        ru.rename(&alu(0, 1, 2), 0).unwrap(); // partition 0
        ru.rename(&alu(1, 3, 4), 2).unwrap(); // partition 1
        let act = ru.take_activity();
        assert_eq!(act.rat_reads, vec![1, 1]);
        assert_eq!(act.rat_writes, vec![1, 1]);
        assert_eq!(act.steer_lookups, 2);
        // Counters reset after take.
        assert_eq!(ru.take_activity().steer_lookups, 0);
    }

    #[test]
    fn nearest_holder_prefers_same_partition() {
        let mut ru = RenameUnit::new(4, 2, 160, 160);
        // Make r1 live in backends 1 and 2 only: write on 1, copy to 2.
        ru.rename(&alu(0, 1, 2), 1).unwrap();
        let out = ru.rename(&alu(1, 3, 1), 2).unwrap(); // copies 1 -> 2
        assert_eq!(out.copies[0].from, 1);
        // Now r1 lives in 1 and 2. A consumer on backend 3 (partition 1)
        // must prefer backend 2 (same partition) even though backend 1 and
        // 2 are equidistant choices by partition rule anyway; check `from`.
        let out2 = ru.rename(&alu(2, 4, 1), 3).unwrap();
        assert_eq!(out2.copies[0].from, 2, "same-partition holder preferred");
        assert!(!out2.copies[0].cross_partition);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use distfront_trace::uop::UopKind;
    use proptest::prelude::*;

    proptest! {
        /// Under random rename/commit interleavings: every source is
        /// available after rename, freelists never go negative, and
        /// releasing at commit restores balance (no register leaks).
        #[test]
        fn no_register_leaks(
            ops in proptest::collection::vec((0u8..32, 0u8..32, 0usize..4), 1..300),
        ) {
            let mut ru = RenameUnit::new(4, 2, 160, 160);
            let mut pending: std::collections::VecDeque<Vec<Release>> =
                std::collections::VecDeque::new();
            for (i, &(dst, src, backend)) in ops.iter().enumerate() {
                let uop = MicroOp::reg_op(
                    i as u64,
                    UopKind::IntAlu,
                    ArchReg::int(dst),
                    [Some(ArchReg::int(src)), None],
                );
                match ru.rename(&uop, backend) {
                    Ok(out) => {
                        prop_assert!(ru.is_available(ArchReg::int(src), backend));
                        prop_assert!(ru.is_available(ArchReg::int(dst), backend));
                        pending.push_back(out.releases);
                        // Commit in order with a window of 8 in flight.
                        if pending.len() > 8 {
                            let r = pending.pop_front().unwrap();
                            ru.commit_release(&r);
                        }
                    }
                    Err(_) => {
                        // Drain the window and retry once; must succeed.
                        while let Some(r) = pending.pop_front() {
                            ru.commit_release(&r);
                        }
                        prop_assert!(ru.rename(&uop, backend).is_ok());
                    }
                }
            }
            // Every logical register is still held somewhere.
            for l in 0..64u8 {
                let reg = ArchReg::from_index(l);
                prop_assert!(ru.holders(reg).count() >= 1, "register {reg} lost");
            }
        }
    }
}
