//! A generic set-associative cache with true-LRU replacement.
//!
//! All concrete caches in the simulator (trace-cache banks, L1 data caches,
//! the UL2) are thin wrappers around [`SetAssocCache`]. The cache tracks
//! tags only — the simulator never needs the cached data itself, just
//! hit/miss behaviour and occupancy.

use crate::stats::CacheStats;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent (and, for `access_fill`, has now been filled).
    Miss,
}

impl Access {
    /// `true` on [`Access::Hit`].
    pub fn is_hit(self) -> bool {
        self == Access::Hit
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    /// Monotone per-cache timestamp for LRU ordering.
    stamp: u64,
}

/// Geometry of a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two); addresses are shifted by
    /// `line_bytes.trailing_zeros()` before indexing.
    pub line_bytes: u64,
}

impl Geometry {
    /// Derives a geometry from capacity/associativity/line size.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are zero, not powers of two where required,
    /// or describe a capacity smaller than one set.
    pub fn from_capacity(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways > 0, "ways must be positive");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways as u64, "capacity smaller than one set");
        let sets = (lines / ways as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} not a power of two"
        );
        Geometry {
            sets,
            ways,
            line_bytes,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// A set-associative, true-LRU, tag-only cache model.
///
/// # Examples
///
/// ```
/// use distfront_cache::set_assoc::{Access, Geometry, SetAssocCache};
///
/// let mut c = SetAssocCache::new(Geometry::from_capacity(1024, 2, 64));
/// assert_eq!(c.access_fill(0x100), Access::Miss);
/// assert_eq!(c.access_fill(0x100), Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geo: Geometry,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geo: Geometry) -> Self {
        SetAssocCache {
            sets: vec![Vec::with_capacity(geo.ways); geo.sets],
            geo,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.geo.line_bytes.trailing_zeros();
        let set = (line as usize) & (self.geo.sets - 1);
        let tag = line >> self.geo.sets.trailing_zeros();
        (set, tag)
    }

    /// Looks up `addr` without modifying contents (but updates LRU and
    /// statistics).
    pub fn access(&mut self, addr: u64) -> Access {
        self.clock += 1;
        self.stats.accesses += 1;
        let clock = self.clock;
        let (set, tag) = self.index_tag(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            line.stamp = clock;
            self.stats.hits += 1;
            Access::Hit
        } else {
            Access::Miss
        }
    }

    /// Looks up `addr`; on a miss the line is filled (evicting LRU).
    pub fn access_fill(&mut self, addr: u64) -> Access {
        let r = self.access(addr);
        if r == Access::Miss {
            self.fill(addr);
        }
        r
    }

    /// Fills the line containing `addr`, evicting the LRU way if the set is
    /// full. Filling an already-present line refreshes its LRU stamp.
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.index_tag(addr);
        let ways = self.geo.ways;
        let set = &mut self.sets[set];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.stamp = clock;
            return;
        }
        self.stats.fills += 1;
        if set.len() < ways {
            set.push(Line { tag, stamp: clock });
        } else {
            let lru = set
                .iter_mut()
                .min_by_key(|l| l.stamp)
                .expect("non-empty set");
            *lru = Line { tag, stamp: clock };
            self.stats.evictions += 1;
        }
    }

    /// Invalidates every line, counting them as invalidations (used when a
    /// trace-cache bank is Vdd-gated).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            self.stats.invalidations += set.len() as u64;
            set.clear();
        }
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(Geometry::from_capacity(512, 2, 64))
    }

    #[test]
    fn geometry_from_capacity() {
        let g = Geometry::from_capacity(16 << 10, 2, 64);
        assert_eq!(g.sets, 128);
        assert_eq!(g.capacity_bytes(), 16 << 10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_bad_line() {
        Geometry::from_capacity(1024, 2, 48);
    }

    #[test]
    #[should_panic(expected = "capacity smaller")]
    fn geometry_rejects_tiny_capacity() {
        Geometry::from_capacity(64, 4, 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access_fill(0), Access::Miss);
        assert_eq!(c.access_fill(0), Access::Hit);
        assert_eq!(c.access_fill(63), Access::Hit, "same line");
        assert_eq!(c.access_fill(64), Access::Miss, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three addresses mapping to set 0 (stride = sets * line = 256).
        c.access_fill(0);
        c.access_fill(256);
        c.access(0); // make 0 MRU
        c.access_fill(512); // evicts 256
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(512), Access::Hit);
        assert_eq!(c.access(256), Access::Miss);
    }

    #[test]
    fn conflict_only_within_set() {
        let mut c = small();
        for i in 0..4 {
            c.access_fill(i * 64); // four different sets
        }
        for i in 0..4 {
            assert_eq!(c.access(i * 64), Access::Hit);
        }
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = small();
        c.access_fill(0);
        c.access_fill(64);
        assert_eq!(c.occupancy(), 2);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn stats_track_accesses() {
        let mut c = small();
        c.access_fill(0);
        c.access_fill(0);
        c.access_fill(4096);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.fills, 2);
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = small();
        for i in 0..1000 {
            c.access_fill(i * 64);
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn refill_refreshes_without_duplicating() {
        let mut c = small();
        c.fill(0);
        c.fill(0);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.stats().fills, 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Occupancy never exceeds capacity, and a hit is always preceded by
        /// a fill of the same line.
        #[test]
        fn occupancy_invariant(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
            let mut c = SetAssocCache::new(Geometry::from_capacity(2048, 4, 64));
            let capacity_lines = 2048 / 64;
            let mut filled = std::collections::HashSet::new();
            for a in addrs {
                let line = a / 64;
                let r = c.access_fill(a);
                if r.is_hit() {
                    prop_assert!(filled.contains(&line), "hit on never-filled line");
                }
                filled.insert(line);
                prop_assert!(c.occupancy() <= capacity_lines);
            }
        }

        /// After accessing `ways` distinct conflicting lines, all of them hit
        /// (no premature eviction).
        #[test]
        fn no_premature_eviction(base in 0u64..1000) {
            let mut c = SetAssocCache::new(Geometry::from_capacity(2048, 4, 64));
            let sets = c.geometry().sets as u64;
            let stride = sets * 64;
            for w in 0..4 {
                c.access_fill(base * 64 + w * stride);
            }
            for w in 0..4 {
                prop_assert!(c.access(base * 64 + w * stride).is_hit());
            }
        }
    }
}
