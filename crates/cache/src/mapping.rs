//! The trace-cache bank mapping function (§3.2.2, Fig. 9).
//!
//! Every trace-cache access XOR-folds two five-bit fields of the trace
//! address (branch bits + PC of the first micro-op) into a five-bit
//! *combination*, which indexes a 32-entry table assigning that combination
//! to a bank. A *balanced* table gives each bank `32 / N` combinations; the
//! *thermal-aware* table re-divides the entries every interval so that a
//! bank's share is halved for every 3 °C it sits above the mean bank
//! temperature (the paper's experimentally-determined rule).

/// Number of entries in the mapping table (2^5 combinations).
pub const COMBINATIONS: usize = 32;

/// XOR-folds a trace address into a five-bit combination.
///
/// The trace-cache address is formed from the PC of the first micro-op of
/// the trace plus the branch-direction bits of the trace; two five-bit
/// fields of it are XORed, as in the paper. PCs are 16-byte aligned so the
/// low four bits are dropped first.
///
/// # Examples
///
/// ```
/// use distfront_cache::mapping::combination;
///
/// let c = combination(0x40_0000, 0b101);
/// assert!(c < 32);
/// ```
pub fn combination(start_pc: u64, branch_bits: u8) -> usize {
    let addr = (start_pc >> 4) ^ (u64::from(branch_bits) << 2);
    let lo = addr & 0x1f;
    let hi = (addr >> 5) & 0x1f;
    ((lo ^ hi) & 0x1f) as usize
}

/// Parameters of the thermal-aware bias rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingPolicy {
    /// A bank's activity share is divided by two for every `halve_step_c`
    /// degrees Celsius it is above the mean bank temperature. The paper
    /// found 3 °C to work best.
    pub halve_step_c: f64,
}

impl MappingPolicy {
    /// The paper's rule: halve per 3 °C.
    pub fn paper() -> Self {
        MappingPolicy { halve_step_c: 3.0 }
    }

    /// Relative weight of a bank at temperature `t` given the mean `mean`.
    pub fn weight(&self, t: f64, mean: f64) -> f64 {
        debug_assert!(self.halve_step_c > 0.0);
        2f64.powf(-(t - mean) / self.halve_step_c)
    }
}

impl Default for MappingPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// The combination→bank table of Fig. 9.
///
/// `banks` below are *physical* bank indices; when bank hopping gates a
/// bank, the table is rebuilt over the enabled subset only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankMapTable {
    entries: [u8; COMBINATIONS],
}

impl BankMapTable {
    /// Builds a balanced table over `enabled`: each bank receives an equal
    /// contiguous range of combinations (±1 when 32 is not divisible).
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty or has more than 32 banks.
    pub fn balanced(enabled: &[usize]) -> Self {
        Self::from_shares(enabled, &vec![1.0; enabled.len()])
    }

    /// Builds a biased table from per-bank temperatures: colder banks get
    /// more combinations, following `policy`.
    ///
    /// `enabled` and `temps_c` run parallel (temperature of `enabled[i]` is
    /// `temps_c[i]`).
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths.
    pub fn biased(enabled: &[usize], temps_c: &[f64], policy: MappingPolicy) -> Self {
        assert_eq!(
            enabled.len(),
            temps_c.len(),
            "banks and temperatures must pair up"
        );
        let mean = temps_c.iter().sum::<f64>() / temps_c.len() as f64;
        let weights: Vec<f64> = temps_c.iter().map(|&t| policy.weight(t, mean)).collect();
        Self::from_shares(enabled, &weights)
    }

    /// Builds a table giving each enabled bank a share of the 32 entries
    /// proportional to its weight (largest-remainder apportionment; every
    /// bank with nonzero weight keeps at least one entry so its contents
    /// stay reachable).
    pub fn from_shares(enabled: &[usize], weights: &[f64]) -> Self {
        assert!(!enabled.is_empty(), "at least one bank must be enabled");
        assert!(enabled.len() <= COMBINATIONS, "too many banks");
        assert_eq!(enabled.len(), weights.len());
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        // Ideal (real-valued) share per bank, then floor with a 1-entry
        // minimum, then distribute the remainder by largest fraction.
        let n = enabled.len();
        let mut counts = vec![1usize; n];
        let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(n);
        let budget = COMBINATIONS - n; // after the 1-entry minimums
        let mut assigned = 0;
        for (i, &w) in weights.iter().enumerate() {
            let ideal = w / total * budget as f64;
            let fl = ideal.floor() as usize;
            counts[i] += fl;
            assigned += fl;
            fracs.push((ideal - fl as f64, i));
        }
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for k in 0..(budget - assigned) {
            counts[fracs[k % n].1] += 1;
        }

        let mut entries = [0u8; COMBINATIONS];
        let mut pos = 0;
        for (i, &bank) in enabled.iter().enumerate() {
            for _ in 0..counts[i] {
                entries[pos] = bank as u8;
                pos += 1;
            }
        }
        debug_assert_eq!(pos, COMBINATIONS);
        BankMapTable { entries }
    }

    /// The bank assigned to `combination`.
    ///
    /// # Panics
    ///
    /// Panics if `combination >= 32`.
    pub fn bank_for(&self, combination: usize) -> usize {
        usize::from(self.entries[combination])
    }

    /// Number of combinations currently assigned to `bank`.
    pub fn share_of(&self, bank: usize) -> usize {
        self.entries
            .iter()
            .filter(|&&b| usize::from(b) == bank)
            .count()
    }

    /// Reassigns every combination mapped to `from` over to `to` (used when
    /// hopping gates bank `from` and enables bank `to`).
    pub fn retarget(&mut self, from: usize, to: usize) {
        for e in &mut self.entries {
            if usize::from(*e) == from {
                *e = to as u8;
            }
        }
    }

    /// Iterator over `(combination, bank)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(c, &b)| (c, usize::from(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_is_five_bits() {
        for pc in (0..4096u64).map(|i| 0x40_0000 + i * 16) {
            for bb in 0..8u8 {
                assert!(combination(pc, bb) < COMBINATIONS);
            }
        }
    }

    #[test]
    fn combination_spreads_addresses() {
        // Sequential trace start addresses should cover many combinations.
        let mut seen = [false; COMBINATIONS];
        for i in 0..256u64 {
            seen[combination(0x40_0000 + i * 16, 0)] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered >= 24, "only {covered}/32 combinations covered");
    }

    #[test]
    fn branch_bits_affect_combination() {
        let pc = 0x40_0040;
        let distinct: std::collections::HashSet<_> =
            (0..8u8).map(|bb| combination(pc, bb)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn balanced_two_banks_is_fig9() {
        // Fig. 9: entries 0..16 -> bank 0, 16..32 -> bank 1.
        let t = BankMapTable::balanced(&[0, 1]);
        assert_eq!(t.share_of(0), 16);
        assert_eq!(t.share_of(1), 16);
        for c in 0..16 {
            assert_eq!(t.bank_for(c), 0);
        }
        for c in 16..32 {
            assert_eq!(t.bank_for(c), 1);
        }
    }

    #[test]
    fn balanced_three_banks_near_equal() {
        let t = BankMapTable::balanced(&[0, 1, 2]);
        let shares = [t.share_of(0), t.share_of(1), t.share_of(2)];
        assert_eq!(shares.iter().sum::<usize>(), 32);
        for s in shares {
            assert!((10..=12).contains(&s), "share {s}");
        }
    }

    #[test]
    fn biased_equal_temps_is_balanced() {
        let t = BankMapTable::biased(&[0, 1], &[70.0, 70.0], MappingPolicy::paper());
        assert_eq!(t.share_of(0), 16);
        assert_eq!(t.share_of(1), 16);
    }

    #[test]
    fn biased_three_degrees_halves_share() {
        // Bank 1 is 3 degrees above bank 0 => weights 2^(+0.5) vs 2^(-0.5),
        // i.e. bank 0 gets 2x the share of bank 1 (paper's factor-of-two
        // per 3 C rule, measured between the banks).
        let t = BankMapTable::biased(&[0, 1], &[67.0, 70.0], MappingPolicy::paper());
        let (s0, s1) = (t.share_of(0) as f64, t.share_of(1) as f64);
        assert!((s0 / s1 - 2.0).abs() < 0.3, "ratio {}", s0 / s1);
        assert_eq!(t.share_of(0) + t.share_of(1), 32);
    }

    #[test]
    fn biased_hot_bank_keeps_minimum_entry() {
        // Extremely hot bank still keeps >= 1 combination so its contents
        // remain reachable.
        let t = BankMapTable::biased(&[0, 1], &[50.0, 110.0], MappingPolicy::paper());
        assert!(t.share_of(1) >= 1);
        assert!(t.share_of(0) >= 28);
    }

    #[test]
    fn retarget_moves_all_entries() {
        let mut t = BankMapTable::balanced(&[0, 1]);
        t.retarget(0, 2);
        assert_eq!(t.share_of(0), 0);
        assert_eq!(t.share_of(2), 16);
        assert_eq!(t.share_of(1), 16);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn empty_banks_panics() {
        BankMapTable::balanced(&[]);
    }

    #[test]
    fn iter_covers_all_combinations() {
        let t = BankMapTable::balanced(&[3, 4]);
        assert_eq!(t.iter().count(), 32);
        assert!(t.iter().all(|(_, b)| b == 3 || b == 4));
    }

    #[test]
    fn weight_rule_matches_paper() {
        let p = MappingPolicy::paper();
        // 3 degrees above mean => half the activity.
        assert!((p.weight(73.0, 70.0) - 0.5).abs() < 1e-12);
        assert!((p.weight(70.0, 70.0) - 1.0).abs() < 1e-12);
        assert!((p.weight(64.0, 70.0) - 4.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Shares always sum to 32, every enabled bank keeps at least one
        /// entry, and colder banks never get smaller shares than hotter ones.
        #[test]
        fn apportionment_invariants(
            temps in proptest::collection::vec(40.0f64..110.0, 2..6),
        ) {
            let enabled: Vec<usize> = (0..temps.len()).collect();
            let t = BankMapTable::biased(&enabled, &temps, MappingPolicy::paper());
            let shares: Vec<usize> = enabled.iter().map(|&b| t.share_of(b)).collect();
            prop_assert_eq!(shares.iter().sum::<usize>(), COMBINATIONS);
            for &s in &shares {
                prop_assert!(s >= 1);
            }
            for i in 0..temps.len() {
                for j in 0..temps.len() {
                    if temps[i] < temps[j] - 1.0 {
                        prop_assert!(
                            shares[i] + 1 >= shares[j],
                            "colder bank {} (T={}) got {} < hotter bank {} (T={}) with {}",
                            i, temps[i], shares[i], j, temps[j], shares[j]
                        );
                    }
                }
            }
        }

        /// The combination function is total and stable.
        #[test]
        fn combination_total(pc in 0u64..u64::MAX / 2, bb in 0u8..8) {
            let c = combination(pc, bb);
            prop_assert!(c < COMBINATIONS);
            prop_assert_eq!(c, combination(pc, bb));
        }
    }
}
