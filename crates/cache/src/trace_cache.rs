//! The sub-banked, thermally-managed trace cache (§3.2).
//!
//! The trace cache stores *traces* — sequences of up to 16 micro-ops keyed
//! by the PC of their first micro-op plus the directions of the branches
//! inside the trace. It is split into banks with non-overlapping contents;
//! a mapping function ([`crate::mapping`]) selects the bank for each trace.
//!
//! Two thermal mechanisms are modelled:
//!
//! * **Bank hopping** (§3.2.1): one extra physical bank is added and exactly
//!   one bank is Vdd-gated at any time. [`TraceCache::hop`] rotates the
//!   gated bank; the newly gated bank loses its contents and its mapping
//!   entries are retargeted at the newly enabled (empty) bank.
//! * **Thermal-aware mapping** (§3.2.2): [`TraceCache::rebalance`] rebuilds
//!   the mapping table from per-bank temperatures so colder banks receive
//!   more of the 32 address combinations.

use crate::mapping::{combination, BankMapTable, MappingPolicy};
use crate::set_assoc::{Geometry, SetAssocCache};
use crate::stats::CacheStats;

/// Identity of a cached trace: start PC plus branch-direction bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// PC of the first micro-op of the trace.
    pub start_pc: u64,
    /// Directions of the (up to three) branches inside the trace.
    pub branch_bits: u8,
}

impl TraceKey {
    /// Creates a trace key.
    pub fn new(start_pc: u64, branch_bits: u8) -> Self {
        TraceKey {
            start_pc,
            branch_bits,
        }
    }

    /// Five-bit mapping combination for this key.
    pub fn combination(self) -> usize {
        combination(self.start_pc, self.branch_bits)
    }

    fn storage_addr(self) -> u64 {
        // PCs are 16-byte aligned; branch bits live in the high bits so
        // distinct keys can never alias. The odd-constant multiply is a
        // bijection on u64 that spreads consecutive trace starts across the
        // bank's sets (trace starts are sparse and strided, so indexing on
        // raw PC bits would leave most sets cold).
        let raw = (self.start_pc >> 4) | (u64::from(self.branch_bits) << 48);
        // SplitMix64 finalizer: xor-shifts fold high bits back into the low
        // (set-index) bits, unlike a bare multiply which only carries upward.
        let mut z = raw;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Static configuration of the trace cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCacheConfig {
    /// Total effective capacity in micro-ops (Table 1: 32 K).
    pub total_uops: u32,
    /// Micro-ops per trace line.
    pub line_uops: u32,
    /// Associativity of each bank.
    pub ways: usize,
    /// Number of *logical* (simultaneously enabled) banks.
    pub logical_banks: usize,
    /// If `true`, one extra physical bank exists and one bank is always
    /// gated ([`TraceCache::hop`] rotates it).
    pub hopping: bool,
    /// If `true`, [`TraceCache::rebalance`] applies the thermal bias;
    /// otherwise it restores a balanced table.
    pub biased: bool,
    /// Bias rule parameters.
    pub policy: MappingPolicy,
}

impl TraceCacheConfig {
    /// The paper's baseline: 32 K micro-ops, 4-way, two banks, no thermal
    /// management.
    pub fn baseline_two_banks() -> Self {
        TraceCacheConfig {
            total_uops: 32 * 1024,
            line_uops: 16,
            ways: 4,
            logical_banks: 2,
            hopping: false,
            biased: false,
            policy: MappingPolicy::paper(),
        }
    }

    /// Baseline plus the thermal-aware biased mapping (AB in Fig. 13).
    pub fn address_biasing() -> Self {
        TraceCacheConfig {
            biased: true,
            ..Self::baseline_two_banks()
        }
    }

    /// Two logical banks plus the hopping spare (BH in Fig. 13).
    pub fn bank_hopping() -> Self {
        TraceCacheConfig {
            hopping: true,
            ..Self::baseline_two_banks()
        }
    }

    /// Hopping and biased mapping combined (BH+AB in Fig. 13).
    pub fn hopping_and_biasing() -> Self {
        TraceCacheConfig {
            hopping: true,
            biased: true,
            ..Self::baseline_two_banks()
        }
    }

    /// Number of physical banks (logical plus the hopping spare).
    pub fn physical_banks(&self) -> usize {
        self.logical_banks + usize::from(self.hopping)
    }

    /// Capacity of one bank in trace lines.
    pub fn lines_per_bank(&self) -> usize {
        (self.total_uops / self.line_uops) as usize / self.logical_banks
    }
}

/// The banked trace cache.
#[derive(Debug, Clone)]
pub struct TraceCache {
    config: TraceCacheConfig,
    banks: Vec<SetAssocCache>,
    map: BankMapTable,
    /// Currently Vdd-gated physical bank (`None` when not hopping).
    gated: Option<usize>,
    /// Per-physical-bank access counts since the last `take_bank_accesses`.
    accesses: Vec<u64>,
    /// Total hops performed.
    hops: u64,
}

impl TraceCache {
    /// Creates the trace cache described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero banks, capacity smaller
    /// than one set per bank, non-power-of-two set counts).
    pub fn new(config: TraceCacheConfig) -> Self {
        assert!(config.logical_banks > 0, "need at least one bank");
        let physical = config.physical_banks();
        let lines = config.lines_per_bank();
        assert!(lines >= config.ways, "bank smaller than one set");
        // Model each trace line as one "byte" so the generic cache's
        // geometry machinery applies directly.
        let geo = Geometry::from_capacity(lines as u64, config.ways, 1);
        let banks = vec![SetAssocCache::new(geo); physical];
        let gated = config.hopping.then_some(physical - 1);
        let enabled: Vec<usize> = (0..physical).filter(|&b| Some(b) != gated).collect();
        TraceCache {
            config,
            banks,
            map: BankMapTable::balanced(&enabled),
            gated,
            accesses: vec![0; physical],
            hops: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &TraceCacheConfig {
        &self.config
    }

    /// The physical bank a key currently maps to.
    pub fn bank_of(&self, key: TraceKey) -> usize {
        self.map.bank_for(key.combination())
    }

    /// Looks up a trace; returns `true` on hit. Counts one access on the
    /// target bank.
    pub fn lookup(&mut self, key: TraceKey) -> bool {
        let bank = self.bank_of(key);
        debug_assert_ne!(Some(bank), self.gated, "mapped to a gated bank");
        self.accesses[bank] += 1;
        self.banks[bank].access(key.storage_addr()).is_hit()
    }

    /// Inserts a trace after a miss (counts the fill on the target bank).
    pub fn insert(&mut self, key: TraceKey) {
        let bank = self.bank_of(key);
        debug_assert_ne!(Some(bank), self.gated, "mapped to a gated bank");
        self.banks[bank].fill(key.storage_addr());
    }

    /// Rotates the gated bank (no-op unless hopping is enabled).
    ///
    /// The next bank in sequence is gated — losing its contents — and the
    /// previously gated (empty) bank takes over its mapping entries.
    pub fn hop(&mut self) {
        let Some(old_gated) = self.gated else {
            return;
        };
        let physical = self.banks.len();
        let new_gated = (old_gated + 1) % physical;
        self.map.retarget(new_gated, old_gated);
        self.banks[new_gated].invalidate_all();
        self.gated = Some(new_gated);
        self.hops += 1;
    }

    /// Rebuilds the mapping table from per-physical-bank temperatures.
    ///
    /// With `biased` configured, colder banks receive larger shares; without
    /// it the table is reset to balanced over the enabled banks (so a
    /// hopping-only cache stays balanced as it rotates).
    ///
    /// # Panics
    ///
    /// Panics if `temps_c` does not have one entry per physical bank.
    pub fn rebalance(&mut self, temps_c: &[f64]) {
        assert_eq!(temps_c.len(), self.banks.len(), "one temperature per bank");
        let enabled = self.enabled_banks();
        if self.config.biased {
            let temps: Vec<f64> = enabled.iter().map(|&b| temps_c[b]).collect();
            self.map = BankMapTable::biased(&enabled, &temps, self.config.policy);
        } else {
            self.map = BankMapTable::balanced(&enabled);
        }
    }

    /// Physical banks currently powered on.
    pub fn enabled_banks(&self) -> Vec<usize> {
        (0..self.banks.len())
            .filter(|&b| Some(b) != self.gated)
            .collect()
    }

    /// The currently gated bank, if hopping.
    pub fn gated_bank(&self) -> Option<usize> {
        self.gated
    }

    /// Number of hops performed so far.
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Per-physical-bank access counts since the last call, resetting them.
    pub fn take_bank_accesses(&mut self) -> Vec<u64> {
        let out = self.accesses.clone();
        self.accesses.iter_mut().for_each(|a| *a = 0);
        out
    }

    /// Mapping-table share of each physical bank (gated banks report 0).
    pub fn bank_shares(&self) -> Vec<usize> {
        (0..self.banks.len())
            .map(|b| self.map.share_of(b))
            .collect()
    }

    /// Aggregate statistics over all banks.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::new();
        for b in &self.banks {
            s.merge(&b.stats());
        }
        s
    }

    /// Statistics of one physical bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_stats(&self, bank: usize) -> CacheStats {
        self.banks[bank].stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = TraceKey> {
        (0..n).map(|i| TraceKey::new(0x40_0000 + i * 16 * 16, (i % 8) as u8))
    }

    #[test]
    fn baseline_geometry() {
        let tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
        assert_eq!(tc.banks.len(), 2);
        assert_eq!(tc.config().lines_per_bank(), 1024);
        assert_eq!(tc.gated_bank(), None);
    }

    #[test]
    fn hopping_adds_spare_bank() {
        let tc = TraceCache::new(TraceCacheConfig::bank_hopping());
        assert_eq!(tc.banks.len(), 3);
        assert_eq!(tc.gated_bank(), Some(2));
        assert_eq!(tc.enabled_banks(), vec![0, 1]);
    }

    #[test]
    fn miss_insert_hit() {
        let mut tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
        let k = TraceKey::new(0x40_1000, 3);
        assert!(!tc.lookup(k));
        tc.insert(k);
        assert!(tc.lookup(k));
    }

    #[test]
    fn distinct_branch_bits_are_distinct_traces() {
        let mut tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
        let a = TraceKey::new(0x40_1000, 0);
        let b = TraceKey::new(0x40_1000, 1);
        tc.insert(a);
        assert!(!tc.lookup(b));
    }

    #[test]
    fn accesses_spread_across_banks() {
        let mut tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
        for k in keys(512) {
            tc.lookup(k);
        }
        let acc = tc.take_bank_accesses();
        assert_eq!(acc.iter().sum::<u64>(), 512);
        for (b, &a) in acc.iter().enumerate() {
            assert!(a > 128, "bank {b} starved: {a}");
        }
        // Counters reset after take.
        assert_eq!(tc.take_bank_accesses(), vec![0, 0]);
    }

    #[test]
    fn gated_bank_never_accessed() {
        let mut tc = TraceCache::new(TraceCacheConfig::bank_hopping());
        for k in keys(512) {
            tc.lookup(k);
            tc.insert(k);
        }
        let acc = tc.take_bank_accesses();
        assert_eq!(acc[2], 0, "gated bank was accessed");
    }

    #[test]
    fn hop_rotates_and_invalidates() {
        let mut tc = TraceCache::new(TraceCacheConfig::bank_hopping());
        // Fill with traces.
        let all: Vec<_> = keys(256).collect();
        for &k in &all {
            tc.insert(k);
        }
        let hits_before: usize = all.iter().filter(|&&k| tc.lookup(k)).count();
        assert!(hits_before > 200);

        tc.hop();
        assert_eq!(tc.gated_bank(), Some(0));
        assert_eq!(tc.enabled_banks(), vec![1, 2]);
        // Bank 0's traces are unreachable, bank 2 is empty: some misses.
        let hits_after: usize = all.iter().filter(|&&k| tc.lookup(k)).count();
        assert!(hits_after < hits_before);
        // Everything still maps to enabled banks.
        for &k in &all {
            assert_ne!(Some(tc.bank_of(k)), tc.gated_bank());
        }
    }

    #[test]
    fn full_rotation_returns_to_start() {
        let mut tc = TraceCache::new(TraceCacheConfig::bank_hopping());
        let first = tc.gated_bank();
        for _ in 0..3 {
            tc.hop();
        }
        assert_eq!(tc.gated_bank(), first);
        assert_eq!(tc.hops(), 3);
    }

    #[test]
    fn hop_without_hopping_is_noop() {
        let mut tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
        tc.hop();
        assert_eq!(tc.hops(), 0);
        assert_eq!(tc.gated_bank(), None);
    }

    #[test]
    fn rebalance_biased_shifts_shares() {
        let mut tc = TraceCache::new(TraceCacheConfig::address_biasing());
        tc.rebalance(&[60.0, 72.0]);
        let shares = tc.bank_shares();
        assert!(shares[0] > shares[1], "shares {shares:?}");
        assert_eq!(shares.iter().sum::<usize>(), 32);
    }

    #[test]
    fn rebalance_unbiased_restores_balance() {
        let mut tc = TraceCache::new(TraceCacheConfig::bank_hopping());
        tc.hop();
        tc.rebalance(&[70.0, 90.0, 50.0]);
        let shares = tc.bank_shares();
        assert_eq!(shares[0], 0, "gated bank holds share");
        assert_eq!(shares[1], 16);
        assert_eq!(shares[2], 16);
    }

    #[test]
    fn biased_hopping_respects_gating() {
        let mut tc = TraceCache::new(TraceCacheConfig::hopping_and_biasing());
        tc.rebalance(&[80.0, 60.0, 45.0]);
        let shares = tc.bank_shares();
        assert_eq!(shares[2], 0, "gated bank got entries");
        assert!(shares[1] > shares[0]);
    }

    #[test]
    #[should_panic(expected = "one temperature per bank")]
    fn rebalance_wrong_arity_panics() {
        let mut tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
        tc.rebalance(&[70.0]);
    }

    #[test]
    fn stats_aggregate() {
        let mut tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
        for k in keys(64) {
            if !tc.lookup(k) {
                tc.insert(k);
            }
            tc.lookup(k);
        }
        let s = tc.stats();
        assert_eq!(s.accesses, 128);
        assert!(s.hits >= 64);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever sequence of lookups, inserts, hops and rebalances we
        /// apply: no access ever lands on the gated bank and shares always
        /// sum to 32 over enabled banks.
        #[test]
        fn thermal_ops_never_break_mapping(
            ops in proptest::collection::vec(0u8..4, 1..200),
            pcs in proptest::collection::vec(0u64..1_000_000u64, 1..200),
        ) {
            let mut tc = TraceCache::new(TraceCacheConfig::hopping_and_biasing());
            for (i, op) in ops.iter().enumerate() {
                let key = TraceKey::new(0x40_0000 + pcs[i % pcs.len()] * 16, (i % 8) as u8);
                match op {
                    0 => { tc.lookup(key); }
                    1 => { tc.insert(key); }
                    2 => tc.hop(),
                    _ => tc.rebalance(&[60.0 + i as f64 % 20.0, 70.0, 65.0]),
                }
                let gated = tc.gated_bank().expect("hopping config");
                prop_assert_eq!(tc.bank_shares()[gated], 0);
                prop_assert_eq!(tc.bank_shares().iter().sum::<usize>(), 32);
                prop_assert_ne!(tc.bank_of(key), gated);
            }
            let acc = tc.take_bank_accesses();
            prop_assert!(acc.len() == 3);
        }
    }
}
