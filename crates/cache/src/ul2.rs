//! The unified second-level cache (Table 1: 2 MB, 8-way, 12-cycle hit,
//! 500+-cycle miss).
//!
//! The UL2 is shared by all clusters and the frontend: data-cache misses and
//! trace-cache line builds both come here. The model is tag-only; the
//! simulator charges [`Ul2Config::hit_latency`] or [`Ul2Config::miss_latency`]
//! depending on the outcome.

use crate::set_assoc::{Access, Geometry, SetAssocCache};
use crate::stats::CacheStats;

/// Configuration of the unified L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ul2Config {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Latency of a miss to main memory in cycles ("500+").
    pub miss_latency: u32,
}

impl Ul2Config {
    /// Table 1 configuration: 2 MB, 8-way, 12-cycle hit, 500-cycle miss.
    pub fn table1() -> Self {
        Ul2Config {
            capacity: 2 << 20,
            ways: 8,
            line_bytes: 64,
            hit_latency: 12,
            miss_latency: 500,
        }
    }
}

impl Default for Ul2Config {
    fn default() -> Self {
        Self::table1()
    }
}

/// The unified second-level cache.
///
/// # Examples
///
/// ```
/// use distfront_cache::ul2::{Ul2Config, UnifiedL2};
///
/// let mut ul2 = UnifiedL2::new(Ul2Config::table1());
/// assert_eq!(ul2.access(0x8000), 500); // cold miss costs memory latency
/// assert_eq!(ul2.access(0x8000), 12); // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct UnifiedL2 {
    config: Ul2Config,
    cache: SetAssocCache,
    memory_accesses: u64,
}

impl UnifiedL2 {
    /// Creates an empty UL2.
    pub fn new(config: Ul2Config) -> Self {
        UnifiedL2 {
            cache: SetAssocCache::new(Geometry::from_capacity(
                config.capacity,
                config.ways,
                config.line_bytes,
            )),
            config,
            memory_accesses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> Ul2Config {
        self.config
    }

    /// Accesses `addr`, allocating on miss, and returns the latency charged
    /// (hit or miss latency).
    pub fn access(&mut self, addr: u64) -> u32 {
        match self.cache.access_fill(addr) {
            Access::Hit => self.config.hit_latency,
            Access::Miss => {
                self.memory_accesses += 1;
                self.config.miss_latency
            }
        }
    }

    /// Number of requests that went to main memory.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Tag-array statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table1() {
        let mut ul2 = UnifiedL2::new(Ul2Config::table1());
        assert_eq!(ul2.access(0), 500);
        assert_eq!(ul2.access(0), 12);
        assert_eq!(ul2.memory_accesses(), 1);
    }

    #[test]
    fn capacity_holds_working_set() {
        let mut ul2 = UnifiedL2::new(Ul2Config::table1());
        // 1 MB working set fits within 2 MB.
        for i in 0..16_384u64 {
            ul2.access(i * 64);
        }
        let misses_before = ul2.stats().misses();
        for i in 0..16_384u64 {
            ul2.access(i * 64);
        }
        assert_eq!(ul2.stats().misses(), misses_before, "re-touch missed");
    }

    #[test]
    fn oversized_stream_misses() {
        let mut ul2 = UnifiedL2::new(Ul2Config::table1());
        for i in 0..65_536u64 {
            ul2.access(i * 64); // 4 MB stream through a 2 MB cache
        }
        assert!(!matches!(ul2.access(0), 12), "line 0 survived 4 MB stream");
    }
}
