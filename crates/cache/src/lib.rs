//! Cache substrates for the `distfront` simulator.
//!
//! This crate implements every cache-like structure the paper's processor
//! depends on:
//!
//! * [`set_assoc::SetAssocCache`] — a generic set-associative cache with LRU
//!   replacement, used as the building block for everything below,
//! * [`trace_cache::TraceCache`] — the sub-banked trace cache of §3.2 with
//!   *bank hopping* (§3.2.1, one extra bank, one always Vdd-gated, rotating)
//!   and the *thermal-aware biased mapping function* (§3.2.2),
//! * [`mapping::BankMapTable`] — the 32-entry combination→bank table of
//!   Fig. 9, including the "halve the share per 3 °C above the mean" bias
//!   rule,
//! * [`l1d::L1DataCache`] and [`ul2::UnifiedL2`] — the per-cluster data
//!   caches and the shared second-level cache of Table 1.
//!
//! # Examples
//!
//! ```
//! use distfront_cache::trace_cache::{TraceCache, TraceCacheConfig, TraceKey};
//!
//! let mut tc = TraceCache::new(TraceCacheConfig::baseline_two_banks());
//! let key = TraceKey::new(0x40_0000, 0b101);
//! assert!(!tc.lookup(key)); // cold miss
//! tc.insert(key);
//! assert!(tc.lookup(key));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod l1d;
pub mod mapping;
pub mod set_assoc;
pub mod stats;
pub mod trace_cache;
pub mod ul2;

pub use mapping::{BankMapTable, MappingPolicy, COMBINATIONS};
pub use stats::CacheStats;
pub use trace_cache::{TraceCache, TraceCacheConfig, TraceKey};
