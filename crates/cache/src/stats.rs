//! Hit/miss bookkeeping shared by all cache models.

/// Access statistics for a cache structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lines written into the cache (fills).
    pub fills: u64,
    /// Valid lines overwritten by a fill.
    pub evictions: u64,
    /// Lines discarded by explicit invalidation (e.g. Vdd-gating a bank).
    pub invalidations: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit ratio in `[0, 1]`; `1.0` for an untouched cache so that cold
    /// structures do not read as pathological.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.fills += other.fills;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_hit_rate_is_one() {
        assert_eq!(CacheStats::new().hit_rate(), 1.0);
    }

    #[test]
    fn misses_and_rate() {
        let s = CacheStats {
            accesses: 10,
            hits: 7,
            ..CacheStats::new()
        };
        assert_eq!(s.misses(), 3);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            accesses: 5,
            hits: 2,
            fills: 3,
            evictions: 1,
            invalidations: 0,
        };
        let b = CacheStats {
            accesses: 7,
            hits: 7,
            fills: 0,
            evictions: 0,
            invalidations: 4,
        };
        a.merge(&b);
        assert_eq!(a.accesses, 12);
        assert_eq!(a.hits, 9);
        assert_eq!(a.fills, 3);
        assert_eq!(a.invalidations, 4);
    }
}
