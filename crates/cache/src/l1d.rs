//! Per-cluster first-level data cache (Table 1: 16 KB, 2-way, 1-cycle hit,
//! write-update).
//!
//! Each backend cluster owns one [`L1DataCache`]. On a miss the UL2 is
//! accessed over the memory bus and the line is written into the cache of
//! the cluster where the requesting load resides (González et al. \[13\]).

use crate::set_assoc::{Access, Geometry, SetAssocCache};
use crate::stats::CacheStats;

/// Configuration of a first-level data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl L1Config {
    /// Table 1 configuration: 16 KB, 2-way, 1-cycle hit, 64 B lines.
    pub fn table1() -> Self {
        L1Config {
            capacity: 16 << 10,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        }
    }
}

impl Default for L1Config {
    fn default() -> Self {
        Self::table1()
    }
}

/// A first-level data cache.
///
/// # Examples
///
/// ```
/// use distfront_cache::l1d::{L1Config, L1DataCache};
///
/// let mut l1 = L1DataCache::new(L1Config::table1());
/// assert!(!l1.load(0x1000_0000)); // cold miss
/// assert!(l1.load(0x1000_0000)); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct L1DataCache {
    config: L1Config,
    cache: SetAssocCache,
    loads: u64,
    stores: u64,
}

impl L1DataCache {
    /// Creates an empty cache.
    pub fn new(config: L1Config) -> Self {
        L1DataCache {
            cache: SetAssocCache::new(Geometry::from_capacity(
                config.capacity,
                config.ways,
                config.line_bytes,
            )),
            config,
            loads: 0,
            stores: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> L1Config {
        self.config
    }

    /// Performs a load; returns `true` on hit. Misses allocate the line
    /// (the simulator charges the UL2 latency separately).
    pub fn load(&mut self, addr: u64) -> bool {
        self.loads += 1;
        self.cache.access_fill(addr) == Access::Hit
    }

    /// Performs a store. The paper's caches are write-update, so stores
    /// write the line if present but do not allocate on miss; returns
    /// `true` if the line was present.
    pub fn store(&mut self, addr: u64) -> bool {
        self.stores += 1;
        self.cache.access(addr) == Access::Hit
    }

    /// Installs a line pushed by the write-update protocol (a store on a
    /// remote cluster updating our copy counts as a fill, not an access).
    pub fn update_fill(&mut self, addr: u64) {
        self.cache.fill(addr);
    }

    /// Total loads observed.
    pub fn load_count(&self) -> u64 {
        self.loads
    }

    /// Total stores observed.
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// Tag-array statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_allocates_store_does_not() {
        let mut l1 = L1DataCache::new(L1Config::table1());
        assert!(!l1.store(0x100));
        assert!(!l1.load(0x100), "store must not have allocated");
        assert!(l1.load(0x100), "load must have allocated");
        assert!(l1.store(0x100));
    }

    #[test]
    fn update_fill_installs_silently() {
        let mut l1 = L1DataCache::new(L1Config::table1());
        let before = l1.stats().accesses;
        l1.update_fill(0x2000);
        assert_eq!(l1.stats().accesses, before, "fill counted as access");
        assert!(l1.load(0x2000));
    }

    #[test]
    fn counts_split_loads_and_stores() {
        let mut l1 = L1DataCache::new(L1Config::table1());
        l1.load(0);
        l1.load(64);
        l1.store(0);
        assert_eq!(l1.load_count(), 2);
        assert_eq!(l1.store_count(), 1);
    }

    #[test]
    fn capacity_miss_behaviour() {
        let mut l1 = L1DataCache::new(L1Config::table1());
        // Stream far beyond 16 KB: later re-touch of the start must miss.
        for i in 0..4096u64 {
            l1.load(i * 64);
        }
        assert!(!l1.load(0), "line 0 survived a 256 KB stream");
    }

    #[test]
    fn hit_rate_with_locality() {
        let mut l1 = L1DataCache::new(L1Config::table1());
        for _ in 0..16 {
            for i in 0..64u64 {
                l1.load(i * 64); // 4 KB hot region
            }
        }
        assert!(l1.stats().hit_rate() > 0.9);
    }
}
