//! Dynamic thermal management — the paper's declared future work.
//!
//! §4 of the paper: *"We have not enabled any mechanism to be triggered at
//! a thermal emergency (it is part of our future work). … techniques
//! reducing peak temperatures would reduce the number of times that these
//! mechanisms are initiated."* This module implements that mechanism so
//! the claim can be measured: a global throttle (frequency/fetch scaling,
//! as in Skadron et al. and the Pentium M thermal monitor) engages for the
//! following interval whenever any block crosses the emergency threshold.
//!
//! Throttling stretches wall-clock time for the same work (the activity's
//! energy spreads over a longer interval), which is exactly how
//! frequency-scaling DTM behaves to first order.
//!
//! The trip/hold state machine itself is the shared
//! `Hysteresis` helper in [`crate::dtm`] — the same implementation the
//! DVFS and fetch-gate controllers count their emergencies with — so the
//! legacy controller and the policy library cannot drift on trigger
//! semantics (a continuous violation is exactly one emergency).

use crate::dtm::Hysteresis;

/// A dynamic-thermal-management policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmergencyPolicy {
    /// Engage when any block reaches this temperature (the paper's
    /// emergency limit is 381 K ≈ 107.85 °C).
    pub threshold_c: f64,
    /// Throughput multiplier while engaged (0.5 = half frequency).
    pub throttle_factor: f64,
    /// Intervals the throttle stays engaged once triggered.
    pub hold_intervals: u32,
}

impl EmergencyPolicy {
    /// The paper's emergency limit with a conventional halve-frequency
    /// response held for one interval.
    pub fn paper_limit() -> Self {
        EmergencyPolicy {
            threshold_c: 381.0 - 273.15,
            throttle_factor: 0.5,
            hold_intervals: 1,
        }
    }

    /// A policy with a custom threshold (for studying trigger rates below
    /// the hard limit).
    pub fn with_threshold(threshold_c: f64) -> Self {
        EmergencyPolicy {
            threshold_c,
            ..Self::paper_limit()
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.throttle_factor && self.throttle_factor <= 1.0) {
            return Err(format!(
                "throttle factor {} outside (0, 1]",
                self.throttle_factor
            ));
        }
        if !self.threshold_c.is_finite() || self.threshold_c <= 0.0 {
            return Err(format!("threshold {} invalid", self.threshold_c));
        }
        if self.hold_intervals == 0 {
            return Err("hold must last at least one interval".into());
        }
        Ok(())
    }
}

/// Runtime state of the DTM controller: the shared trip/hold `Hysteresis`
/// state machine from [`crate::dtm`] plus the throttle factor it applies.
#[derive(Debug, Clone)]
pub struct EmergencyController {
    policy: EmergencyPolicy,
    state: Hysteresis,
}

impl EmergencyController {
    /// Creates a controller for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(policy: EmergencyPolicy) -> Self {
        policy
            .validate()
            .unwrap_or_else(|e| panic!("bad DTM policy: {e}"));
        EmergencyController {
            state: Hysteresis::hold(policy.threshold_c, policy.hold_intervals),
            policy,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> EmergencyPolicy {
        self.policy
    }

    /// Observes the end-of-interval block temperatures; returns the
    /// throughput factor to apply to the *next* interval (1.0 = full
    /// speed).
    pub fn observe(&mut self, temps_c: &[f64]) -> f64 {
        let peak = temps_c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if self.state.observe(peak) {
            self.policy.throttle_factor
        } else {
            1.0
        }
    }

    /// Distinct emergencies triggered so far.
    pub fn triggers(&self) -> u64 {
        self.state.triggers()
    }

    /// Intervals spent throttled.
    pub fn throttled_intervals(&self) -> u64 {
        self.state.active_intervals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_limit_is_381_kelvin() {
        let p = EmergencyPolicy::paper_limit();
        assert!((p.threshold_c - 107.85).abs() < 0.01);
        p.validate().unwrap();
    }

    #[test]
    fn cool_chip_never_triggers() {
        let mut c = EmergencyController::new(EmergencyPolicy::paper_limit());
        for _ in 0..100 {
            assert_eq!(c.observe(&[60.0, 70.0, 80.0]), 1.0);
        }
        assert_eq!(c.triggers(), 0);
        assert_eq!(c.throttled_intervals(), 0);
    }

    #[test]
    fn hot_block_engages_throttle() {
        let mut c = EmergencyController::new(EmergencyPolicy::with_threshold(100.0));
        let f = c.observe(&[60.0, 101.0]);
        assert_eq!(f, 0.5);
        assert_eq!(c.triggers(), 1);
        // Cooled again: released after the hold.
        assert_eq!(c.observe(&[60.0, 80.0]), 1.0);
    }

    #[test]
    fn sustained_heat_counts_one_emergency() {
        let mut c = EmergencyController::new(EmergencyPolicy::with_threshold(100.0));
        for _ in 0..5 {
            assert_eq!(c.observe(&[105.0]), 0.5);
        }
        assert_eq!(c.triggers(), 1, "continuous violation is one emergency");
        assert_eq!(c.throttled_intervals(), 5);
    }

    #[test]
    fn re_trigger_after_cooling_counts_again() {
        let mut c = EmergencyController::new(EmergencyPolicy::with_threshold(100.0));
        c.observe(&[105.0]);
        c.observe(&[80.0]);
        c.observe(&[105.0]);
        assert_eq!(c.triggers(), 2);
    }

    #[test]
    fn hold_keeps_throttle_engaged() {
        let mut c = EmergencyController::new(EmergencyPolicy {
            threshold_c: 100.0,
            throttle_factor: 0.25,
            hold_intervals: 3,
        });
        assert_eq!(c.observe(&[101.0]), 0.25);
        assert_eq!(c.observe(&[90.0]), 0.25);
        assert_eq!(c.observe(&[90.0]), 0.25);
        assert_eq!(c.observe(&[90.0]), 1.0);
    }

    #[test]
    fn invalid_policies_rejected() {
        assert!(EmergencyPolicy {
            throttle_factor: 0.0,
            ..EmergencyPolicy::paper_limit()
        }
        .validate()
        .is_err());
        assert!(EmergencyPolicy {
            hold_intervals: 0,
            ..EmergencyPolicy::paper_limit()
        }
        .validate()
        .is_err());
    }
}
