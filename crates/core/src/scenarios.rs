//! Named, self-describing experiment scenarios.
//!
//! A scenario binds an application suite, a processor configuration and a
//! DTM policy into one runnable, comparable unit — the registry covers the
//! paper's technique configurations (Figs. 12–14) plus the DTM design
//! space the techniques are motivated by. Every scenario runs on the
//! parallel [`SweepRunner`] and inherits the engine's bit-identity
//! guarantee: the same scenario at any worker count produces byte-identical
//! CSV/JSON output.
//!
//! The `distfront-scenarios` binary is the command-line front end:
//!
//! ```sh
//! distfront-scenarios --list
//! distfront-scenarios --run dtm-dvfs --uops 100000 --csv out.csv
//! distfront-scenarios --all --smoke --json out.json
//! distfront-scenarios --all --smoke --verify   # serial vs parallel bytes
//! ```
//!
//! Scenario execution is *fault-tolerant*: a cell that fails (e.g. a
//! non-converged warm start) becomes an `Err` outcome in the report — the
//! remaining cells still run, the CSV/JSON emitters publish the partial
//! results, and the summary table counts the failures. The CLI exits with
//! status 2 when any cell failed, listing the failed coordinates.
//!
//! # Examples
//!
//! ```
//! use distfront::scenarios::{self, RunOptions};
//!
//! let scenario = scenarios::by_name("baseline").unwrap();
//! let report = scenario.run(&RunOptions::smoke().with_uops(30_000));
//! assert!(report.is_complete());
//! assert_eq!(report.results().count(), RunOptions::smoke().apps().len());
//! ```

use std::fmt::Write as _;

use distfront_power::LeakageModel;
use distfront_thermal::Integrator;
use distfront_trace::{AppProfile, PhasedProfile, Workload};

use crate::dtm::{DvfsPolicy, FetchGatePolicy, MigrationPolicy};
use crate::emergency::EmergencyPolicy;
use crate::engine::{CellOutcome, SweepReport, SweepRunner, TraceMode};
use crate::experiment::{DtmSpec, ExperimentConfig};
use crate::report::{FigureRow, FigureTable};
use crate::runner::AppResult;

/// Trip temperature for the DTM study scenarios, in °C.
///
/// The paper's hard limit is 381 K (≈ 107.9 °C); the calibrated baseline
/// peaks right at it, so a study trip a few degrees lower guarantees the
/// policies actually engage on the hot applications while the cool ones
/// run free — the regime the paper's §4 discussion is about.
pub const STUDY_TRIP_C: f64 = 100.0;

/// One named experiment: workload suite × configuration × policy.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Registry name (stable; used by `--run`).
    pub name: &'static str,
    /// One-line description shown by `--list`.
    pub summary: &'static str,
    build: fn() -> ExperimentConfig,
    /// Fixed workload suite; `None` runs over the [`RunOptions`] app
    /// suite. Phased/multi-program scenarios pin their own workloads.
    workloads: Option<fn() -> Vec<Workload>>,
}

impl Scenario {
    /// A scenario from its parts (the [`registry`] covers the paper; this
    /// is for ad-hoc scenarios like the CLI's fault injection).
    pub fn new(name: &'static str, summary: &'static str, build: fn() -> ExperimentConfig) -> Self {
        Scenario {
            name,
            summary,
            build,
            workloads: None,
        }
    }

    /// Pins a fixed workload suite (phased profiles, interleavings) in
    /// place of the [`RunOptions`] application suite; returns `self` for
    /// chaining.
    #[must_use]
    pub fn with_workloads(mut self, workloads: fn() -> Vec<Workload>) -> Self {
        self.workloads = Some(workloads);
        self
    }

    /// The scenario's experiment configuration (before run-length scaling).
    pub fn config(&self) -> ExperimentConfig {
        (self.build)()
    }

    /// The workload suite a run with `opts` would execute: the pinned
    /// suite if the scenario has one, otherwise `opts.apps()`.
    pub fn workloads(&self, opts: &RunOptions) -> Vec<Workload> {
        match self.workloads {
            Some(f) => f(),
            None => opts.apps().into_iter().map(Workload::Single).collect(),
        }
    }

    /// Runs the scenario over its workload suite on a [`SweepRunner`] with
    /// `opts.workers` workers. Fault-tolerant: a failing cell becomes an
    /// `Err` outcome in the report, never a panic.
    pub fn run(&self, opts: &RunOptions) -> ScenarioReport {
        self.run_streaming(opts, |_| {})
    }

    /// [`run`](Self::run) with a streaming callback: `on_cell` fires once
    /// per workload as its cell completes (completion order), which is
    /// what the CLI's `--progress` display and incremental CSV emission
    /// hang off.
    pub fn run_streaming(
        &self,
        opts: &RunOptions,
        on_cell: impl Fn(&CellOutcome) + Send + Sync + 'static,
    ) -> ScenarioReport {
        self.run_traced(opts, TraceMode::Live, on_cell)
    }

    /// [`run_streaming`](Self::run_streaming) with an explicit
    /// [`TraceMode`]: `Record` captures every successful cell's activity
    /// into the mode's [`TraceStore`](crate::engine::TraceStore), `Replay`
    /// drives cells from the store where a compatible trace exists and
    /// falls back to live simulation otherwise. Results are byte-identical
    /// across all three modes.
    pub fn run_traced(
        &self,
        opts: &RunOptions,
        mode: TraceMode,
        on_cell: impl Fn(&CellOutcome) + Send + Sync + 'static,
    ) -> ScenarioReport {
        let cfg = self
            .config()
            .with_uops(opts.uops)
            .with_integrator(opts.integrator);
        let workloads = self.workloads(opts);
        // One construction path for every front end: options become a
        // JobSpec, the runner comes from the spec (the builder calls
        // below attach only the runtime handles a pure-data spec cannot
        // carry — see `job`).
        let spec = crate::job::JobSpec::from_options(self.name, opts);
        let report = SweepRunner::from_spec(&spec)
            .with_on_cell(on_cell)
            .with_trace_mode(mode)
            .try_suite_workloads(&cfg, &workloads);
        ScenarioReport {
            scenario: self.name,
            summary: self.summary,
            report,
        }
    }
}

/// A deliberately broken scenario for fault-injection runs: the baseline
/// with a leakage feedback gain far past the stability limit, so every
/// cell's warm start fails with
/// [`EngineError::NotConverged`](crate::engine::EngineError). Not part of
/// the [`registry`]; the CLI's `--inject-fail` appends it so CI can assert
/// the partial-results contract (exit code 2, surviving cells published).
pub fn fault_injection() -> Scenario {
    Scenario::new(
        "fault-injection",
        "baseline with runaway leakage feedback: every cell fails to converge",
        || {
            ExperimentConfig::baseline().with_leakage(LeakageModel {
                ratio_at_ambient: 6.0,
                doubling_celsius: 4.0,
                emergency_c: f64::MAX,
                ..LeakageModel::paper()
            })
        },
    )
}

/// How a scenario run is sized and parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Micro-ops per application.
    pub uops: u64,
    /// Sweep worker count (clamped to the cell count by the runner).
    pub workers: usize,
    /// Smoke mode: a 4-application subset instead of the full 26.
    pub smoke: bool,
    /// Transient integrator (matrix-exponential propagator by default).
    pub integrator: Integrator,
    /// Lockstep batched replay ([`SweepRunner::with_batch`]): group
    /// replay-mode cells into cohorts advanced through one shared batched
    /// propagator. Purely a performance knob — results are bit-identical
    /// either way — and only meaningful under [`TraceMode::Replay`].
    pub batch: bool,
}

impl RunOptions {
    /// The full 26-application evaluation at a CI-friendly run length,
    /// using every available hardware thread.
    pub fn full() -> Self {
        RunOptions {
            uops: 200_000,
            workers: SweepRunner::new().threads(),
            smoke: false,
            integrator: Integrator::default(),
            batch: false,
        }
    }

    /// A fast smoke run: four representative applications at a short run
    /// length.
    pub fn smoke() -> Self {
        RunOptions {
            uops: 40_000,
            smoke: true,
            ..Self::full()
        }
    }

    /// Overrides the run length; returns `self` for chaining.
    pub fn with_uops(mut self, uops: u64) -> Self {
        self.uops = uops;
        self
    }

    /// Overrides the worker count; returns `self` for chaining.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the transient integrator; returns `self` for chaining.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Enables or disables lockstep batched replay; returns `self` for
    /// chaining.
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// The application suite these options select: the full SPEC2000 set,
    /// or in smoke mode `tiny` plus one compute-bound integer, one
    /// memory-bound integer and one streaming FP application.
    pub fn apps(&self) -> Vec<AppProfile> {
        if self.smoke {
            ["gzip", "mcf", "swim"]
                .iter()
                .map(|n| *AppProfile::by_name(n).expect("smoke app exists"))
                .chain(std::iter::once(AppProfile::test_tiny()))
                .collect()
        } else {
            AppProfile::spec2000().to_vec()
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self::full()
    }
}

/// The results of one scenario over its application suite.
///
/// Equality (like the underlying [`SweepReport`]'s) covers the outcomes —
/// error cells included — but not per-cell wall times, so serial and
/// parallel runs of the same scenario compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Scenario description.
    pub summary: &'static str,
    /// One outcome per application, in suite order (a one-row sweep).
    pub report: SweepReport,
}

impl ScenarioReport {
    /// Per-application outcomes, in suite order.
    pub fn outcomes(&self) -> &[CellOutcome] {
        self.report.cells()
    }

    /// The successful results, in suite order.
    pub fn results(&self) -> impl Iterator<Item = &AppResult> {
        self.outcomes()
            .iter()
            .filter_map(|c| c.result.as_ref().ok())
    }

    /// The failed cells, in suite order.
    pub fn failures(&self) -> impl Iterator<Item = &CellOutcome> {
        self.report.failures()
    }

    /// How many cells failed.
    pub fn failed(&self) -> usize {
        self.report.failed()
    }

    /// Whether every application produced a result.
    pub fn is_complete(&self) -> bool {
        self.report.is_complete()
    }
}

/// Phased workloads for the `phased-hot-cold` scenario: long alternating
/// slices of a hot compute-bound application and a cooler memory-bound
/// one, so the thermal trajectory actually follows the phases.
fn hot_cold_workloads() -> Vec<Workload> {
    let p = |n| *AppProfile::by_name(n).expect("registry profile exists");
    vec![
        Workload::Phased(PhasedProfile::alternating(
            "crafty-mcf",
            p("crafty"),
            p("mcf"),
            25_000,
        )),
        Workload::Phased(PhasedProfile::alternating(
            "gzip-art",
            p("gzip"),
            p("art"),
            25_000,
        )),
    ]
}

/// Phased workloads for the `phased-ramp` scenario: three-phase cycles
/// stepping compute-bound → memory-bound → FP-streaming behaviour.
fn ramp_workloads() -> Vec<Workload> {
    use distfront_trace::Phase;
    let p = |n| *AppProfile::by_name(n).expect("registry profile exists");
    let ramp = |name, a, b, c| {
        Workload::Phased(PhasedProfile::new(
            name,
            [a, b, c]
                .into_iter()
                .map(|n| Phase {
                    profile: p(n),
                    uops: 20_000,
                })
                .collect(),
        ))
    };
    vec![
        ramp("gzip-mcf-swim", "gzip", "mcf", "swim"),
        ramp("crafty-art-mgrid", "crafty", "art", "mgrid"),
    ]
}

/// Multi-program workloads for the `multiprog-timeslice` scenario: OS-style
/// round-robin interleavings with short quanta, each program in its own
/// address-space slab (context switches thrash the trace cache).
fn multiprog_workloads() -> Vec<Workload> {
    let p = |n| *AppProfile::by_name(n).expect("registry profile exists");
    vec![
        Workload::Phased(PhasedProfile::interleaving(
            "gzip+swim",
            &[p("gzip"), p("swim")],
            4_000,
        )),
        Workload::Phased(PhasedProfile::interleaving(
            "int4-mix",
            &[p("gzip"), p("mcf"), p("crafty"), p("bzip2")],
            2_000,
        )),
    ]
}

/// Every scenario in presentation order: the paper's technique ladder
/// first, then the DTM policy study, then the phased/multi-program
/// workload studies.
pub fn registry() -> Vec<Scenario> {
    fn s(name: &'static str, summary: &'static str, build: fn() -> ExperimentConfig) -> Scenario {
        Scenario::new(name, summary, build)
    }
    vec![
        s(
            "baseline",
            "centralized frontend, two-banked trace cache, no thermal management",
            ExperimentConfig::baseline,
        ),
        s(
            "drc",
            "distributed rename/commit (Fig. 12): bi-clustered frontend, +1 commit cycle",
            ExperimentConfig::distributed_rename_commit,
        ),
        s(
            "bank-hopping",
            "trace-cache bank hopping (Fig. 13): 2+1 banks, rotating Vdd-gated spare",
            ExperimentConfig::bank_hopping,
        ),
        s(
            "bh+ab",
            "bank hopping + thermal-aware biased mapping (Fig. 13)",
            ExperimentConfig::hopping_and_biasing,
        ),
        s(
            "drc+bh+ab",
            "the full distributed frontend (Fig. 14): every technique combined",
            ExperimentConfig::combined,
        ),
        s(
            "dtm-emergency",
            "baseline + conventional halve-the-clock emergency throttle",
            || {
                ExperimentConfig::baseline().with_dtm(DtmSpec::Emergency(
                    EmergencyPolicy::with_threshold(STUDY_TRIP_C),
                ))
            },
        ),
        s(
            "dtm-dvfs",
            "baseline + global DVFS (70% f, 85% V) with leakage at the scaled point",
            || {
                ExperimentConfig::baseline()
                    .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::with_trip(STUDY_TRIP_C)))
            },
        ),
        s(
            "dtm-fetch-gate",
            "baseline + half-duty fetch toggling when hot",
            || {
                ExperimentConfig::baseline()
                    .with_dtm(DtmSpec::FetchGate(FetchGatePolicy::with_trip(STUDY_TRIP_C)))
            },
        ),
        s(
            "dtm-migration",
            "distributed frontend + activity migration toward the cooler partition",
            || {
                ExperimentConfig::distributed_rename_commit()
                    .with_dtm(DtmSpec::Migration(MigrationPolicy::with_trip(STUDY_TRIP_C)))
            },
        ),
        s(
            "technique-ladder-dvfs",
            "full distributed frontend + global DVFS: the combined-technique ladder rung",
            || {
                ExperimentConfig::combined()
                    .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::with_trip(STUDY_TRIP_C)))
            },
        ),
        s(
            "technique-ladder-fetch-gate",
            "full distributed frontend + half-duty fetch gating when hot",
            || {
                ExperimentConfig::combined()
                    .with_dtm(DtmSpec::FetchGate(FetchGatePolicy::with_trip(STUDY_TRIP_C)))
            },
        ),
        s(
            "technique-ladder-migration",
            "full distributed frontend + activity migration toward the cooler partition",
            || {
                ExperimentConfig::combined()
                    .with_dtm(DtmSpec::Migration(MigrationPolicy::with_trip(STUDY_TRIP_C)))
            },
        ),
        s(
            "phased-hot-cold",
            "baseline over alternating hot-compute / cool-memory phase pairs",
            ExperimentConfig::baseline,
        )
        .with_workloads(hot_cold_workloads),
        s(
            "phased-ramp",
            "baseline over compute -> memory -> FP-streaming three-phase ramps",
            ExperimentConfig::baseline,
        )
        .with_workloads(ramp_workloads),
        s(
            "multiprog-timeslice",
            "baseline over round-robin multi-program interleavings (short quanta)",
            ExperimentConfig::baseline,
        )
        .with_workloads(multiprog_workloads),
        s(
            "phased-dtm-emergency",
            "emergency throttle over the hot/cold phase pairs (replay-exact DTM)",
            || {
                ExperimentConfig::baseline().with_dtm(DtmSpec::Emergency(
                    EmergencyPolicy::with_threshold(STUDY_TRIP_C),
                ))
            },
        )
        .with_workloads(hot_cold_workloads),
    ]
}

/// Looks a scenario up by registry name.
pub fn by_name(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The CSV header matching [`to_csv`]'s rows.
pub const CSV_HEADER: &str = "scenario,app,cycles,uops,ipc,cpi,tc_hit_rate,mispredict_rate,\
avg_power_w,wall_time_s,emergencies,throttled_intervals,over_limit_s,\
proc_abs_max_c,proc_average_c,proc_avg_max_c,frontend_abs_max_c,frontend_average_c,\
trace_cache_abs_max_c,rob_abs_max_c,rat_abs_max_c";

/// One CSV row (no trailing newline) for a successful result, matching
/// [`CSV_HEADER`]. Public so streaming emitters (the CLI's incremental
/// CSV) produce bytes identical to [`to_csv`]'s.
pub fn csv_row(scenario: &str, r: &AppResult) -> String {
    let t = &r.temps;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        scenario,
        r.app,
        r.cycles,
        r.uops,
        r.ipc,
        r.cpi,
        r.tc_hit_rate,
        r.mispredict_rate,
        r.avg_power_w,
        r.wall_time_s,
        r.emergencies,
        r.throttled_intervals,
        r.over_limit_s,
        t.processor.abs_max_c,
        t.processor.average_c,
        t.processor.avg_max_c,
        t.frontend.abs_max_c,
        t.frontend.average_c,
        t.trace_cache.abs_max_c,
        t.rob.abs_max_c,
        t.rat.abs_max_c,
    )
}

/// Renders scenario reports as CSV (header + one row per *successful*
/// scenario × app cell; failed cells are reported out-of-band, so a
/// partially failed suite still yields a usable partial CSV).
///
/// Results are bit-identical across worker counts, and every float is
/// formatted with Rust's shortest-roundtrip `Display`, so the bytes are
/// identical too — error cells included, since an engine failure is as
/// deterministic as a result.
pub fn to_csv(reports: &[ScenarioReport]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for rep in reports {
        for r in rep.results() {
            out.push_str(&csv_row(rep.scenario, r));
            out.push('\n');
        }
    }
    out
}

/// Renders scenario reports as a JSON document (an object with a
/// `scenarios` array; same fields as the CSV, nested per application,
/// plus a `failures` array naming any failed cells and their errors).
pub fn to_json(reports: &[ScenarioReport]) -> String {
    let mut out = String::from("{\n  \"scenarios\": [");
    for (i, rep) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "\n    {{\n      \"name\": \"{}\",\n      \"summary\": \"{}\",\n      \"results\": [",
            rep.scenario, rep.summary
        )
        .expect("writing to a String cannot fail");
        for (j, r) in rep.results().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let t = &r.temps;
            write!(
                out,
                "\n        {{\"app\": \"{}\", \"cycles\": {}, \"uops\": {}, \"ipc\": {}, \
                 \"cpi\": {}, \"tc_hit_rate\": {}, \"mispredict_rate\": {}, \
                 \"avg_power_w\": {}, \"wall_time_s\": {}, \"emergencies\": {}, \
                 \"throttled_intervals\": {}, \"over_limit_s\": {}, \
                 \"proc_abs_max_c\": {}, \"proc_average_c\": {}, \"proc_avg_max_c\": {}, \
                 \"frontend_abs_max_c\": {}, \"frontend_average_c\": {}, \
                 \"trace_cache_abs_max_c\": {}, \"rob_abs_max_c\": {}, \"rat_abs_max_c\": {}}}",
                r.app,
                r.cycles,
                r.uops,
                r.ipc,
                r.cpi,
                r.tc_hit_rate,
                r.mispredict_rate,
                r.avg_power_w,
                r.wall_time_s,
                r.emergencies,
                r.throttled_intervals,
                r.over_limit_s,
                t.processor.abs_max_c,
                t.processor.average_c,
                t.processor.avg_max_c,
                t.frontend.abs_max_c,
                t.frontend.average_c,
                t.trace_cache.abs_max_c,
                t.rob.abs_max_c,
                t.rat.abs_max_c,
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("\n      ],\n      \"failures\": [");
        for (j, cell) in rep.failures().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let err = cell.result.as_ref().unwrap_err();
            write!(
                out,
                "\n        {{\"app\": \"{}\", \"error\": \"{err}\"}}",
                cell.app_name
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// A per-scenario summary (suite means and peaks) ready to print. Means
/// cover the *successful* cells; the final `Failed` column counts the
/// cells that produced no result (a scenario with failures still gets a
/// summary row from its surviving cells).
pub fn summary_table(reports: &[ScenarioReport]) -> FigureTable {
    let rows = reports
        .iter()
        .map(|rep| {
            let ok: Vec<&AppResult> = rep.results().collect();
            let n = ok.len().max(1) as f64;
            // `+ 0.0` turns an empty sum's -0.0 into an unsigned zero.
            let mean =
                |f: &dyn Fn(&AppResult) -> f64| (ok.iter().map(|r| f(r)).sum::<f64>() + 0.0) / n;
            let peak = ok
                .iter()
                .map(|r| r.temps.processor.abs_max_c)
                .fold(f64::NEG_INFINITY, f64::max);
            FigureRow {
                label: rep.scenario.to_string(),
                values: vec![
                    mean(&|r| r.ipc),
                    mean(&|r| r.cpi),
                    mean(&|r| r.avg_power_w),
                    if ok.is_empty() { f64::NAN } else { peak },
                    mean(&|r| r.temps.processor.average_c),
                    mean(&|r| r.temps.frontend.abs_max_c),
                    ok.iter().map(|r| r.emergencies).sum::<u64>() as f64,
                    ok.iter().map(|r| r.throttled_intervals).sum::<u64>() as f64,
                    mean(&|r| r.over_limit_s) * 1e3,
                    rep.failed() as f64,
                ],
            }
        })
        .collect();
    FigureTable {
        id: "scenarios",
        title: "Scenario summary (suite means over surviving cells; temperatures in C)".into(),
        columns: [
            "IPC",
            "CPI",
            "Power(W)",
            "PeakT",
            "AvgT",
            "FE PeakT",
            "Emerg.",
            "Throttled",
            "OverLim(ms)",
            "Failed",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated_and_unique() {
        let reg = registry();
        assert!(reg.len() >= 6, "need at least six scenarios");
        let mut names: Vec<_> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
        let opts = RunOptions::smoke();
        for s in &reg {
            s.config()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.summary.is_empty());
            // Every workload a scenario would run — pinned phased suites
            // included — validates, and names are unique within the suite
            // (they become CSV rows and trace-store keys).
            let workloads = s.workloads(&opts);
            assert!(!workloads.is_empty(), "{}: empty suite", s.name);
            let mut wnames = Vec::new();
            for w in &workloads {
                w.validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", s.name, w.name()));
                assert!(!w.name().contains(','), "{}: comma in name", w.name());
                wnames.push(w.name());
            }
            wnames.sort_unstable();
            wnames.dedup();
            assert_eq!(wnames.len(), workloads.len(), "{}: dup workload", s.name);
        }
    }

    #[test]
    fn registry_includes_phased_and_multiprogram_scenarios() {
        let phased: Vec<_> = registry()
            .into_iter()
            .filter(|s| {
                s.workloads(&RunOptions::smoke())
                    .iter()
                    .any(|w| matches!(w, Workload::Phased(_)))
            })
            .collect();
        assert!(
            phased.len() >= 3,
            "need at least three phased/multi-program scenarios, got {}",
            phased.len()
        );
        assert!(phased.iter().any(|s| s.name == "multiprog-timeslice"));
    }

    #[test]
    fn phased_scenario_runs_and_reports_its_workload_names() {
        let opts = RunOptions::smoke().with_uops(30_000).with_workers(2);
        let report = by_name("phased-hot-cold").unwrap().run(&opts);
        assert!(report.is_complete());
        let apps: Vec<_> = report.results().map(|r| r.app).collect();
        assert_eq!(apps, vec!["crafty-mcf", "gzip-art"]);
        let csv = to_csv(std::slice::from_ref(&report));
        assert!(csv.contains("phased-hot-cold,crafty-mcf,"));
    }

    #[test]
    fn by_name_finds_every_scenario() {
        for s in registry() {
            assert_eq!(by_name(s.name).unwrap().name, s.name);
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn smoke_suite_is_small_and_mixed() {
        let apps = RunOptions::smoke().apps();
        assert_eq!(apps.len(), 4);
        assert!(apps.iter().any(|a| a.is_fp));
        assert!(apps.iter().any(|a| !a.is_fp));
        assert_eq!(RunOptions::full().apps().len(), 26);
    }

    #[test]
    fn csv_and_json_cover_every_cell() {
        let opts = RunOptions::smoke().with_uops(20_000).with_workers(2);
        let reports = vec![
            by_name("baseline").unwrap().run(&opts),
            by_name("dtm-emergency").unwrap().run(&opts),
        ];
        let csv = to_csv(&reports);
        assert_eq!(csv.lines().count(), 1 + 2 * opts.apps().len());
        assert!(csv.starts_with("scenario,app,"));
        assert!(csv.contains("dtm-emergency,tiny,"));
        let json = to_json(&reports);
        assert!(json.contains("\"name\": \"baseline\""));
        assert_eq!(json.matches("\"app\":").count(), 2 * opts.apps().len());
        let table = summary_table(&reports);
        assert_eq!(table.rows.len(), 2);
        assert!(table.value("baseline", 0).unwrap() > 0.0, "IPC positive");
        assert_eq!(table.value("baseline", 9), Some(0.0), "no failed cells");
    }

    #[test]
    fn streamed_rows_reassemble_into_to_csv() {
        use std::sync::{Arc, Mutex};
        let opts = RunOptions::smoke().with_uops(20_000).with_workers(2);
        let rows = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&rows);
        let report = by_name("baseline")
            .unwrap()
            .run_streaming(&opts, move |cell| {
                if let Ok(r) = &cell.result {
                    sink.lock()
                        .unwrap()
                        .push((cell.app, csv_row("baseline", r)));
                }
            });
        // Streamed rows arrive in completion order; sorted by suite index
        // they are byte-identical to the canonical emitter's.
        let mut rows = rows.lock().unwrap().clone();
        rows.sort_by_key(|(app, _)| *app);
        let streamed: Vec<String> = rows.into_iter().map(|(_, row)| row).collect();
        let canonical: Vec<String> = to_csv(std::slice::from_ref(&report))
            .lines()
            .skip(1)
            .map(str::to_owned)
            .collect();
        assert_eq!(streamed, canonical);
    }

    #[test]
    fn fault_injection_scenario_fails_every_cell_without_panicking() {
        let opts = RunOptions::smoke().with_uops(20_000).with_workers(2);
        let report = fault_injection().run(&opts);
        assert_eq!(report.failed(), opts.apps().len());
        assert!(!report.is_complete());
        assert_eq!(report.results().count(), 0);
        for cell in report.failures() {
            assert!(
                matches!(
                    cell.result,
                    Err(crate::engine::EngineError::NotConverged(_))
                ),
                "{}: unexpected error kind",
                cell.label()
            );
        }
        // The emitters degrade instead of aborting: an all-failed scenario
        // is a header-only CSV, a failures-only JSON, and a summary row
        // whose Failed column carries the count.
        let reports = [report];
        assert_eq!(to_csv(&reports), format!("{CSV_HEADER}\n"));
        let json = to_json(&reports);
        assert_eq!(
            json.matches("\"error\": \"not converged").count(),
            opts.apps().len()
        );
        let table = summary_table(&reports);
        assert_eq!(
            table.value("fault-injection", 9),
            Some(opts.apps().len() as f64)
        );
    }
}
