//! The unified sweep-job API: [`JobSpec`], [`StatusCode`] and the
//! content-address fingerprint shared by every execution front end.
//!
//! Before this module, "what to run and how" was scattered: the
//! [`SweepRunner`]'s
//! `with_threads`/`with_batch`/`with_trace_mode` builder calls, the
//! scenarios CLI's positional flags, and [`RunOptions`] each carried a
//! partial, mutually untranslatable description of a job. A [`JobSpec`]
//! is the single source of truth: a pure-data, versioned, line-serializable
//! description that the one-shot CLI, the `distfront-sweepd` daemon
//! protocol and the test harness all construct — and that
//! [`SweepRunner::from_spec`](crate::engine::SweepRunner::from_spec)
//! turns into a configured runner. The builder methods survive as a
//! compatibility shim over the same fields, so existing callers keep
//! compiling.
//!
//! # Wire format and version policy
//!
//! A spec serializes to one line of space-separated `key=value` tokens
//! (no quoting — registry names never contain whitespace, which
//! [`JobSpec::validate`] enforces), opened by a `v=` version token:
//!
//! ```text
//! v=1 kind=scenario name=baseline smoke=1 uops=40000 workers=0 integrator=expm batch=0 trace=live class=interactive
//! ```
//!
//! The version follows the trace-format policy (see
//! [`distfront_trace::record`]): [`JOBSPEC_VERSION`] is bumped on any
//! change to the token set or semantics, decoding rejects unknown
//! versions and unknown keys outright, and there is no cross-version
//! migration path — a stale client re-encodes, it never guesses.
//! Scheduling-only keys may default when omitted; result-affecting keys
//! are part of the [fingerprint](JobSpec::fingerprint) either way.
//!
//! # Content addressing
//!
//! [`JobSpec::fingerprint`] is the key the daemon's result cache dedupes
//! jobs under. It covers exactly the inputs the result bytes are a
//! function of — the target, run length, integrator, and every resolved
//! configuration's content (leakage-model bits included — the warm-start
//! key lesson) — **plus** the trace-format version via the seeded
//! [`Fingerprint`] hasher, and excludes pure scheduling knobs (`workers`,
//! `batch`, `class`, `trace`), which the engine's bit-identity contract
//! guarantees cannot change a byte of output. A golden-fingerprint test
//! pins the key for a reference scenario so it can never silently change
//! across refactors.

use std::process::ExitCode;
use std::sync::Arc;

use distfront_thermal::Integrator;
use distfront_trace::record::points_id;
use distfront_trace::{AppProfile, Fingerprint, Workload};

use crate::engine::{CellOutcome, SweepReport, SweepRunner, TraceMode, TraceStore, WarmStartCache};
use crate::experiment::ExperimentConfig;
use crate::scenarios::{self, csv_row, RunOptions};

/// Current [`JobSpec`] wire-format version; see the module docs for the
/// policy.
pub const JOBSPEC_VERSION: u32 = 1;

/// One exit/status vocabulary shared by the CLI's process exit codes and
/// the daemon's `DONE`/`ERR` response frames, so client and server can
/// never disagree on what a number means.
///
/// The numeric values are the scenarios CLI's historical exit codes
/// (0/1/2/3/4/64) and are part of the wire format: they are transmitted
/// in `DONE` frames and compared by CI gates, so they must never be
/// renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StatusCode {
    /// Every cell produced a result and every output was written.
    Ok = 0,
    /// `--verify` found the run diverging from a serial live re-run.
    VerifyDiverged = 1,
    /// One or more cells failed; surviving results were still published.
    CellsFailed = 2,
    /// Results were computed but an output or connection failed
    /// (I/O — the invocation was fine, data was lost).
    Io = 3,
    /// `--verify` found batched replay diverging from serial replay (a
    /// batching bug specifically, distinct from [`VerifyDiverged`]'s
    /// run-vs-live meaning).
    ///
    /// [`VerifyDiverged`]: StatusCode::VerifyDiverged
    BatchDiverged = 4,
    /// A multi-process run lost a whole shard: one of the coordinator's
    /// worker processes kept dying (or kept leaving an invalid result
    /// artifact) until its bounded retries ran out, so the merged report
    /// is missing that shard's cells. Distinct from
    /// [`CellsFailed`](StatusCode::CellsFailed), which means every cell
    /// *ran* and some produced `Err` outcomes — a shard failure means
    /// cells never reported at all.
    ShardFailed = 5,
    /// Command-line or request misuse (BSD `EX_USAGE`; a malformed or
    /// unresolvable [`JobSpec`] maps here).
    Usage = 64,
}

impl StatusCode {
    /// Every status, in ascending code order.
    pub const ALL: [StatusCode; 7] = [
        StatusCode::Ok,
        StatusCode::VerifyDiverged,
        StatusCode::CellsFailed,
        StatusCode::Io,
        StatusCode::BatchDiverged,
        StatusCode::ShardFailed,
        StatusCode::Usage,
    ];

    /// The process exit / wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The stable wire name (`ok`, `verify-diverged`, `cells-failed`,
    /// `io`, `batch-diverged`, `shard-failed`, `usage`).
    pub fn name(self) -> &'static str {
        match self {
            StatusCode::Ok => "ok",
            StatusCode::VerifyDiverged => "verify-diverged",
            StatusCode::CellsFailed => "cells-failed",
            StatusCode::Io => "io",
            StatusCode::BatchDiverged => "batch-diverged",
            StatusCode::ShardFailed => "shard-failed",
            StatusCode::Usage => "usage",
        }
    }

    /// Parses a wire code back to the status it names.
    pub fn from_code(code: u8) -> Option<StatusCode> {
        StatusCode::ALL.into_iter().find(|s| s.code() == code)
    }

    /// The more severe of two statuses, for folding per-job statuses into
    /// one process exit: any failure beats [`Ok`](StatusCode::Ok), and
    /// between failures the numerically smaller (more result-specific)
    /// code wins — usage/I-O errors never mask a divergence.
    #[must_use]
    pub fn worst(self, other: StatusCode) -> StatusCode {
        match (self, other) {
            (StatusCode::Ok, s) | (s, StatusCode::Ok) => s,
            (a, b) => {
                if a.code() <= b.code() {
                    a
                } else {
                    b
                }
            }
        }
    }
}

impl std::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<StatusCode> for ExitCode {
    fn from(s: StatusCode) -> ExitCode {
        ExitCode::from(s.code())
    }
}

/// What a job runs: a registry scenario, or a raw configuration ×
/// application grid named by presets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobTarget {
    /// One scenario from [`scenarios::registry`] (or the CLI's
    /// `fault-injection` scenario), run over its workload suite.
    Scenario(String),
    /// An explicit grid: [`ExperimentConfig`] preset names ×
    /// [`AppProfile`] names.
    Grid {
        /// Configuration preset names ([`ExperimentConfig::by_name`]).
        configs: Vec<String>,
        /// Application profile names ([`AppProfile::by_name`]).
        apps: Vec<String>,
    },
}

/// How a job interacts with the executor's trace store — the pure-data
/// counterpart of [`TraceMode`], which carries live store handles and so
/// cannot go over a wire. The daemon binds these to its process-wide
/// store; the one-shot CLI binds them to a per-invocation store loaded
/// from / saved to a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSpec {
    /// Simulate every cell live.
    #[default]
    Live,
    /// Simulate live and record each successful, replay-safe cell into
    /// the executor's trace store.
    Record,
    /// Replay cells from the executor's trace store where a compatible
    /// trace exists; fall back to live simulation otherwise.
    Replay,
}

impl TraceSpec {
    fn name(self) -> &'static str {
        match self {
            TraceSpec::Live => "live",
            TraceSpec::Record => "record",
            TraceSpec::Replay => "replay",
        }
    }

    fn parse(s: &str) -> Option<TraceSpec> {
        match s {
            "live" => Some(TraceSpec::Live),
            "record" => Some(TraceSpec::Record),
            "replay" => Some(TraceSpec::Replay),
            _ => None,
        }
    }

    /// Binds the spec to a concrete store, yielding the engine-level
    /// [`TraceMode`].
    pub fn bind(self, store: &Arc<TraceStore>) -> TraceMode {
        match self {
            TraceSpec::Live => TraceMode::Live,
            TraceSpec::Record => TraceMode::Record(Arc::clone(store)),
            TraceSpec::Replay => TraceMode::Replay(Arc::clone(store)),
        }
    }
}

/// The daemon's two job classes, after the deferrable-vs-realtime split
/// of carbon-aware cluster schedulers: interactive jobs are
/// latency-sensitive and run ahead on their own executor; deferrable
/// jobs (bulk grids) queue behind each other and never delay an
/// interactive submission.
///
/// Purely a scheduling property: the class is excluded from the content
/// fingerprint, so an interactive job is served from a result a
/// deferrable job cached, and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobClass {
    /// Latency-sensitive; dispatched to the dedicated run-ahead executor.
    #[default]
    Interactive,
    /// Bulk/batch; queued on the deferrable executor.
    Deferrable,
}

impl JobClass {
    /// The stable wire name (`interactive` / `deferrable`).
    pub fn name(self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Deferrable => "deferrable",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<JobClass> {
        match s {
            "interactive" => Some(JobClass::Interactive),
            "deferrable" => Some(JobClass::Deferrable),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Why a [`JobSpec`] failed to decode, validate or resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpecError {
    /// The line's `v=` token names a version this build does not speak.
    UnsupportedVersion(u32),
    /// The line contains a token this version does not define.
    UnknownKey(String),
    /// A token's value failed to parse, with the offending `key=value`.
    BadValue(String),
    /// A required token is missing.
    MissingKey(&'static str),
    /// The spec references a scenario, configuration or application name
    /// the registries do not know.
    UnknownName(String),
    /// A structural invariant failed (empty grid, whitespace in a name).
    Invalid(String),
}

impl std::fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobSpecError::UnsupportedVersion(v) => write!(
                f,
                "unsupported jobspec version {v} (this build speaks {JOBSPEC_VERSION})"
            ),
            JobSpecError::UnknownKey(k) => write!(f, "unknown jobspec key {k}"),
            JobSpecError::BadValue(t) => write!(f, "bad jobspec value {t}"),
            JobSpecError::MissingKey(k) => write!(f, "jobspec missing required key {k}"),
            JobSpecError::UnknownName(n) => write!(f, "unknown name {n} (try --list)"),
            JobSpecError::Invalid(msg) => write!(f, "invalid jobspec: {msg}"),
        }
    }
}

impl std::error::Error for JobSpecError {}

/// A complete, serializable description of one sweep job.
///
/// See the [module docs](self) for the wire format, version policy and
/// fingerprint semantics.
///
/// # Examples
///
/// ```
/// use distfront::job::{JobClass, JobSpec};
///
/// let spec = JobSpec::scenario("baseline")
///     .with_smoke(true)
///     .with_uops(30_000)
///     .with_class(JobClass::Deferrable);
/// let line = spec.encode_line();
/// assert_eq!(JobSpec::parse_line(&line).unwrap(), spec);
/// let report = spec.execute(&Default::default(), |_| {}).unwrap();
/// assert_eq!(report.status(), distfront::job::StatusCode::Ok);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Wire-format version ([`JOBSPEC_VERSION`]).
    pub version: u32,
    /// What to run.
    pub target: JobTarget,
    /// Smoke-suite selection for scenario targets (ignored by grids,
    /// whose applications are explicit).
    pub smoke: bool,
    /// Micro-ops per application.
    pub uops: u64,
    /// Sweep worker count; `0` means "every available hardware thread",
    /// resolved by the executor.
    pub workers: usize,
    /// Transient integrator.
    pub integrator: Integrator,
    /// Lockstep batched replay (scheduling-only; results are
    /// bit-identical either way).
    pub batch: bool,
    /// Trace-store interaction.
    pub trace: TraceSpec,
    /// Scheduling class.
    pub class: JobClass,
}

impl JobSpec {
    /// A spec running one registry scenario with the full-suite defaults.
    pub fn scenario(name: impl Into<String>) -> Self {
        JobSpec {
            version: JOBSPEC_VERSION,
            target: JobTarget::Scenario(name.into()),
            smoke: false,
            uops: RunOptions::full().uops,
            workers: 0,
            integrator: Integrator::default(),
            batch: false,
            trace: TraceSpec::Live,
            class: JobClass::Interactive,
        }
    }

    /// A spec running an explicit configuration × application grid.
    pub fn grid(
        configs: impl IntoIterator<Item = impl Into<String>>,
        apps: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        JobSpec {
            target: JobTarget::Grid {
                configs: configs.into_iter().map(Into::into).collect(),
                apps: apps.into_iter().map(Into::into).collect(),
            },
            ..Self::scenario("")
        }
    }

    /// The spec a scenario run with `opts` corresponds to — the bridge
    /// from the legacy [`RunOptions`] surface onto the unified API.
    pub fn from_options(scenario: &str, opts: &RunOptions) -> Self {
        JobSpec {
            smoke: opts.smoke,
            uops: opts.uops,
            workers: opts.workers,
            integrator: opts.integrator,
            batch: opts.batch,
            ..Self::scenario(scenario)
        }
    }

    /// The [`RunOptions`] view of this spec (scenario workload selection
    /// and runner sizing).
    pub fn run_options(&self) -> RunOptions {
        let base = if self.smoke {
            RunOptions::smoke()
        } else {
            RunOptions::full()
        };
        let workers = if self.workers == 0 {
            SweepRunner::new().threads()
        } else {
            self.workers
        };
        base.with_uops(self.uops)
            .with_workers(workers)
            .with_integrator(self.integrator)
            .with_batch(self.batch)
    }

    /// Sets the smoke flag; returns `self` for chaining.
    #[must_use]
    pub fn with_smoke(mut self, smoke: bool) -> Self {
        self.smoke = smoke;
        if smoke && self.uops == RunOptions::full().uops {
            self.uops = RunOptions::smoke().uops;
        }
        self
    }

    /// Sets the run length; returns `self` for chaining.
    #[must_use]
    pub fn with_uops(mut self, uops: u64) -> Self {
        self.uops = uops;
        self
    }

    /// Sets the worker count (`0` = all hardware threads); returns `self`
    /// for chaining.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the integrator; returns `self` for chaining.
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Sets batched replay; returns `self` for chaining.
    #[must_use]
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the trace interaction; returns `self` for chaining.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the scheduling class; returns `self` for chaining.
    #[must_use]
    pub fn with_class(mut self, class: JobClass) -> Self {
        self.class = class;
        self
    }

    /// Serializes the spec to its canonical one-line wire form (every
    /// token present, canonical order). `parse_line` inverts this
    /// byte-exactly.
    pub fn encode_line(&self) -> String {
        let mut line = format!("v={}", self.version);
        match &self.target {
            JobTarget::Scenario(name) => {
                line.push_str(" kind=scenario name=");
                line.push_str(name);
            }
            JobTarget::Grid { configs, apps } => {
                line.push_str(" kind=grid configs=");
                line.push_str(&configs.join(","));
                line.push_str(" apps=");
                line.push_str(&apps.join(","));
            }
        }
        line.push_str(&format!(
            " smoke={} uops={} workers={} integrator={} batch={} trace={} class={}",
            u8::from(self.smoke),
            self.uops,
            self.workers,
            self.integrator,
            u8::from(self.batch),
            self.trace.name(),
            self.class.name(),
        ));
        line
    }

    /// Parses a wire line produced by [`encode_line`](Self::encode_line)
    /// (or written by hand: scheduling tokens may be omitted and take
    /// their defaults; `v=`, `kind=` and the target tokens are required).
    ///
    /// # Errors
    ///
    /// Rejects unknown versions, unknown keys and malformed values
    /// outright — see the module docs' version policy.
    pub fn parse_line(line: &str) -> Result<JobSpec, JobSpecError> {
        let mut version = None;
        let mut kind = None;
        let mut name = None;
        let mut configs = None;
        let mut apps = None;
        let mut smoke = false;
        let mut uops = None;
        let mut workers = 0usize;
        let mut integrator = Integrator::default();
        let mut batch = false;
        let mut trace = TraceSpec::Live;
        let mut class = JobClass::Interactive;
        let bad = |tok: &str| JobSpecError::BadValue(tok.to_string());
        for tok in line.split_ascii_whitespace() {
            let (key, value) = tok.split_once('=').ok_or_else(|| bad(tok))?;
            match key {
                "v" => version = Some(value.parse::<u32>().map_err(|_| bad(tok))?),
                "kind" => kind = Some(value.to_string()),
                "name" => name = Some(value.to_string()),
                "configs" => configs = Some(split_list(value)),
                "apps" => apps = Some(split_list(value)),
                "smoke" => smoke = parse_flag(value).ok_or_else(|| bad(tok))?,
                "uops" => uops = Some(value.parse::<u64>().map_err(|_| bad(tok))?),
                "workers" => workers = value.parse::<usize>().map_err(|_| bad(tok))?,
                "integrator" => integrator = value.parse().map_err(|_| bad(tok))?,
                "batch" => batch = parse_flag(value).ok_or_else(|| bad(tok))?,
                "trace" => trace = TraceSpec::parse(value).ok_or_else(|| bad(tok))?,
                "class" => class = JobClass::parse(value).ok_or_else(|| bad(tok))?,
                _ => return Err(JobSpecError::UnknownKey(key.to_string())),
            }
        }
        let version = version.ok_or(JobSpecError::MissingKey("v"))?;
        if version != JOBSPEC_VERSION {
            return Err(JobSpecError::UnsupportedVersion(version));
        }
        let target = match kind.as_deref() {
            Some("scenario") => JobTarget::Scenario(name.ok_or(JobSpecError::MissingKey("name"))?),
            Some("grid") => JobTarget::Grid {
                configs: configs.ok_or(JobSpecError::MissingKey("configs"))?,
                apps: apps.ok_or(JobSpecError::MissingKey("apps"))?,
            },
            Some(other) => return Err(JobSpecError::BadValue(format!("kind={other}"))),
            None => return Err(JobSpecError::MissingKey("kind")),
        };
        let smoke_default = if smoke {
            RunOptions::smoke().uops
        } else {
            RunOptions::full().uops
        };
        let spec = JobSpec {
            version,
            target,
            smoke,
            uops: uops.unwrap_or(smoke_default),
            workers,
            integrator,
            batch,
            trace,
            class,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the structural invariants the wire format relies on: no
    /// whitespace/`=`/`,` inside names, non-empty target, positive run
    /// length.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), JobSpecError> {
        let check_name = |n: &str| {
            if n.is_empty() {
                return Err(JobSpecError::Invalid("empty name".into()));
            }
            if n.chars().any(|c| c.is_whitespace() || c == '=' || c == ',') {
                return Err(JobSpecError::Invalid(format!(
                    "name {n:?} contains wire-reserved characters"
                )));
            }
            Ok(())
        };
        match &self.target {
            JobTarget::Scenario(name) => check_name(name)?,
            JobTarget::Grid { configs, apps } => {
                if configs.is_empty() || apps.is_empty() {
                    return Err(JobSpecError::Invalid("empty grid".into()));
                }
                for n in configs.iter().chain(apps) {
                    check_name(n)?;
                }
            }
        }
        if self.uops == 0 {
            return Err(JobSpecError::Invalid("empty run (uops=0)".into()));
        }
        Ok(())
    }

    /// Resolves the target against the scenario/configuration/application
    /// registries into the concrete grid the engine runs.
    ///
    /// # Errors
    ///
    /// Returns [`JobSpecError::UnknownName`] for any name no registry
    /// knows.
    pub fn resolve(&self) -> Result<ResolvedJob, JobSpecError> {
        self.validate()?;
        let opts = self.run_options();
        match &self.target {
            JobTarget::Scenario(name) => {
                let s = scenarios::by_name(name)
                    .or_else(|| {
                        // The CLI's fault-injection scenario is resolvable
                        // so daemon fault-isolation can be exercised end
                        // to end, exactly like `--inject-fail` locally.
                        (name == scenarios::fault_injection().name).then(scenarios::fault_injection)
                    })
                    .ok_or_else(|| JobSpecError::UnknownName(name.clone()))?;
                Ok(ResolvedJob {
                    label: LabelSource::Scenario(s.name),
                    configs: vec![s
                        .config()
                        .with_uops(opts.uops)
                        .with_integrator(opts.integrator)],
                    workloads: s.workloads(&opts),
                })
            }
            JobTarget::Grid { configs, apps } => {
                let configs = configs
                    .iter()
                    .map(|n| {
                        ExperimentConfig::by_name(n)
                            .map(|c| c.with_uops(opts.uops).with_integrator(opts.integrator))
                            .ok_or_else(|| JobSpecError::UnknownName(n.clone()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let workloads = apps
                    .iter()
                    .map(|n| {
                        AppProfile::by_name(n)
                            .map(|p| Workload::Single(*p))
                            .ok_or_else(|| JobSpecError::UnknownName(n.clone()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ResolvedJob {
                    label: LabelSource::ConfigName,
                    configs,
                    workloads,
                })
            }
        }
    }

    /// The job's content address: a stable 64-bit fingerprint of every
    /// input the result bytes are a function of, and nothing else.
    ///
    /// Covered: the wire version, target kind and names, smoke flag, run
    /// length, integrator, and for every resolved configuration its name,
    /// machine shape, interval, seed, pilot fraction, idle density, hop
    /// flag, DTM policy name, replay capability set (the operating-point
    /// family its traces record, numeric parameters included) and the
    /// **exact bits of its leakage model**
    /// — plus the `DFAT` trace-format version through the seeded
    /// [`Fingerprint`] hasher, so a format bump invalidates every cached
    /// result. Excluded: `workers`, `batch`, `class` and `trace`, which
    /// the engine's bit-identity contract makes output-neutral — an
    /// 8-worker interactive replay hits the cache entry a serial
    /// deferrable live run stored.
    ///
    /// # Errors
    ///
    /// Resolution errors propagate: an unresolvable spec has no content
    /// to address.
    pub fn fingerprint(&self) -> Result<u64, JobSpecError> {
        let resolved = self.resolve()?;
        let mut fp = Fingerprint::new()
            .with_bytes(b"DFJS")
            .with_u32(self.version)
            .with_u64(self.uops)
            .with_u32(u32::from(self.smoke))
            .with_str(match self.integrator {
                Integrator::Rk4 => "rk4",
                Integrator::Expm => "expm",
            });
        fp = match &self.target {
            JobTarget::Scenario(name) => fp.with_str("scenario").with_str(name),
            JobTarget::Grid { configs, apps } => {
                let mut fp = fp
                    .with_str("grid")
                    .with_u64(configs.len() as u64)
                    .with_u64(apps.len() as u64);
                for n in configs.iter().chain(apps) {
                    fp = fp.with_str(n);
                }
                fp
            }
        };
        for cfg in &resolved.configs {
            fp = config_fingerprint(fp, cfg);
        }
        for w in &resolved.workloads {
            fp = fp.with_str(w.name());
        }
        Ok(fp.finish())
    }

    /// Runs the job to completion on the calling thread: resolves the
    /// target, builds a [`SweepRunner::from_spec`] runner sharing `env`'s
    /// warm-start cache and trace store, and returns the per-cell report.
    /// `on_cell` streams outcomes in completion order, exactly like
    /// [`SweepRunner::with_on_cell`].
    ///
    /// This is the one execution path behind the one-shot CLI, the
    /// daemon's executors and the test harness — they differ only in the
    /// [`JobEnv`] they share across calls.
    ///
    /// # Errors
    ///
    /// Returns resolution errors; engine failures are per-cell outcomes
    /// in the report, never an `Err` here.
    pub fn execute(
        &self,
        env: &JobEnv,
        on_cell: impl Fn(&CellOutcome) + Send + Sync + 'static,
    ) -> Result<JobReport, JobSpecError> {
        let resolved = self.resolve()?;
        let runner = SweepRunner::from_spec(self)
            .with_warm_cache(Arc::clone(&env.warm))
            .with_trace_mode(self.trace.bind(&env.traces))
            .with_on_cell(on_cell);
        let report = runner.try_grid_workloads(&resolved.configs, &resolved.workloads);
        Ok(JobReport {
            label: resolved.label,
            report,
        })
    }
}

fn split_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_flag(value: &str) -> Option<bool> {
    match value {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Folds one configuration's result-affecting content into `fp`: an
/// explicit field enumeration (never `Debug` or `Hash` derives, whose
/// renderings change silently), so the golden-fingerprint test fails
/// loudly on any change — which is the point: cache keys change
/// consciously or not at all.
fn config_fingerprint(fp: Fingerprint, cfg: &ExperimentConfig) -> Fingerprint {
    let p = &cfg.processor;
    fp.with_str(cfg.name)
        .with_u64(p.frontend_mode.partitions() as u64)
        .with_u64(p.backends as u64)
        .with_u64(p.trace_cache.physical_banks() as u64)
        .with_f64(p.frequency_hz)
        .with_u64(cfg.interval_cycles)
        .with_u64(cfg.uops_per_app)
        .with_u64(cfg.seed)
        .with_f64(cfg.pilot_fraction)
        .with_f64(cfg.idle_density_w_mm2)
        .with_u32(u32::from(cfg.hop))
        .with_str(cfg.dtm.as_ref().map_or("none", |d| d.name()))
        // The replay capability set — nominal plus the DTM policy's
        // actionable operating points, numeric parameters included. The
        // policy *name* above cannot distinguish two DVFS policies with
        // different scale pairs; the point labels can.
        .with_str(&points_id(&cfg.replay_points()))
        // The warm-start key lesson (PR 4): two jobs identical in shape
        // and workload but differing in silicon must never share a
        // result. Exact bits, like the cache key itself.
        .with_f64(cfg.leakage.ratio_at_ambient)
        .with_f64(cfg.leakage.ambient_c)
        .with_f64(cfg.leakage.doubling_celsius)
        .with_f64(cfg.leakage.emergency_c)
}

/// How result rows are labeled in the CSV `scenario` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LabelSource {
    /// Every row carries the scenario's registry name (one-row suites).
    Scenario(&'static str),
    /// Each row carries its cell's configuration preset name (grids).
    ConfigName,
}

/// A [`JobSpec`] resolved against the registries: the concrete grid the
/// engine runs.
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    label: LabelSource,
    /// Configurations (grid rows), run-length- and integrator-scaled.
    pub configs: Vec<ExperimentConfig>,
    /// Workloads (grid columns).
    pub workloads: Vec<Workload>,
}

impl ResolvedJob {
    /// The label a cell's CSV row carries in the `scenario` column —
    /// the same labeling [`JobReport::row_label`] applies, available
    /// before a full report exists so shard workers can label the cells
    /// of a partial grid.
    pub fn row_label(&self, cell: &CellOutcome) -> &'static str {
        match self.label {
            LabelSource::Scenario(name) => name,
            LabelSource::ConfigName => cell.config_name,
        }
    }
}

/// The shared execution state a job runs against. One-shot runs use a
/// fresh default; the daemon keeps one alive for its whole life, which
/// is what makes warm starts and recorded traces outlive a job.
#[derive(Debug, Clone, Default)]
pub struct JobEnv {
    /// Warm-start cache shared across jobs.
    pub warm: Arc<WarmStartCache>,
    /// Trace store [`TraceSpec::Record`]/[`TraceSpec::Replay`] bind to.
    pub traces: Arc<TraceStore>,
}

/// One executed job's results, with the row labeling its target implies.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    label: LabelSource,
    /// The underlying per-cell report (grid order).
    pub report: SweepReport,
}

impl JobReport {
    /// The label a cell's CSV row carries in the `scenario` column.
    pub fn row_label(&self, cell: &CellOutcome) -> &'static str {
        match self.label {
            LabelSource::Scenario(name) => name,
            LabelSource::ConfigName => cell.config_name,
        }
    }

    /// CSV rows (no header) for every successful cell, in canonical grid
    /// order — byte-identical to [`scenarios::to_csv`]'s body for the
    /// same scenario run, whatever order the cells completed in.
    pub fn csv_rows(&self) -> Vec<String> {
        self.report
            .cells()
            .iter()
            .filter_map(|c| {
                c.result
                    .as_ref()
                    .ok()
                    .map(|r| csv_row(self.row_label(c), r))
            })
            .collect()
    }

    /// The failed cells, in grid order, as `(label, app, error)` strings.
    pub fn failure_lines(&self) -> Vec<(String, String, String)> {
        self.report
            .failures()
            .map(|c| {
                (
                    self.row_label(c).to_string(),
                    c.app_name.to_string(),
                    c.result.as_ref().unwrap_err().to_string(),
                )
            })
            .collect()
    }

    /// The job's wire status: [`StatusCode::CellsFailed`] if any cell
    /// failed, else [`StatusCode::Ok`].
    pub fn status(&self) -> StatusCode {
        if self.report.failed() > 0 {
            StatusCode::CellsFailed
        } else {
            StatusCode::Ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_are_the_cli_contract() {
        let codes: Vec<u8> = StatusCode::ALL.iter().map(|s| s.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4, 5, 64]);
        for s in StatusCode::ALL {
            assert_eq!(StatusCode::from_code(s.code()), Some(s));
            assert!(!s.name().is_empty());
        }
        assert_eq!(StatusCode::from_code(42), None);
    }

    #[test]
    fn worst_status_prefers_specific_failures() {
        use StatusCode::*;
        assert_eq!(Ok.worst(CellsFailed), CellsFailed);
        assert_eq!(CellsFailed.worst(Ok), CellsFailed);
        assert_eq!(Usage.worst(CellsFailed), CellsFailed);
        assert_eq!(VerifyDiverged.worst(Io), VerifyDiverged);
        assert_eq!(Ok.worst(ShardFailed), ShardFailed);
        assert_eq!(ShardFailed.worst(Usage), ShardFailed);
        assert_eq!(CellsFailed.worst(ShardFailed), CellsFailed);
        assert_eq!(Ok.worst(Ok), Ok);
    }

    #[test]
    fn encode_parse_roundtrip_scenario_and_grid() {
        let scenario = JobSpec::scenario("dtm-dvfs")
            .with_smoke(true)
            .with_uops(30_000)
            .with_workers(3)
            .with_batch(true)
            .with_trace(TraceSpec::Replay)
            .with_class(JobClass::Deferrable);
        assert_eq!(JobSpec::parse_line(&scenario.encode_line()), Ok(scenario));
        let grid = JobSpec::grid(["baseline", "drc+bh+ab"], ["gzip", "mcf"]).with_uops(25_000);
        let line = grid.encode_line();
        assert!(line.contains("kind=grid configs=baseline,drc+bh+ab apps=gzip,mcf"));
        assert_eq!(JobSpec::parse_line(&line), Ok(grid));
    }

    #[test]
    fn parse_applies_scheduling_defaults_but_requires_target() {
        let spec = JobSpec::parse_line("v=1 kind=scenario name=baseline").unwrap();
        assert_eq!(spec.uops, RunOptions::full().uops);
        assert_eq!(spec.workers, 0);
        assert_eq!(spec.class, JobClass::Interactive);
        let smoke = JobSpec::parse_line("v=1 kind=scenario name=baseline smoke=1").unwrap();
        assert_eq!(smoke.uops, RunOptions::smoke().uops);
        assert_eq!(
            JobSpec::parse_line("v=1 kind=scenario"),
            Err(JobSpecError::MissingKey("name"))
        );
        assert_eq!(
            JobSpec::parse_line("kind=scenario name=baseline"),
            Err(JobSpecError::MissingKey("v"))
        );
    }

    #[test]
    fn parse_rejects_unknown_versions_keys_and_values() {
        assert_eq!(
            JobSpec::parse_line("v=2 kind=scenario name=baseline"),
            Err(JobSpecError::UnsupportedVersion(2))
        );
        assert_eq!(
            JobSpec::parse_line("v=1 kind=scenario name=baseline color=red"),
            Err(JobSpecError::UnknownKey("color".into()))
        );
        assert!(matches!(
            JobSpec::parse_line("v=1 kind=scenario name=baseline smoke=yes"),
            Err(JobSpecError::BadValue(_))
        ));
        assert!(matches!(
            JobSpec::parse_line("v=1 kind=teapot name=baseline"),
            Err(JobSpecError::BadValue(_))
        ));
    }

    #[test]
    fn validate_rejects_wire_reserved_names_and_empty_grids() {
        assert!(JobSpec::scenario("has space").validate().is_err());
        assert!(JobSpec::scenario("has=eq").validate().is_err());
        assert!(JobSpec::grid(Vec::<String>::new(), ["gzip"])
            .validate()
            .is_err());
        assert!(JobSpec::scenario("baseline")
            .with_uops(0)
            .validate()
            .is_err());
    }

    #[test]
    fn resolve_covers_registry_scenarios_grids_and_fault_injection() {
        for s in scenarios::registry() {
            JobSpec::scenario(s.name)
                .with_smoke(true)
                .resolve()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
        let r = JobSpec::grid(["baseline", "drc"], ["gzip", "mcf", "swim"])
            .resolve()
            .unwrap();
        assert_eq!((r.configs.len(), r.workloads.len()), (2, 3));
        assert!(JobSpec::scenario("fault-injection").resolve().is_ok());
        assert_eq!(
            JobSpec::scenario("nope").resolve().unwrap_err(),
            JobSpecError::UnknownName("nope".into())
        );
        assert_eq!(
            JobSpec::grid(["baseline"], ["nope"]).resolve().unwrap_err(),
            JobSpecError::UnknownName("nope".into())
        );
    }

    #[test]
    fn fingerprint_excludes_scheduling_knobs() {
        let base = JobSpec::scenario("baseline").with_smoke(true);
        let fp = base.fingerprint().unwrap();
        assert_eq!(base.clone().with_workers(8).fingerprint().unwrap(), fp);
        assert_eq!(base.clone().with_batch(true).fingerprint().unwrap(), fp);
        assert_eq!(
            base.clone()
                .with_class(JobClass::Deferrable)
                .fingerprint()
                .unwrap(),
            fp
        );
        assert_eq!(
            base.clone()
                .with_trace(TraceSpec::Replay)
                .fingerprint()
                .unwrap(),
            fp
        );
    }

    #[test]
    fn fingerprint_covers_result_affecting_inputs() {
        let base = JobSpec::scenario("baseline").with_smoke(true);
        let fp = base.fingerprint().unwrap();
        assert_ne!(base.clone().with_uops(50_000).fingerprint().unwrap(), fp);
        assert_ne!(base.clone().with_smoke(false).fingerprint().unwrap(), fp);
        assert_ne!(
            base.clone()
                .with_integrator(Integrator::Rk4)
                .fingerprint()
                .unwrap(),
            fp
        );
        assert_ne!(
            JobSpec::scenario("drc")
                .with_smoke(true)
                .fingerprint()
                .unwrap(),
            fp
        );
        // A scenario and a single-config grid with the same config are
        // distinct jobs (different suites), hence distinct addresses.
        assert_ne!(
            JobSpec::grid(["baseline"], ["gzip"]).fingerprint().unwrap(),
            fp
        );
    }

    #[test]
    fn fingerprint_covers_leakage_bits_via_dtm_scenarios() {
        // Two registry scenarios sharing the baseline processor but
        // differing in DTM policy must address differently (the dtm name
        // is in the config fingerprint)...
        let a = JobSpec::scenario("dtm-dvfs").with_smoke(true);
        let b = JobSpec::scenario("dtm-fetch-gate").with_smoke(true);
        assert_ne!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
        // ...and the leakage bits participate directly: fault-injection
        // is the baseline with only its leakage model changed, yet it
        // must never share baseline's cached results.
        let base = JobSpec::scenario("baseline").with_smoke(true);
        let faulty = JobSpec::scenario("fault-injection").with_smoke(true);
        assert_ne!(base.fingerprint().unwrap(), faulty.fingerprint().unwrap());
    }

    #[test]
    fn execute_runs_and_labels_rows() {
        let env = JobEnv::default();
        let spec = JobSpec::scenario("baseline")
            .with_smoke(true)
            .with_uops(20_000)
            .with_workers(2);
        let report = spec.execute(&env, |_| {}).unwrap();
        assert_eq!(report.status(), StatusCode::Ok);
        let rows = report.csv_rows();
        assert_eq!(rows.len(), RunOptions::smoke().apps().len());
        assert!(rows.iter().all(|r| r.starts_with("baseline,")));
        // Grid targets label rows by configuration preset.
        let grid = JobSpec::grid(["drc"], ["gzip"])
            .with_uops(20_000)
            .execute(&env, |_| {})
            .unwrap();
        assert!(grid.csv_rows()[0].starts_with("drc,"));
        // The env's warm cache persisted across both jobs.
        assert!(env.warm.len() >= 2);
    }

    #[test]
    fn execute_reports_failures_as_cells_failed() {
        let env = JobEnv::default();
        let report = JobSpec::scenario("fault-injection")
            .with_smoke(true)
            .with_uops(20_000)
            .execute(&env, |_| {})
            .unwrap();
        assert_eq!(report.status(), StatusCode::CellsFailed);
        assert!(report.csv_rows().is_empty());
        let failures = report.failure_lines();
        assert_eq!(failures.len(), RunOptions::smoke().apps().len());
        assert!(failures[0].2.contains("not converged"));
    }
}
