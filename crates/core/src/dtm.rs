//! The dynamic-thermal-management policy library.
//!
//! [`EmergencyController`](crate::emergency::EmergencyController) implements
//! the conventional halve-the-clock emergency throttle; this module covers
//! the rest of the design space the paper positions its techniques against
//! (§4 names DTM mechanisms as the consumers of its peak-temperature
//! reductions):
//!
//! * [`GlobalDvfsController`] — global dynamic voltage/frequency scaling:
//!   the whole chip drops to a scaled (V, f) operating point when hot,
//!   with dynamic energy falling by `V²` and leakage recomputed at the
//!   scaled voltage,
//! * [`FetchGateController`] — fetch toggling: the fetch unit is gated to
//!   a duty cycle, starving the frontend (and with it the whole pipeline)
//!   at unchanged voltage,
//! * [`MigrationController`] — front-end activity migration: with a
//!   distributed frontend, dispatch is steered toward the backends of the
//!   cooler partition so the hot partition's RAT/ROB can cool.
//!
//! Every controller is a [`DtmPolicy`]: the interval loop consults it once
//! per interval and applies the returned [`DtmAction`]. Controllers are
//! deterministic state machines — the same temperature sequence always
//! produces the same action sequence — which is what keeps scenario runs
//! bit-identical across worker counts.

use distfront_power::{BlockId, Machine, OperatingPoint};
use distfront_uarch::FetchGate;

use crate::engine::{DtmAction, DtmPolicy};

/// Configuration of the global-DVFS policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPolicy {
    /// Engage when any block reaches this temperature, in °C.
    pub trip_c: f64,
    /// Release once every block has cooled below this temperature, in °C
    /// (hysteresis; must not exceed `trip_c`).
    pub release_c: f64,
    /// Core frequency at the scaled point, as a fraction of nominal.
    pub f_scale: f64,
    /// Supply voltage at the scaled point, as a fraction of nominal.
    pub v_scale: f64,
}

impl DvfsPolicy {
    /// A conventional scaled point (70 % clock at 85 % supply) armed at the
    /// paper's 381 K emergency limit.
    pub fn paper_limit() -> Self {
        DvfsPolicy {
            trip_c: 381.0 - 273.15,
            release_c: 381.0 - 273.15 - 2.0,
            f_scale: 0.7,
            v_scale: 0.85,
        }
    }

    /// The same scaled point armed at a custom trip temperature (for
    /// studying engagement below the hard limit), releasing 2 °C under it.
    pub fn with_trip(trip_c: f64) -> Self {
        DvfsPolicy {
            trip_c,
            release_c: trip_c - 2.0,
            ..Self::paper_limit()
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        OperatingPoint::scaled(self.f_scale, self.v_scale).validate()?;
        validate_trip_release(self.trip_c, self.release_c)
    }
}

/// How an engaged trip/hold state machine lets go again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Release {
    /// Stay engaged until the peak cools below this temperature
    /// (hysteresis band).
    CoolBelow(f64),
    /// Stay engaged for this many intervals after each violation (the
    /// classic emergency-throttle hold).
    Hold(u32),
}

/// The trip/hold state machine every threshold-triggered controller
/// shares — [`GlobalDvfsController`], [`FetchGateController`] and the
/// legacy [`EmergencyController`](crate::emergency::EmergencyController)
/// all count triggers and active intervals through this one
/// implementation, so their emergency-accounting semantics cannot drift:
/// a continuous violation is always exactly one trigger.
#[derive(Debug, Clone)]
pub(crate) struct Hysteresis {
    trip_c: f64,
    release: Release,
    /// Intervals of hold left ([`Release::Hold`] only).
    hold_left: u32,
    engaged: bool,
    /// Whether the previous observation was already over the trip point
    /// (a continuous violation counts as one emergency).
    over: bool,
    triggers: u64,
    active_intervals: u64,
}

impl Hysteresis {
    /// Engage at `trip_c`, release once cooled below `release_c`.
    pub(crate) fn cool_below(trip_c: f64, release_c: f64) -> Self {
        Self::with_release(trip_c, Release::CoolBelow(release_c))
    }

    /// Engage at `trip_c`, hold for `intervals` after each violation.
    pub(crate) fn hold(trip_c: f64, intervals: u32) -> Self {
        Self::with_release(trip_c, Release::Hold(intervals))
    }

    fn with_release(trip_c: f64, release: Release) -> Self {
        Hysteresis {
            trip_c,
            release,
            hold_left: 0,
            engaged: false,
            over: false,
            triggers: 0,
            active_intervals: 0,
        }
    }

    /// Feeds the interval's peak temperature; returns whether the
    /// mechanism is engaged for the next interval (counting it when so).
    pub(crate) fn observe(&mut self, peak: f64) -> bool {
        let over = peak >= self.trip_c;
        match self.release {
            Release::CoolBelow(release_c) => {
                if self.engaged {
                    if peak < release_c {
                        self.engaged = false;
                    }
                } else if over {
                    self.engaged = true;
                    self.triggers += 1;
                }
            }
            Release::Hold(intervals) => {
                if over {
                    if !self.over {
                        self.triggers += 1;
                    }
                    self.hold_left = intervals;
                }
                self.engaged = self.hold_left > 0;
                self.hold_left = self.hold_left.saturating_sub(1);
            }
        }
        self.over = over;
        if self.engaged {
            self.active_intervals += 1;
        }
        self.engaged
    }

    /// Distinct engagements so far.
    pub(crate) fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Intervals spent engaged so far.
    pub(crate) fn active_intervals(&self) -> u64 {
        self.active_intervals
    }
}

/// The trip/release checks both threshold-triggered policies share.
fn validate_trip_release(trip_c: f64, release_c: f64) -> Result<(), String> {
    if !trip_c.is_finite() || trip_c <= 0.0 {
        return Err(format!("trip {trip_c} invalid"));
    }
    if !release_c.is_finite() || release_c > trip_c {
        return Err(format!("release {release_c} above trip {trip_c}"));
    }
    Ok(())
}

/// Runtime state of the global-DVFS policy.
#[derive(Debug, Clone)]
pub struct GlobalDvfsController {
    policy: DvfsPolicy,
    hysteresis: Hysteresis,
}

impl GlobalDvfsController {
    /// Creates a controller for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(policy: DvfsPolicy) -> Self {
        policy
            .validate()
            .unwrap_or_else(|e| panic!("bad DVFS policy: {e}"));
        GlobalDvfsController {
            hysteresis: Hysteresis::cool_below(policy.trip_c, policy.release_c),
            policy,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> DvfsPolicy {
        self.policy
    }
}

impl DtmPolicy for GlobalDvfsController {
    fn decide(&mut self, temps_c: &[f64]) -> DtmAction {
        if self.hysteresis.observe(peak(temps_c)) {
            DtmAction::Dvfs {
                f_scale: self.policy.f_scale,
                v_scale: self.policy.v_scale,
            }
        } else {
            DtmAction::Nominal
        }
    }

    fn triggers(&self) -> u64 {
        self.hysteresis.triggers()
    }

    fn throttled_intervals(&self) -> u64 {
        self.hysteresis.active_intervals()
    }
}

/// Configuration of the fetch-toggling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchGatePolicy {
    /// Engage when any block reaches this temperature, in °C.
    pub trip_c: f64,
    /// Release once every block has cooled below this temperature, in °C.
    pub release_c: f64,
    /// Cycles per period the fetch unit stays enabled while engaged.
    pub open: u32,
    /// Period of the gating pattern in cycles.
    pub period: u32,
}

impl FetchGatePolicy {
    /// Half-duty fetch toggling armed at the paper's 381 K emergency limit.
    pub fn paper_limit() -> Self {
        FetchGatePolicy {
            trip_c: 381.0 - 273.15,
            release_c: 381.0 - 273.15 - 2.0,
            open: 1,
            period: 2,
        }
    }

    /// The same duty cycle armed at a custom trip temperature, releasing
    /// 2 °C under it.
    pub fn with_trip(trip_c: f64) -> Self {
        FetchGatePolicy {
            trip_c,
            release_c: trip_c - 2.0,
            ..Self::paper_limit()
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        FetchGate {
            open: self.open,
            period: self.period,
        }
        .validate()?;
        if self.open == self.period {
            return Err("a gate that is always open manages nothing".into());
        }
        validate_trip_release(self.trip_c, self.release_c)
    }
}

/// Runtime state of the fetch-toggling policy.
#[derive(Debug, Clone)]
pub struct FetchGateController {
    policy: FetchGatePolicy,
    hysteresis: Hysteresis,
}

impl FetchGateController {
    /// Creates a controller for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(policy: FetchGatePolicy) -> Self {
        policy
            .validate()
            .unwrap_or_else(|e| panic!("bad fetch-gate policy: {e}"));
        FetchGateController {
            hysteresis: Hysteresis::cool_below(policy.trip_c, policy.release_c),
            policy,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> FetchGatePolicy {
        self.policy
    }
}

impl DtmPolicy for FetchGateController {
    fn decide(&mut self, temps_c: &[f64]) -> DtmAction {
        if self.hysteresis.observe(peak(temps_c)) {
            DtmAction::FetchGate {
                open: self.policy.open,
                period: self.policy.period,
            }
        } else {
            DtmAction::Nominal
        }
    }

    fn triggers(&self) -> u64 {
        self.hysteresis.triggers()
    }

    fn throttled_intervals(&self) -> u64 {
        self.hysteresis.active_intervals()
    }
}

/// Configuration of the front-end activity-migration policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPolicy {
    /// Migrate only when the hot partition's front-end blocks reach this
    /// temperature, in °C.
    pub trip_c: f64,
    /// Minimum temperature gap between the hottest and coolest partition's
    /// front-end blocks before migrating, in °C.
    pub margin_c: f64,
}

impl MigrationPolicy {
    /// Migration armed at the paper's 381 K emergency limit with a 0.5 °C
    /// imbalance margin.
    pub fn paper_limit() -> Self {
        MigrationPolicy {
            trip_c: 381.0 - 273.15,
            margin_c: 0.5,
        }
    }

    /// Migration armed at a custom trip temperature.
    pub fn with_trip(trip_c: f64) -> Self {
        MigrationPolicy {
            trip_c,
            ..Self::paper_limit()
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.trip_c.is_finite() || self.trip_c <= 0.0 {
            return Err(format!("trip {} invalid", self.trip_c));
        }
        if !self.margin_c.is_finite() || self.margin_c < 0.0 {
            return Err(format!("margin {} invalid", self.margin_c));
        }
        Ok(())
    }
}

/// Runtime state of the front-end activity-migration policy.
///
/// Watches each frontend partition's RAT and ROB blocks; when the hottest
/// partition crosses the trip temperature and leads the coolest by the
/// margin, dispatch is steered toward the coolest partition's backends for
/// the next interval. Requires a distributed frontend to do anything — on a
/// centralized machine there is only one partition and the controller
/// stays nominal.
#[derive(Debug, Clone)]
pub struct MigrationController {
    policy: MigrationPolicy,
    /// Canonical block indices of each partition's front-end structures.
    partition_blocks: Vec<Vec<usize>>,
    target: Option<usize>,
    triggers: u64,
    throttled_intervals: u64,
}

impl MigrationController {
    /// Creates a controller watching `machine`'s frontend partitions.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn for_machine(policy: MigrationPolicy, machine: Machine) -> Self {
        policy
            .validate()
            .unwrap_or_else(|e| panic!("bad migration policy: {e}"));
        let partition_blocks = (0..machine.partitions)
            .map(|p| {
                machine
                    .blocks()
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| {
                        matches!(b, BlockId::Rob(q) | BlockId::Rat(q) if usize::from(*q) == p)
                    })
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        MigrationController {
            policy,
            partition_blocks,
            target: None,
            triggers: 0,
            throttled_intervals: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy
    }

    /// The partition currently receiving migrated work, if any.
    pub fn target(&self) -> Option<usize> {
        self.target
    }
}

impl DtmPolicy for MigrationController {
    fn decide(&mut self, temps_c: &[f64]) -> DtmAction {
        if self.partition_blocks.len() < 2 {
            return DtmAction::Nominal;
        }
        let peaks: Vec<f64> = self
            .partition_blocks
            .iter()
            .map(|blocks| peak_of(temps_c, blocks))
            .collect();
        // Ties break toward the lowest partition index, deterministically.
        let hottest = arg_extreme(&peaks, |a, b| a > b);
        let coolest = arg_extreme(&peaks, |a, b| a < b);
        let engage = peaks[hottest] >= self.policy.trip_c
            && peaks[hottest] - peaks[coolest] >= self.policy.margin_c
            && hottest != coolest;
        if engage {
            if self.target != Some(coolest) {
                self.triggers += 1;
            }
            self.target = Some(coolest);
            self.throttled_intervals += 1;
            DtmAction::MigrateTo(coolest)
        } else {
            self.target = None;
            DtmAction::Nominal
        }
    }

    fn triggers(&self) -> u64 {
        self.triggers
    }

    fn throttled_intervals(&self) -> u64 {
        self.throttled_intervals
    }
}

fn peak(temps_c: &[f64]) -> f64 {
    temps_c.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

fn peak_of(temps_c: &[f64], blocks: &[usize]) -> f64 {
    blocks
        .iter()
        .map(|&b| temps_c[b])
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the first element extreme under `better` (strictly), so ties
/// resolve to the lowest index.
fn arg_extreme(values: &[f64], better: impl Fn(f64, f64) -> bool) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if better(v, values[best]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_engages_with_hysteresis() {
        let mut c = GlobalDvfsController::new(DvfsPolicy::with_trip(100.0));
        assert_eq!(c.decide(&[60.0, 90.0]), DtmAction::Nominal);
        let engaged = c.decide(&[60.0, 101.0]);
        assert_eq!(
            engaged,
            DtmAction::Dvfs {
                f_scale: 0.7,
                v_scale: 0.85
            }
        );
        // Still above release: stays engaged without a new trigger.
        assert_eq!(c.decide(&[60.0, 99.0]), engaged);
        assert_eq!(c.triggers(), 1);
        // Below release: back to nominal.
        assert_eq!(c.decide(&[60.0, 97.0]), DtmAction::Nominal);
        assert_eq!(c.throttled_intervals(), 2);
    }

    #[test]
    fn dvfs_retrigger_counts_again() {
        let mut c = GlobalDvfsController::new(DvfsPolicy::with_trip(100.0));
        c.decide(&[101.0]);
        c.decide(&[90.0]);
        c.decide(&[101.0]);
        assert_eq!(c.triggers(), 2);
    }

    #[test]
    #[should_panic(expected = "bad DVFS policy")]
    fn dvfs_overvolt_rejected() {
        GlobalDvfsController::new(DvfsPolicy {
            v_scale: 1.3,
            ..DvfsPolicy::paper_limit()
        });
    }

    #[test]
    fn fetch_gate_engages_with_hysteresis() {
        let mut c = FetchGateController::new(FetchGatePolicy::with_trip(100.0));
        assert_eq!(c.decide(&[99.0]), DtmAction::Nominal);
        assert_eq!(
            c.decide(&[100.0]),
            DtmAction::FetchGate { open: 1, period: 2 }
        );
        assert_eq!(
            c.decide(&[98.5]),
            DtmAction::FetchGate { open: 1, period: 2 }
        );
        assert_eq!(c.decide(&[90.0]), DtmAction::Nominal);
        assert_eq!(c.triggers(), 1);
        assert_eq!(c.throttled_intervals(), 2);
    }

    #[test]
    #[should_panic(expected = "manages nothing")]
    fn always_open_gate_rejected() {
        FetchGateController::new(FetchGatePolicy {
            open: 2,
            period: 2,
            ..FetchGatePolicy::paper_limit()
        });
    }

    #[test]
    fn migration_targets_the_cooler_partition() {
        // Machine with 2 partitions: blocks() order fixes RAT/ROB indices.
        let machine = Machine::new(2, 4, 2);
        let mut c = MigrationController::for_machine(MigrationPolicy::with_trip(80.0), machine);
        let mut temps = vec![50.0; machine.block_count()];
        // Heat partition 0's front-end blocks.
        for &i in &c.partition_blocks[0].clone() {
            temps[i] = 85.0;
        }
        assert_eq!(c.decide(&temps), DtmAction::MigrateTo(1));
        assert_eq!(c.target(), Some(1));
        assert_eq!(c.triggers(), 1);
        // Sustained imbalance is one trigger.
        assert_eq!(c.decide(&temps), DtmAction::MigrateTo(1));
        assert_eq!(c.triggers(), 1);
        // Balance restored: released.
        for &i in &c.partition_blocks[0].clone() {
            temps[i] = 50.0;
        }
        assert_eq!(c.decide(&temps), DtmAction::Nominal);
        assert_eq!(c.target(), None);
    }

    #[test]
    fn migration_respects_trip_and_margin() {
        let machine = Machine::new(2, 4, 2);
        let mut c = MigrationController::for_machine(
            MigrationPolicy {
                trip_c: 80.0,
                margin_c: 3.0,
            },
            machine,
        );
        let mut temps = vec![79.0; machine.block_count()];
        // Hot but below trip: nominal.
        assert_eq!(c.decide(&temps), DtmAction::Nominal);
        // Above trip but within margin: nominal.
        for &i in &c.partition_blocks[0].clone() {
            temps[i] = 81.0;
        }
        for &i in &c.partition_blocks[1].clone() {
            temps[i] = 79.5;
        }
        assert_eq!(c.decide(&temps), DtmAction::Nominal);
        assert_eq!(c.triggers(), 0);
    }

    #[test]
    fn migration_is_inert_on_a_centralized_machine() {
        let machine = Machine::new(1, 4, 2);
        let mut c = MigrationController::for_machine(MigrationPolicy::with_trip(10.0), machine);
        assert_eq!(
            c.decide(&vec![200.0; machine.block_count()]),
            DtmAction::Nominal
        );
        assert_eq!(c.triggers(), 0);
    }
}
