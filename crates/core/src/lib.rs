//! # distfront — Distributing the Frontend for Temperature Reduction
//!
//! A full reproduction of Chaparro, Magklis, González & González,
//! *"Distributing the Frontend for Temperature Reduction"*, HPCA-11, 2005:
//! the distributed rename/commit mechanism, the sub-banked trace cache with
//! bank hopping, and the thermal-aware biased bank mapping — together with
//! every substrate the paper's evaluation depends on (cycle-level clustered
//! simulator, synthetic SPEC2000-class workloads, activity-based power
//! model, HotSpot-style RC thermal model and the Fig. 10/11 floorplans).
//!
//! The three contributions, and where they live:
//!
//! | Paper section | Implementation |
//! |---|---|
//! | §3.1 distributed renaming | [`distfront_uarch::rename`] |
//! | §3.1.2 distributed commit (R/L walk) | [`distfront_uarch::rob`] |
//! | §3.2.1 bank hopping | [`distfront_cache::trace_cache`] |
//! | §3.2.2 biased mapping | [`distfront_cache::mapping`] |
//!
//! This crate ties the stack together: [`experiment`] holds the evaluated
//! configurations, [`engine`] couples simulator ⇄ power ⇄ thermal as a
//! staged pipeline (pilot → warm start → interval loop) with a parallel
//! [`SweepRunner`] over the app × config grid, [`runner`] keeps the
//! serial entry points and result types, and [`figures`] regenerates
//! every figure of §4.
//!
//! # Examples
//!
//! Run the baseline on one application and inspect its thermal profile:
//!
//! ```
//! use distfront::{ExperimentConfig, run_app};
//! use distfront_trace::AppProfile;
//!
//! let cfg = ExperimentConfig::baseline().with_uops(50_000);
//! let result = run_app(&cfg, &AppProfile::test_tiny());
//! assert!(result.temps.frontend.abs_max_c > 45.0); // warm frontend
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dtm;
pub mod emergency;
pub mod engine;
pub mod experiment;
pub mod figures;
pub mod job;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod server;
pub mod shard;
pub mod store;

pub use distfront_thermal::Integrator;
pub use dtm::{
    DvfsPolicy, FetchGateController, FetchGatePolicy, GlobalDvfsController, MigrationController,
    MigrationPolicy,
};
pub use emergency::{EmergencyController, EmergencyPolicy};
pub use engine::{
    CellOutcome, CoupledEngine, DtmAction, DtmPolicy, EngineError, ReplayBackend, RunStats,
    SweepReport, SweepRunner, TraceMode, TraceStore, WarmStartCache,
};
pub use experiment::{DtmSpec, ExperimentConfig};
pub use figures::{figure1, figure12, figure13, figure14, ComparisonData, AMBIENT_C};
pub use job::{
    JobClass, JobEnv, JobReport, JobSpec, JobSpecError, JobTarget, StatusCode, TraceSpec,
};
pub use report::{FigureRow, FigureTable};
pub use runner::{
    average_temps, mean_cpi, run_app, run_suite, slowdown, try_run_app, AppResult, BlockGroups,
    TempReport,
};
pub use scenarios::{RunOptions, Scenario, ScenarioReport};
pub use store::{DurableStore, StoreSnapshot};
