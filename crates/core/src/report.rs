//! Plain-text rendering of figure tables.

use std::fmt;

/// One row of a figure table: a label and its numeric values.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Row label (configuration or processor element).
    pub label: String,
    /// One value per column.
    pub values: Vec<f64>,
}

/// A reproduced table or figure, ready to print.
///
/// # Examples
///
/// ```
/// use distfront::report::{FigureRow, FigureTable};
///
/// let t = FigureTable {
///     id: "demo",
///     title: "Demo".into(),
///     columns: vec!["A".into(), "B".into()],
///     rows: vec![FigureRow { label: "x".into(), values: vec![1.0, 2.5] }],
/// };
/// let text = t.to_string();
/// assert!(text.contains("Demo"));
/// assert!(text.contains("2.50"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Stable identifier (e.g. `"figure12"`).
    pub id: &'static str,
    /// Human-readable caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<FigureRow>,
}

impl FigureTable {
    /// Looks a value up by row label and column index.
    pub fn value(&self, row_label: &str, column: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == row_label)
            .and_then(|r| r.values.get(column))
            .copied()
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} [{}] ==", self.title, self.id)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4)
            + 2;
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, "{c:>16}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:label_w$}", row.label)?;
            for v in &row.values {
                write!(f, "{v:>16.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FigureTable {
        FigureTable {
            id: "t",
            title: "T".into(),
            columns: vec!["c1".into(), "c2".into()],
            rows: vec![
                FigureRow {
                    label: "alpha".into(),
                    values: vec![1.0, -2.345],
                },
                FigureRow {
                    label: "b".into(),
                    values: vec![10.5, 0.0],
                },
            ],
        }
    }

    #[test]
    fn renders_all_rows_and_columns() {
        let s = table().to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("c2"));
        assert!(s.contains("-2.35"));
        assert!(s.contains("10.50"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn value_lookup() {
        let t = table();
        assert_eq!(t.value("alpha", 1), Some(-2.345));
        assert_eq!(t.value("b", 0), Some(10.5));
        assert_eq!(t.value("zz", 0), None);
        assert_eq!(t.value("alpha", 5), None);
    }
}
