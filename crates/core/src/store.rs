//! Crash-safe persistence for the daemon's caches: append-only segment
//! files under a `--state-dir`, built on [`distfront_trace::codec`].
//!
//! The store owns every byte `distfront-sweepd` keeps across restarts:
//! the [`ResultCache`]'s fingerprint → frame batches and the
//! [`TraceStore`]'s capability-keyed `.dft` blobs. Both live in one
//! directory as two segment files:
//!
//! ```text
//! <state-dir>/
//!   results.dfsg   fingerprint → protocol frames, one record per job
//!   traces.dfsg    recorded activity traces, one `.dft` payload each
//! ```
//!
//! # Segment format (`DFSG` v1)
//!
//! A segment starts with the shared magic + version header (`DFSG`,
//! little-endian `u32` version) and is followed by self-delimiting
//! records, each:
//!
//! | field | encoding |
//! |---|---|
//! | kind | `u8` — 1 result, 2 trace |
//! | length | `u32` payload byte count |
//! | payload | `length` bytes |
//! | checksum | `u64` FNV-1a over kind + payload |
//!
//! A result payload is `u64` fingerprint, `u32` frame count, then
//! length-prefixed frame strings (strictly, with no trailing bytes). A
//! trace payload is the `.dft` stream exactly as
//! [`ActivityTrace::encode`] produces it — so the trace format's own
//! version policy applies on load, and a segment written by an older
//! binary still decodes as long as the trace reader accepts its version.
//!
//! # Crash safety
//!
//! Appends go through one file handle per segment and become durable at
//! [`DurableStore::flush`] (an `fsync`), which the daemon calls at every
//! insert-batch boundary *before* acknowledging the work — so a `SIGKILL`
//! can lose at most frames never acknowledged to a client. On open, a
//! segment is scanned strictly: a truncated or checksum-corrupt tail
//! (the signature of a crash mid-append) is **repaired, not fatal** — the
//! valid prefix is rewritten via write-temp + rename + directory `fsync`,
//! the damaged records are counted in [`StoreSnapshot::skipped`], and the
//! segment reopens for appending. A file that is not a `DFSG` segment at
//! all, or carries an unknown store version, is set aside the same way
//! (fresh header, everything skipped) rather than poisoning startup.
//!
//! What invalidates stored *results* is the job fingerprint itself: it
//! seeds in the DFAT trace-format version, so a format bump strands old
//! records (they stay on disk, unreferenced) instead of serving stale
//! bytes. Stored *traces* are invalidated only by the trace reader
//! refusing their version.
//!
//! [`ResultCache`]: crate::server::ResultCache
//! [`TraceStore`]: crate::engine::TraceStore

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use distfront_trace::codec::{CodecError, Reader, Writer};
use distfront_trace::ActivityTrace;

/// Magic bytes opening every segment file ("DistFront SeGment").
pub const STORE_MAGIC: [u8; 4] = *b"DFSG";

/// Current segment-container version. Bumped only when the record
/// framing itself changes; payload evolution rides the payloads' own
/// version policies.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Record kind: a cached job result (fingerprint + protocol frames).
const KIND_RESULT: u8 = 1;
/// Record kind: a recorded activity trace (`.dft` payload).
const KIND_TRACE: u8 = 2;

/// Bytes of framing around a record payload: kind + length + checksum.
const RECORD_OVERHEAD: usize = 1 + 4 + 8;

/// FNV-1a over the record kind and payload — the per-record integrity
/// check. Deliberately *not* the trace crate's seeded [`Fingerprint`],
/// whose seed shifts with the trace-format version: segment integrity
/// must not depend on what the payloads mean.
///
/// [`Fingerprint`]: distfront_trace::Fingerprint
fn record_checksum(kind: u8, payload: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = (FNV_OFFSET ^ u64::from(kind)).wrapping_mul(FNV_PRIME);
    for &b in payload {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// One append-only segment file: a locked append handle plus the count
/// of framing-valid records it holds.
#[derive(Debug)]
struct Segment {
    kind: u8,
    path: PathBuf,
    file: Mutex<File>,
    records: AtomicU64,
}

/// What a strict scan of a segment's bytes found.
struct Scan {
    /// Payloads of checksum-valid records of the segment's kind, in
    /// append order.
    payloads: Vec<Vec<u8>>,
    /// Checksum-valid records carrying an unexpected kind byte (kept on
    /// disk — the framing is sound — but not surfaced).
    foreign: usize,
    /// Byte length of the valid prefix (header + whole valid records).
    valid_len: usize,
    /// Whether the magic + version header itself was usable.
    header_ok: bool,
    /// Records (or tails) dropped as truncated or corrupt.
    skipped: usize,
}

/// Scans `bytes` as a segment of `kind` records, stopping at the first
/// framing violation: everything after a bad record is untrustworthy
/// (record boundaries are only known by walking), so the scan keeps the
/// valid prefix and counts the rest as one skipped tail.
fn scan_segment(bytes: &[u8], kind: u8) -> Scan {
    let mut scan = Scan {
        payloads: Vec::new(),
        foreign: 0,
        valid_len: 0,
        header_ok: false,
        skipped: 0,
    };
    let mut r = Reader::new(bytes);
    match r.header(&STORE_MAGIC, "segment magic") {
        Ok(STORE_FORMAT_VERSION) => {}
        Ok(_) | Err(_) => {
            if !bytes.is_empty() {
                scan.skipped = 1;
            }
            return scan;
        }
    }
    scan.header_ok = true;
    scan.valid_len = bytes.len() - r.remaining();
    while r.remaining() > 0 {
        let record = (|| -> Result<(u8, &[u8]), CodecError> {
            let k = r.u8("record kind")?;
            let len = r.u32("record length")? as usize;
            let payload = r.take(len, "record payload")?;
            let sum = r.u64("record checksum")?;
            if sum != record_checksum(k, payload) {
                return Err(CodecError::Corrupt("record checksum"));
            }
            Ok((k, payload))
        })();
        match record {
            Ok((k, payload)) => {
                if k == kind {
                    scan.payloads.push(payload.to_vec());
                } else {
                    scan.foreign += 1;
                }
                scan.valid_len = bytes.len() - r.remaining();
            }
            Err(_) => {
                scan.skipped += 1;
                break;
            }
        }
    }
    scan
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename over the target, then a best-effort directory `fsync`
/// so the rename itself is durable.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("dfsg.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

impl Segment {
    /// Opens (creating or repairing as needed) `dir/name` as a segment
    /// of `kind` records. Returns the segment ready for appends, the
    /// surviving payloads in append order, and how many records or tails
    /// were dropped as damaged.
    fn open(dir: &Path, name: &str, kind: u8) -> io::Result<(Segment, Vec<Vec<u8>>, usize)> {
        let path = dir.join(name);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = scan_segment(&bytes, kind);
        if scan.valid_len != bytes.len() || bytes.is_empty() {
            // Crash tail, foreign garbage, or a brand-new segment: make
            // the on-disk file exactly the valid prefix before taking an
            // append handle, so the next crash scan starts clean.
            let repaired = if scan.header_ok {
                bytes[..scan.valid_len].to_vec()
            } else {
                let mut w = Writer::with_capacity(8);
                w.header(&STORE_MAGIC, STORE_FORMAT_VERSION);
                w.into_vec()
            };
            write_atomic(&path, &repaired)?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        let segment = Segment {
            kind,
            path,
            file: Mutex::new(file),
            records: AtomicU64::new((scan.payloads.len() + scan.foreign) as u64),
        };
        Ok((segment, scan.payloads, scan.skipped))
    }

    /// Appends one framed record. Buffered in the OS until
    /// [`Segment::flush`]; a record is only considered persisted once
    /// the flush after it succeeds.
    fn append(&self, payload: &[u8]) -> io::Result<()> {
        let mut w = Writer::with_capacity(RECORD_OVERHEAD + payload.len());
        w.u8(self.kind);
        w.u32(payload.len() as u32);
        w.bytes(payload);
        w.u64(record_checksum(self.kind, payload));
        let bytes = w.into_vec();
        let mut file = self.file.lock().expect("segment file poisoned");
        file.write_all(&bytes)?;
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// `fsync`s the segment file.
    fn flush(&self) -> io::Result<()> {
        self.file.lock().expect("segment file poisoned").sync_all()
    }
}

/// Everything a [`DurableStore`] recovered from disk on open, ready to
/// seed the in-memory caches. Entries appear in append order, so a
/// consumer folding them into a map naturally keeps the newest record
/// for a key (last-wins).
#[derive(Debug, Default)]
pub struct StoreSnapshot {
    /// Cached job results: fingerprint → the protocol frames the daemon
    /// streamed for that job (replayed verbatim on a hit).
    pub results: Vec<(u64, Vec<String>)>,
    /// Recorded activity traces, decoded under the current trace reader.
    pub traces: Vec<ActivityTrace>,
    /// Records dropped while loading: damaged framing (repaired away) or
    /// payloads the current readers refuse (left on disk, unreferenced).
    pub skipped: usize,
}

impl StoreSnapshot {
    /// The newest result record for `fingerprint`, honoring the
    /// last-wins append order. This is how a shard coordinator reads a
    /// worker's result artifact back: a record exists exactly when the
    /// worker completed its append (segment records are atomic), so
    /// `None` means the worker died before finishing.
    pub fn last_result(&self, fingerprint: u64) -> Option<&[String]> {
        self.results
            .iter()
            .rev()
            .find(|(fp, _)| *fp == fingerprint)
            .map(|(_, frames)| frames.as_slice())
    }
}

/// The append-only persistence layer behind a daemon's `--state-dir`:
/// one segment file for cached results, one for recorded traces.
///
/// Thread-safe: appends from concurrent executors serialize on
/// per-segment locks. Durability is explicit — call
/// [`flush`](Self::flush) at the batch boundary that must survive a
/// crash (the daemon does this before acknowledging any job).
#[derive(Debug)]
pub struct DurableStore {
    results: Segment,
    traces: Segment,
}

impl DurableStore {
    /// Opens (creating if absent, repairing if damaged) the store under
    /// `dir` and returns it alongside everything it held.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, disk full) are errors;
    /// truncated or corrupt segment *content* is repaired and reported
    /// through [`StoreSnapshot::skipped`] instead.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(DurableStore, StoreSnapshot)> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let (results, result_payloads, mut skipped) =
            Segment::open(dir, "results.dfsg", KIND_RESULT)?;
        let (traces, trace_payloads, trace_skipped) =
            Segment::open(dir, "traces.dfsg", KIND_TRACE)?;
        skipped += trace_skipped;

        let mut snapshot = StoreSnapshot {
            skipped,
            ..StoreSnapshot::default()
        };
        for payload in &result_payloads {
            match decode_result(payload) {
                Ok(entry) => snapshot.results.push(entry),
                Err(_) => snapshot.skipped += 1,
            }
        }
        for payload in &trace_payloads {
            match ActivityTrace::decode(payload) {
                Ok(trace) => snapshot.traces.push(trace),
                Err(_) => snapshot.skipped += 1,
            }
        }
        Ok((DurableStore { results, traces }, snapshot))
    }

    /// Appends one cached job result (not yet durable — see
    /// [`flush`](Self::flush)).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn append_result(&self, fingerprint: u64, frames: &[String]) -> io::Result<()> {
        self.results.append(&encode_result(fingerprint, frames))
    }

    /// Appends one recorded trace as its `.dft` bytes (not yet durable —
    /// see [`flush`](Self::flush)).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn append_trace(&self, trace: &ActivityTrace) -> io::Result<()> {
        self.traces.append(&trace.encode())
    }

    /// `fsync`s both segments: everything appended so far survives any
    /// crash after this returns.
    ///
    /// # Errors
    ///
    /// Propagates the first failing `fsync`.
    pub fn flush(&self) -> io::Result<()> {
        self.results.flush()?;
        self.traces.flush()
    }

    /// Result records currently persisted (loaded + appended).
    pub fn persisted_results(&self) -> u64 {
        self.results.records.load(Ordering::Relaxed)
    }

    /// Trace records currently persisted (loaded + appended).
    pub fn persisted_traces(&self) -> u64 {
        self.traces.records.load(Ordering::Relaxed)
    }

    /// The directory holding the segment files.
    pub fn dir(&self) -> &Path {
        self.results
            .path
            .parent()
            .expect("segment path always has a parent")
    }
}

/// Encodes a result record payload: fingerprint, frame count, frames.
fn encode_result(fingerprint: u64, frames: &[String]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(fingerprint);
    w.u32(frames.len() as u32);
    for frame in frames {
        w.str(frame);
    }
    w.into_vec()
}

/// Decodes a result record payload, strictly.
fn decode_result(payload: &[u8]) -> Result<(u64, Vec<String>), CodecError> {
    let mut r = Reader::new(payload);
    let fingerprint = r.u64("result fingerprint")?;
    let count = r.u32("result frame count")? as usize;
    let mut frames = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        frames.push(r.str("result frame")?);
    }
    r.expect_end()?;
    Ok((fingerprint, frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfront_trace::record::{PointKey, PointRecord};
    use distfront_trace::{FinalStats, IntervalRecord, TraceMeta, TraceShape};

    /// A fresh scratch directory unique to `name` and this process.
    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("distfront-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_trace() -> ActivityTrace {
        let shape = TraceShape {
            partitions: 1,
            backends: 1,
            tc_banks: 1,
        };
        let flat = shape.flat_len();
        ActivityTrace {
            meta: TraceMeta {
                version: distfront_trace::record::TRACE_FORMAT_VERSION,
                workload: "wl".to_string(),
                config: "cfg".to_string(),
                processor_fingerprint: 0x1234,
                seed: 42,
                uops_per_app: 100,
                interval_cycles: 50,
                shape,
                hop: false,
                replay_safe: true,
                dtm: None,
                points: vec![PointKey::Nominal],
            },
            pilot: vec![7; flat],
            intervals: vec![IntervalRecord {
                points: vec![PointRecord {
                    counters: vec![3; flat],
                    done: true,
                }],
                gated_bank: None,
            }],
            finals: FinalStats {
                cycles: 20,
                uops: 10,
                tc_hit_rate: 0.5,
                mispredict_rate: 0.25,
            },
        }
    }

    fn result_file(dir: &Path) -> PathBuf {
        dir.join("results.dfsg")
    }

    #[test]
    fn empty_then_round_trip() {
        let dir = scratch_dir("roundtrip");
        let (store, snapshot) = DurableStore::open(&dir).unwrap();
        assert!(snapshot.results.is_empty());
        assert!(snapshot.traces.is_empty());
        assert_eq!(snapshot.skipped, 0);

        let frames = vec!["CELL a,b,c".to_string(), "DONE status=0".to_string()];
        store.append_result(0xfeed_beef, &frames).unwrap();
        store.append_trace(&tiny_trace()).unwrap();
        store.flush().unwrap();
        assert_eq!(store.persisted_results(), 1);
        assert_eq!(store.persisted_traces(), 1);
        drop(store);

        let (store, snapshot) = DurableStore::open(&dir).unwrap();
        assert_eq!(snapshot.results, vec![(0xfeed_beef, frames)]);
        assert_eq!(snapshot.traces.len(), 1);
        assert_eq!(snapshot.traces[0], tiny_trace());
        assert_eq!(snapshot.skipped, 0);
        assert_eq!(store.persisted_results(), 1);
        assert_eq!(store.persisted_traces(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_keeps_append_order_for_last_wins() {
        let dir = scratch_dir("lastwins");
        let (store, _) = DurableStore::open(&dir).unwrap();
        store.append_result(1, &["DONE status=0".into()]).unwrap();
        store.append_result(1, &["DONE status=2".into()]).unwrap();
        store.flush().unwrap();
        drop(store);

        let (_, snapshot) = DurableStore::open(&dir).unwrap();
        let map: std::collections::HashMap<_, _> = snapshot.results.into_iter().collect();
        assert_eq!(map[&1], vec!["DONE status=2".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_repaired_not_fatal() {
        let dir = scratch_dir("truncated");
        let (store, _) = DurableStore::open(&dir).unwrap();
        store.append_result(1, &["DONE status=0".into()]).unwrap();
        store.append_result(2, &["DONE status=0".into()]).unwrap();
        store.flush().unwrap();
        drop(store);

        // Chop into the middle of the second record — a crash mid-append.
        let path = result_file(&dir);
        let len = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let (store, snapshot) = DurableStore::open(&dir).unwrap();
        assert_eq!(snapshot.results.len(), 1);
        assert_eq!(snapshot.results[0].0, 1);
        assert_eq!(snapshot.skipped, 1);
        // The tail is gone from disk too (header + the one whole
        // record), and appends keep working.
        let record = RECORD_OVERHEAD + encode_result(1, &["DONE status=0".into()]).len();
        assert_eq!(fs::metadata(&path).unwrap().len() as usize, 8 + record);
        store.append_result(3, &["DONE status=0".into()]).unwrap();
        store.flush().unwrap();
        drop(store);
        let (_, snapshot) = DurableStore::open(&dir).unwrap();
        let fps: Vec<u64> = snapshot.results.iter().map(|(fp, _)| *fp).collect();
        assert_eq!(fps, vec![1, 3]);
        assert_eq!(snapshot.skipped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_drops_the_tail_only() {
        let dir = scratch_dir("corrupt");
        let (store, _) = DurableStore::open(&dir).unwrap();
        store.append_result(1, &["DONE status=0".into()]).unwrap();
        store.append_result(2, &["DONE status=0".into()]).unwrap();
        store.flush().unwrap();
        drop(store);

        // Flip one payload byte inside the second record: its checksum
        // fails, and everything from there on is untrustworthy.
        let path = result_file(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let (_, snapshot) = DurableStore::open(&dir).unwrap();
        assert_eq!(snapshot.results.len(), 1);
        assert_eq!(snapshot.results[0].0, 1);
        assert_eq!(snapshot.skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_set_aside_not_fatal() {
        let dir = scratch_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(result_file(&dir), b"not a segment at all").unwrap();

        let (store, snapshot) = DurableStore::open(&dir).unwrap();
        assert!(snapshot.results.is_empty());
        assert_eq!(snapshot.skipped, 1);
        store.append_result(9, &["DONE status=0".into()]).unwrap();
        store.flush().unwrap();
        drop(store);
        let (_, snapshot) = DurableStore::open(&dir).unwrap();
        assert_eq!(snapshot.results.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_store_version_is_set_aside() {
        let dir = scratch_dir("version");
        fs::create_dir_all(&dir).unwrap();
        let mut w = Writer::new();
        w.header(&STORE_MAGIC, STORE_FORMAT_VERSION + 1);
        w.u64(0xdead);
        fs::write(result_file(&dir), w.into_vec()).unwrap();

        let (_, snapshot) = DurableStore::open(&dir).unwrap();
        assert!(snapshot.results.is_empty());
        assert_eq!(snapshot.skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_covers_the_kind_byte() {
        assert_ne!(record_checksum(1, &[2, 3]), record_checksum(2, &[2, 3]));
        assert_ne!(record_checksum(1, &[]), record_checksum(2, &[]));
    }
}
