//! Sweep-as-a-service: the `distfront-sweepd` daemon.
//!
//! Every one-shot CLI invocation pays twice for state that could outlive
//! it: the [`WarmStartCache`](crate::engine::WarmStartCache) and
//! [`TraceStore`](crate::engine::TraceStore) die with the process, so a
//! second run of the same grid re-solves every warm start and re-records
//! every trace. This module keeps them alive: a [`SweepDaemon`] is a
//! long-running TCP service holding one process-wide [`JobEnv`] plus a
//! content-addressed [`ResultCache`], so a resubmitted job is served
//! from stored frames without re-solving a single cell, and even a
//! *novel* job reuses every warm start and recorded trace earlier jobs
//! left behind.
//!
//! # Architecture
//!
//! ```text
//!  client ──JOB──▶ connection thread ──▶ fingerprint ──▶ ResultCache ──hit──▶ replay frames
//!                                              │ miss
//!                                              ▼
//!                      interactive queue   deferrable queue
//!                            │                   │
//!                      run-ahead executor   queued executor ──▶ JobEnv (warm starts + traces)
//!                            └───── frames ──────┘
//!                                  │
//!                         stream to client + insert into ResultCache
//! ```
//!
//! One thread per connection parses [`protocol`] commands; jobs are
//! classified by their [`JobClass`] onto two executors — the
//! *interactive* executor runs ahead (a bulk grid never delays a
//! latency-sensitive probe), the *deferrable* executor drains bulk jobs
//! in submission order. Both executors share the daemon's [`JobEnv`],
//! which is the whole point: it is the state worth keeping alive.
//!
//! The daemon follows the CLI's no-registry discipline: plain std TCP on
//! a loopback address, newline-delimited text frames, debuggable with
//! `nc`. Shutdown is a protocol command (`SHUTDOWN`), not a signal —
//! std-only Rust cannot trap SIGTERM, so the contract is: `SHUTDOWN`
//! drains the executors and exits 0; SIGTERM just kills the process
//! (safe, since the caches are in-memory and rebuilt on demand).
//!
//! # Examples
//!
//! ```
//! use distfront::job::JobSpec;
//! use distfront::server::{Client, SweepDaemon};
//!
//! let handle = SweepDaemon::bind("127.0.0.1:0").unwrap().spawn();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let spec = JobSpec::scenario("baseline").with_smoke(true).with_uops(20_000);
//! let first = client.submit(&spec).unwrap();
//! let second = client.submit(&spec).unwrap();
//! assert!(!first.cached && second.cached);
//! assert_eq!(first.result_lines, second.result_lines); // byte-identical
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

pub mod cache;
pub mod protocol;

pub use cache::ResultCache;
pub use protocol::Command;

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::job::{JobClass, JobEnv, JobSpec, StatusCode};

/// One job waiting on an executor.
struct QueuedJob {
    spec: JobSpec,
    fingerprint: u64,
    class: JobClass,
    /// Writer half of the submitting connection (reads happen on a
    /// separate clone); the executor streams frames through it.
    writer: Arc<Mutex<TcpStream>>,
    /// Signalled when the job's terminal frame has been sent and its
    /// result cached, so the connection thread can resume reading.
    done: Arc<(Mutex<bool>, Condvar)>,
}

/// A class's submission queue. The mutex also arbitrates shutdown:
/// [`push`](Self::push) refuses once the flag is up, and the flag is
/// raised under the lock, so an accepted job is always drained.
struct WorkQueue {
    state: Mutex<(VecDeque<QueuedJob>, bool)>,
    cv: Condvar,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a job unless the daemon is shutting down.
    fn push(&self, job: QueuedJob) -> Result<(), QueuedJob> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.1 {
            return Err(job);
        }
        state.0.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` means shutdown *and* drained.
    fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").1 = true;
        self.cv.notify_all();
    }
}

/// Daemon state shared by the acceptor, connection threads and
/// executors.
struct DaemonState {
    addr: SocketAddr,
    env: JobEnv,
    results: ResultCache,
    /// Indexed by [`class_index`].
    queues: [WorkQueue; 2],
    shutdown: AtomicBool,
    jobs: AtomicU64,
    executed: AtomicU64,
}

fn class_index(class: JobClass) -> usize {
    match class {
        JobClass::Interactive => 0,
        JobClass::Deferrable => 1,
    }
}

/// A bound-but-not-yet-running sweep daemon.
pub struct SweepDaemon {
    listener: TcpListener,
    state: Arc<DaemonState>,
}

impl std::fmt::Debug for SweepDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepDaemon")
            .field("addr", &self.state.addr)
            .finish()
    }
}

impl SweepDaemon {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port;
    /// loopback strongly recommended — the protocol has no
    /// authentication).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<SweepDaemon> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(DaemonState {
            addr: listener.local_addr()?,
            env: JobEnv::default(),
            results: ResultCache::new(),
            queues: [WorkQueue::new(), WorkQueue::new()],
            shutdown: AtomicBool::new(false),
            jobs: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        Ok(SweepDaemon { listener, state })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a `SHUTDOWN` command arrives, then drains both
    /// executors and returns. Blocks the calling thread; see
    /// [`spawn`](Self::spawn) for the background form.
    ///
    /// # Errors
    ///
    /// Returns accept-loop I/O errors; per-connection errors only end
    /// their own connection.
    pub fn run(self) -> io::Result<()> {
        let executors: Vec<_> = [JobClass::Interactive, JobClass::Deferrable]
            .into_iter()
            .map(|class| {
                let state = Arc::clone(&self.state);
                thread::spawn(move || executor_loop(&state, class))
            })
            .collect();
        println!("[sweepd] listening on {}", self.state.addr);
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    // Connection threads are detached: joining them would
                    // hang shutdown on any idle client still connected.
                    // Executors (below) are joined — accepted jobs drain.
                    thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) => eprintln!("[sweepd] accept failed: {e}"),
            }
        }
        for queue in &self.state.queues {
            queue.close();
        }
        for executor in executors {
            let _ = executor.join();
        }
        println!(
            "[sweepd] shutdown: {} jobs, {} executed, {} cache hits",
            self.state.jobs.load(Ordering::Relaxed),
            self.state.executed.load(Ordering::Relaxed),
            self.state.results.hits(),
        );
        Ok(())
    }

    /// Runs the daemon on a background thread, returning a handle with
    /// the bound address — the in-process form the integration tests and
    /// doctests use.
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.state.addr;
        let thread = thread::spawn(move || self.run());
        DaemonHandle { addr, thread }
    }
}

/// A running background daemon (see [`SweepDaemon::spawn`]).
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to exit (something must have sent
    /// `SHUTDOWN`, e.g. [`Client::shutdown`]).
    ///
    /// # Errors
    ///
    /// Returns the daemon's exit error, or an [`io::Error`] if its
    /// thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("daemon thread panicked"))?
    }
}

/// The executor loop for one job class: pop, execute, stream, cache,
/// signal — until shutdown *and* drained.
fn executor_loop(state: &DaemonState, class: JobClass) {
    let queue = &state.queues[class_index(class)];
    while let Some(job) = queue.pop() {
        state.executed.fetch_add(1, Ordering::Relaxed);
        let progress_writer = Arc::clone(&job.writer);
        let outcome = job.spec.execute(&state.env, move |cell| {
            // Advisory, completion-order; a lost client must not kill
            // the solve (its result is still worth caching).
            let _ = write_line(&progress_writer, &protocol::progress_frame(cell));
        });
        match outcome {
            Ok(report) => {
                let frames = protocol::result_frames(&report);
                send_result_frames(&job.writer, &frames, false);
                // Insert before signalling: once the submitter has seen
                // DONE, a resubmission is guaranteed a cache hit.
                state.results.insert(job.fingerprint, frames);
            }
            Err(e) => {
                // Unreachable in practice — the connection thread
                // fingerprinted (hence resolved) the spec before
                // enqueueing — but a protocol error beats a panic.
                let _ = write_line(
                    &job.writer,
                    &protocol::err_frame(StatusCode::Usage, &e.to_string()),
                );
            }
        }
        let (lock, cv) = &*job.done;
        *lock.lock().expect("done signal poisoned") = true;
        cv.notify_all();
    }
}

/// Writes one frame line; errors mean the client is gone.
fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> io::Result<()> {
    let mut stream = writer.lock().expect("writer poisoned");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Streams a job's stored result frames, appending the `cached=` token
/// to the terminal `DONE` line (the only byte that may differ between a
/// fresh run and a replay).
fn send_result_frames(writer: &Arc<Mutex<TcpStream>>, frames: &[String], cached: bool) {
    for frame in frames {
        let line = if frame.starts_with("DONE ") {
            format!("{frame} cached={}", u8::from(cached))
        } else {
            frame.clone()
        };
        if write_line(writer, &line).is_err() {
            return;
        }
    }
}

/// Serves one connection until EOF, error, or `SHUTDOWN`.
fn handle_connection(state: &DaemonState, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(e) => {
            eprintln!("[sweepd] connection setup failed: {e}");
            return;
        }
    };
    let writer = Arc::new(Mutex::new(stream));
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return, // client gone
        };
        if line.trim().is_empty() {
            continue;
        }
        let command = match Command::parse(&line) {
            Ok(command) => command,
            Err((status, msg)) => {
                if write_line(&writer, &protocol::err_frame(status, &msg)).is_err() {
                    return;
                }
                continue;
            }
        };
        match command {
            Command::Ping => {
                if write_line(&writer, "PONG").is_err() {
                    return;
                }
            }
            Command::Stats => {
                if write_line(&writer, &stats_frame(state)).is_err() {
                    return;
                }
            }
            Command::Shutdown => {
                let _ = write_line(&writer, "BYE");
                initiate_shutdown(state);
                return;
            }
            Command::Job(spec) => {
                if !handle_job(state, &writer, spec) {
                    return;
                }
            }
        }
    }
}

/// Handles one `JOB` submission; returns `false` when the connection is
/// dead and its thread should exit.
fn handle_job(state: &DaemonState, writer: &Arc<Mutex<TcpStream>>, spec: JobSpec) -> bool {
    state.jobs.fetch_add(1, Ordering::Relaxed);
    let fingerprint = match spec.fingerprint() {
        Ok(fingerprint) => fingerprint,
        Err(e) => {
            return write_line(
                writer,
                &protocol::err_frame(StatusCode::Usage, &e.to_string()),
            )
            .is_ok();
        }
    };
    if write_line(writer, &protocol::queued_frame(fingerprint, spec.class)).is_err() {
        return false;
    }
    if let Some(frames) = state.results.lookup(fingerprint) {
        println!(
            "[sweepd] cache hit fp={fingerprint:016x} class={} ({} frames replayed)",
            spec.class,
            frames.len()
        );
        send_result_frames(writer, &frames, true);
        return true;
    }
    println!("[sweepd] job fp={fingerprint:016x} class={}", spec.class);
    let done = Arc::new((Mutex::new(false), Condvar::new()));
    let job = QueuedJob {
        fingerprint,
        writer: Arc::clone(writer),
        done: Arc::clone(&done),
        class: spec.class,
        spec,
    };
    let queue = &state.queues[class_index(job.class)];
    if queue.push(job).is_err() {
        return write_line(
            writer,
            &protocol::err_frame(StatusCode::Io, "daemon is shutting down"),
        )
        .is_ok();
    }
    let (lock, cv) = &*done;
    let mut finished = lock.lock().expect("done signal poisoned");
    while !*finished {
        finished = cv.wait(finished).expect("done signal poisoned");
    }
    true
}

/// Raises the shutdown flag, closes both queues, and unblocks the
/// accept loop with a throwaway self-connection.
fn initiate_shutdown(state: &DaemonState) {
    state.shutdown.store(true, Ordering::SeqCst);
    for queue in &state.queues {
        queue.close();
    }
    let _ = TcpStream::connect(state.addr);
}

/// The `STATS` response frame.
fn stats_frame(state: &DaemonState) -> String {
    format!(
        "STATS jobs={} executed={} result_hits={} result_entries={} warm_hits={} warm_misses={} warm_entries={} traces={}",
        state.jobs.load(Ordering::Relaxed),
        state.executed.load(Ordering::Relaxed),
        state.results.hits(),
        state.results.len(),
        state.env.warm.hits(),
        state.env.warm.misses(),
        state.env.warm.len(),
        state.env.traces.len(),
    )
}

/// Daemon counters, parsed from a `STATS` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// `JOB` submissions accepted (hits and misses alike).
    pub jobs: u64,
    /// Jobs actually executed (cache misses).
    pub executed: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Distinct results stored.
    pub result_entries: u64,
    /// Warm-start cache hits across all jobs.
    pub warm_hits: u64,
    /// Warm-start cache misses (cold solves).
    pub warm_misses: u64,
    /// Warm-start states stored.
    pub warm_entries: u64,
    /// Recorded traces stored.
    pub traces: u64,
}

impl DaemonStats {
    /// Parses a `STATS` frame.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] for anything else.
    pub fn parse(frame: &str) -> io::Result<DaemonStats> {
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad STATS frame {frame:?}"),
            )
        };
        let mut stats = DaemonStats::default();
        let rest = frame.strip_prefix("STATS ").ok_or_else(bad)?;
        for token in rest.split_ascii_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(bad)?;
            let value: u64 = value.parse().map_err(|_| bad())?;
            match key {
                "jobs" => stats.jobs = value,
                "executed" => stats.executed = value,
                "result_hits" => stats.result_hits = value,
                "result_entries" => stats.result_entries = value,
                "warm_hits" => stats.warm_hits = value,
                "warm_misses" => stats.warm_misses = value,
                "warm_entries" => stats.warm_entries = value,
                "traces" => stats.traces = value,
                _ => return Err(bad()),
            }
        }
        Ok(stats)
    }
}

/// One completed `JOB` exchange, as seen by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResponse {
    /// The job's terminal status (from `DONE` or `ERR`).
    pub status: StatusCode,
    /// Whether the daemon served stored frames (`DONE … cached=1`).
    pub cached: bool,
    /// Total cells in the grid.
    pub cells: usize,
    /// Cells that failed.
    pub failed: usize,
    /// CSV rows from `CELL` frames, canonical grid order (no header).
    pub csv_rows: Vec<String>,
    /// The result frames verbatim — `CELL`/`ERRCELL` lines plus the
    /// `DONE` line with its run-specific `cached=` token stripped. Two
    /// responses to the same spec compare equal here whatever the worker
    /// count, job class, or cache state: this is the byte-identity
    /// surface.
    pub result_lines: Vec<String>,
    /// The `ERR` message, when the job never ran.
    pub error: Option<String>,
}

/// A client connection to a running daemon — what `--connect` and the
/// integration tests drive.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")
    }

    fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// Submits a job and blocks until its terminal frame, discarding
    /// progress.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and malformed frames; a job that *ran* and
    /// failed is an `Ok` response with a non-[`Ok`](StatusCode::Ok)
    /// status.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<JobResponse> {
        self.submit_streaming(spec, |_| {})
    }

    /// [`submit`](Self::submit) with a frame callback: `on_frame` sees
    /// every `PROGRESS` line as it arrives (completion order).
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_streaming(
        &mut self,
        spec: &JobSpec,
        mut on_frame: impl FnMut(&str),
    ) -> io::Result<JobResponse> {
        self.send(&Command::Job(spec.clone()).encode())?;
        let mut response = JobResponse {
            status: StatusCode::Io,
            cached: false,
            cells: 0,
            failed: 0,
            csv_rows: Vec::new(),
            result_lines: Vec::new(),
            error: None,
        };
        loop {
            let line = self.recv()?;
            let bad = || io::Error::new(io::ErrorKind::InvalidData, format!("bad frame {line:?}"));
            if line.starts_with("QUEUED ") {
                continue;
            } else if line.starts_with("PROGRESS ") {
                on_frame(&line);
            } else if let Some(row) = line.strip_prefix("CELL ") {
                response.csv_rows.push(row.to_string());
                response.result_lines.push(line.clone());
            } else if line.starts_with("ERRCELL ") {
                response.result_lines.push(line.clone());
            } else if let Some(rest) = line.strip_prefix("DONE ") {
                let mut done_line = String::from("DONE");
                for token in rest.split_ascii_whitespace() {
                    let (key, value) = token.split_once('=').ok_or_else(bad)?;
                    match key {
                        "status" => {
                            let code = value.parse::<u8>().map_err(|_| bad())?;
                            response.status = StatusCode::from_code(code).ok_or_else(bad)?;
                        }
                        "cells" => response.cells = value.parse().map_err(|_| bad())?,
                        "failed" => response.failed = value.parse().map_err(|_| bad())?,
                        "cached" => response.cached = value == "1",
                        _ => return Err(bad()),
                    }
                    if key != "cached" {
                        done_line.push(' ');
                        done_line.push_str(token);
                    }
                }
                response.result_lines.push(done_line);
                return Ok(response);
            } else if let Some(rest) = line.strip_prefix("ERR ") {
                let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
                let code = code.parse::<u8>().map_err(|_| bad())?;
                response.status = StatusCode::from_code(code).ok_or_else(bad)?;
                response.error = Some(msg.to_string());
                return Ok(response);
            } else {
                return Err(bad());
            }
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails if the daemon is unreachable or answers anything but
    /// `PONG`.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send("PING")?;
        match self.recv()?.as_str() {
            "PONG" => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected PONG, got {other:?}"),
            )),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// Propagates I/O and frame-parse failures.
    pub fn stats(&mut self) -> io::Result<DaemonStats> {
        self.send("STATS")?;
        let line = self.recv()?;
        DaemonStats::parse(&line)
    }

    /// Asks the daemon to drain and exit; consumes the client (the
    /// connection is closed by the exchange).
    ///
    /// # Errors
    ///
    /// Fails if the daemon does not acknowledge with `BYE`.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.send("SHUTDOWN")?;
        match self.recv()?.as_str() {
            "BYE" => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected BYE, got {other:?}"),
            )),
        }
    }
}
