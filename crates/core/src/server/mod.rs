//! Sweep-as-a-service: the `distfront-sweepd` daemon.
//!
//! Every one-shot CLI invocation pays twice for state that could outlive
//! it: the [`WarmStartCache`](crate::engine::WarmStartCache) and
//! [`TraceStore`] die with the process, so a
//! second run of the same grid re-solves every warm start and re-records
//! every trace. This module keeps them alive: a [`SweepDaemon`] is a
//! long-running TCP service holding one process-wide [`JobEnv`] plus a
//! content-addressed [`ResultCache`], so a resubmitted job is served
//! from stored frames without re-solving a single cell, and even a
//! *novel* job reuses every warm start and recorded trace earlier jobs
//! left behind.
//!
//! # Architecture
//!
//! ```text
//!  client ──JOB──▶ connection thread ──▶ fingerprint ──▶ ResultCache ──hit──▶ replay frames
//!                                              │ miss
//!                                              ▼
//!                      interactive queue   deferrable queue
//!                            │                   │
//!                      run-ahead executor   queued executor ──▶ JobEnv (warm starts + traces)
//!                            └───── frames ──────┘
//!                                  │
//!                         stream to client + insert into ResultCache
//! ```
//!
//! One thread per connection parses [`protocol`] commands; jobs are
//! classified by their [`JobClass`] onto two executors — the
//! *interactive* executor runs ahead (a bulk grid never delays a
//! latency-sensitive probe), the *deferrable* executor drains bulk jobs
//! in submission order. Both executors share the daemon's [`JobEnv`],
//! which is the whole point: it is the state worth keeping alive.
//! Connections are **pipelined**: a thread queues a `JOB` and goes back
//! to reading, so any number of jobs from one connection can be in
//! flight; every job-scoped frame carries a `job=<n>` sequence id (see
//! [`protocol`]) so responses demultiplex.
//!
//! # Persistence
//!
//! [`SweepDaemon::bind_persistent`] adds a [`DurableStore`] under a
//! state directory: the [`ResultCache`] and the env's
//! [`TraceStore`] load from it on startup and
//! append each novel result/recording back to it. An executor makes the
//! batch durable (`fsync`) **before** the job's terminal frame is sent —
//! the insert-batch boundary — so any result a client has seen
//! acknowledged survives a kill at any instant. A daemon restarted on
//! the same `--state-dir` therefore serves a resubmitted job from disk,
//! byte-identical to its previous life's response. (Warm starts stay
//! in-memory: they are bit-reproducible accelerators, cheap to rebuild
//! and huge to store.)
//!
//! The daemon follows the CLI's no-registry discipline: plain std TCP on
//! a loopback address, newline-delimited text frames, debuggable with
//! `nc`. Shutdown is a protocol command (`SHUTDOWN`), not a signal —
//! std-only Rust cannot trap SIGTERM, so the contract is: `SHUTDOWN`
//! drains the executors, flushes the store and exits 0; SIGTERM just
//! kills the process, which is *still* safe with a state dir, because
//! durability rides the insert-batch boundary above, not the exit path —
//! at worst the store misses results whose `DONE` no client ever saw.
//!
//! # Examples
//!
//! ```
//! use distfront::job::JobSpec;
//! use distfront::server::{Client, SweepDaemon};
//!
//! let handle = SweepDaemon::bind("127.0.0.1:0").unwrap().spawn();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let spec = JobSpec::scenario("baseline").with_smoke(true).with_uops(20_000);
//! let first = client.submit(&spec).unwrap();
//! let second = client.submit(&spec).unwrap();
//! assert!(!first.cached && second.cached);
//! assert_eq!(first.result_lines, second.result_lines); // byte-identical
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

pub mod cache;
pub mod protocol;

pub use cache::ResultCache;
pub use protocol::Command;

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::engine::TraceStore;
use crate::job::{JobClass, JobEnv, JobSpec, StatusCode};
use crate::store::DurableStore;

/// One job waiting on an executor.
struct QueuedJob {
    spec: JobSpec,
    fingerprint: u64,
    class: JobClass,
    /// The submitting connection's sequence id for this job — stamped
    /// onto every frame the executor sends for it.
    job_id: u64,
    /// Writer half of the submitting connection (reads happen on a
    /// separate clone); the executor streams frames through it.
    writer: Arc<Mutex<TcpStream>>,
}

/// A class's submission queue. The mutex also arbitrates shutdown:
/// [`push`](Self::push) refuses once the flag is up, and the flag is
/// raised under the lock, so an accepted job is always drained.
struct WorkQueue {
    state: Mutex<(VecDeque<QueuedJob>, bool)>,
    cv: Condvar,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a job unless the daemon is shutting down.
    fn push(&self, job: QueuedJob) -> Result<(), QueuedJob> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.1 {
            return Err(job);
        }
        state.0.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` means shutdown *and* drained.
    fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").1 = true;
        self.cv.notify_all();
    }
}

/// Daemon state shared by the acceptor, connection threads and
/// executors.
struct DaemonState {
    addr: SocketAddr,
    env: JobEnv,
    results: ResultCache,
    /// The persistence layer behind `results` and the env's trace store,
    /// when the daemon was bound with a state dir — the daemon holds it
    /// for the flush boundaries and the `STATS` persisted counts.
    store: Option<Arc<DurableStore>>,
    /// Indexed by [`class_index`].
    queues: [WorkQueue; 2],
    shutdown: AtomicBool,
    jobs: AtomicU64,
    executed: AtomicU64,
}

fn class_index(class: JobClass) -> usize {
    match class {
        JobClass::Interactive => 0,
        JobClass::Deferrable => 1,
    }
}

/// A bound-but-not-yet-running sweep daemon.
pub struct SweepDaemon {
    listener: TcpListener,
    state: Arc<DaemonState>,
}

impl std::fmt::Debug for SweepDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepDaemon")
            .field("addr", &self.state.addr)
            .finish()
    }
}

impl SweepDaemon {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port;
    /// loopback strongly recommended — the protocol has no
    /// authentication).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<SweepDaemon> {
        Self::build(addr, JobEnv::default(), ResultCache::new(), None)
    }

    /// [`bind`](Self::bind) plus a [`DurableStore`] under `state_dir`:
    /// the result cache and trace store load whatever a previous daemon
    /// life persisted there (repairing damaged segment tails, never
    /// failing on them) and append every novel result and recording
    /// back, so a restart serves byte-identical disk cache hits.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure and genuine store I/O errors
    /// (permissions, disk full) — but not store *corruption*, which is
    /// repaired and logged instead.
    pub fn bind_persistent(
        addr: impl ToSocketAddrs,
        state_dir: impl AsRef<Path>,
    ) -> io::Result<SweepDaemon> {
        let (store, snapshot) = DurableStore::open(state_dir)?;
        let store = Arc::new(store);
        println!(
            "[sweepd] state dir {}: loaded {} results, {} traces ({} records skipped)",
            store.dir().display(),
            snapshot.results.len(),
            snapshot.traces.len(),
            snapshot.skipped,
        );
        let results = ResultCache::persistent(Arc::clone(&store), snapshot.results);
        let env = JobEnv {
            traces: Arc::new(TraceStore::persistent(Arc::clone(&store), snapshot.traces)),
            ..JobEnv::default()
        };
        Self::build(addr, env, results, Some(store))
    }

    fn build(
        addr: impl ToSocketAddrs,
        env: JobEnv,
        results: ResultCache,
        store: Option<Arc<DurableStore>>,
    ) -> io::Result<SweepDaemon> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(DaemonState {
            addr: listener.local_addr()?,
            env,
            results,
            store,
            queues: [WorkQueue::new(), WorkQueue::new()],
            shutdown: AtomicBool::new(false),
            jobs: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        Ok(SweepDaemon { listener, state })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a `SHUTDOWN` command arrives, then drains both
    /// executors and returns. Blocks the calling thread; see
    /// [`spawn`](Self::spawn) for the background form.
    ///
    /// # Errors
    ///
    /// Returns accept-loop I/O errors; per-connection errors only end
    /// their own connection.
    pub fn run(self) -> io::Result<()> {
        let executors: Vec<_> = [JobClass::Interactive, JobClass::Deferrable]
            .into_iter()
            .map(|class| {
                let state = Arc::clone(&self.state);
                thread::spawn(move || executor_loop(&state, class))
            })
            .collect();
        println!("[sweepd] listening on {}", self.state.addr);
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    // Connection threads are detached: joining them would
                    // hang shutdown on any idle client still connected.
                    // Executors (below) are joined — accepted jobs drain.
                    thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) => eprintln!("[sweepd] accept failed: {e}"),
            }
        }
        for queue in &self.state.queues {
            queue.close();
        }
        for executor in executors {
            let _ = executor.join();
        }
        // Belt-and-braces: every executor already flushed at its last
        // batch boundary, but `SHUTDOWN` promises a settled store.
        if let Some(store) = &self.state.store {
            store.flush()?;
            println!(
                "[sweepd] state dir {}: {} results, {} traces persisted",
                store.dir().display(),
                store.persisted_results(),
                store.persisted_traces(),
            );
        }
        println!(
            "[sweepd] shutdown: {} jobs, {} executed, {} cache hits",
            self.state.jobs.load(Ordering::Relaxed),
            self.state.executed.load(Ordering::Relaxed),
            self.state.results.hits(),
        );
        Ok(())
    }

    /// Runs the daemon on a background thread, returning a handle with
    /// the bound address — the in-process form the integration tests and
    /// doctests use.
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.state.addr;
        let thread = thread::spawn(move || self.run());
        DaemonHandle { addr, thread }
    }
}

/// A running background daemon (see [`SweepDaemon::spawn`]).
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to exit (something must have sent
    /// `SHUTDOWN`, e.g. [`Client::shutdown`]).
    ///
    /// # Errors
    ///
    /// Returns the daemon's exit error, or an [`io::Error`] if its
    /// thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("daemon thread panicked"))?
    }
}

/// The executor loop for one job class: pop, execute, cache, persist,
/// stream — until shutdown *and* drained.
fn executor_loop(state: &DaemonState, class: JobClass) {
    let queue = &state.queues[class_index(class)];
    while let Some(job) = queue.pop() {
        state.executed.fetch_add(1, Ordering::Relaxed);
        let progress_writer = Arc::clone(&job.writer);
        let job_id = job.job_id;
        let outcome = job.spec.execute(&state.env, move |cell| {
            // Advisory, completion-order; a lost client must not kill
            // the solve (its result is still worth caching).
            let _ = write_line(&progress_writer, &protocol::progress_frame(job_id, cell));
        });
        match outcome {
            Ok(report) => {
                let frames = protocol::result_frames(&report);
                // Insert *and make durable* before streaming: this is
                // the insert-batch boundary — once the submitter has
                // seen DONE, a resubmission is guaranteed a cache hit,
                // in the next daemon life as much as in this one.
                state.results.insert(job.fingerprint, frames.clone());
                if let Some(store) = &state.store {
                    if let Err(e) = store.flush() {
                        eprintln!("[sweepd] store flush failed: {e}");
                    }
                }
                send_result_frames(&job.writer, job.job_id, &frames, false);
            }
            Err(e) => {
                // Unreachable in practice — the connection thread
                // fingerprinted (hence resolved) the spec before
                // enqueueing — but a protocol error beats a panic.
                let _ = write_line(
                    &job.writer,
                    &protocol::job_err_frame(job.job_id, StatusCode::Usage, &e.to_string()),
                );
            }
        }
    }
}

/// Writes one frame line; errors mean the client is gone.
fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> io::Result<()> {
    let mut stream = writer.lock().expect("writer poisoned");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Streams a job's stored result frames: each line picks up the
/// connection's `job=` tag, and the terminal `DONE` additionally the
/// `cached=` token (the only bytes that may differ between a fresh run
/// and a replay — the stored frames themselves are connection-free).
/// The whole batch goes out under one writer lock, so concurrent
/// executors can never interleave two jobs' result batches on a
/// pipelined connection.
fn send_result_frames(writer: &Arc<Mutex<TcpStream>>, job: u64, frames: &[String], cached: bool) {
    let mut stream = writer.lock().expect("writer poisoned");
    for frame in frames {
        let line = if frame.starts_with("DONE ") {
            format!("{frame} cached={}", u8::from(cached))
        } else {
            frame.clone()
        };
        let tagged = protocol::tag_frame(job, &line);
        if stream
            .write_all(tagged.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_err()
        {
            return;
        }
    }
}

/// Serves one connection until EOF, error, or `SHUTDOWN`.
fn handle_connection(state: &DaemonState, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(e) => {
            eprintln!("[sweepd] connection setup failed: {e}");
            return;
        }
    };
    let writer = Arc::new(Mutex::new(stream));
    // The connection's job sequence: monotonic from 0 in JOB order —
    // the ids that tag every job-scoped frame (see the protocol docs).
    let mut next_job: u64 = 0;
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return, // client gone
        };
        if line.trim().is_empty() {
            continue;
        }
        let command = match Command::parse(&line) {
            Ok(command) => command,
            Err((status, msg)) => {
                if write_line(&writer, &protocol::err_frame(status, &msg)).is_err() {
                    return;
                }
                continue;
            }
        };
        match command {
            Command::Ping => {
                if write_line(&writer, "PONG").is_err() {
                    return;
                }
            }
            Command::Stats => {
                if write_line(&writer, &stats_frame(state)).is_err() {
                    return;
                }
            }
            Command::Shutdown => {
                let _ = write_line(&writer, "BYE");
                initiate_shutdown(state);
                return;
            }
            Command::Job(spec) => {
                let job_id = next_job;
                next_job += 1;
                if !handle_job(state, &writer, spec, job_id) {
                    return;
                }
            }
        }
    }
}

/// Handles one `JOB` submission: acknowledge, serve from cache or
/// enqueue — never blocking on execution, so the connection thread goes
/// straight back to reading and the connection pipelines. Returns
/// `false` when the connection is dead and its thread should exit.
fn handle_job(
    state: &DaemonState,
    writer: &Arc<Mutex<TcpStream>>,
    spec: JobSpec,
    job_id: u64,
) -> bool {
    state.jobs.fetch_add(1, Ordering::Relaxed);
    let fingerprint = match spec.fingerprint() {
        Ok(fingerprint) => fingerprint,
        Err(e) => {
            return write_line(
                writer,
                &protocol::job_err_frame(job_id, StatusCode::Usage, &e.to_string()),
            )
            .is_ok();
        }
    };
    if write_line(
        writer,
        &protocol::queued_frame(job_id, fingerprint, spec.class),
    )
    .is_err()
    {
        return false;
    }
    if let Some(frames) = state.results.lookup(fingerprint) {
        let source = if state.results.from_disk(fingerprint) {
            "disk cache hit"
        } else {
            "cache hit"
        };
        println!(
            "[sweepd] {source} fp={fingerprint:016x} class={} ({} frames replayed)",
            spec.class,
            frames.len()
        );
        send_result_frames(writer, job_id, &frames, true);
        return true;
    }
    println!("[sweepd] job fp={fingerprint:016x} class={}", spec.class);
    let job = QueuedJob {
        fingerprint,
        writer: Arc::clone(writer),
        job_id,
        class: spec.class,
        spec,
    };
    let queue = &state.queues[class_index(job.class)];
    if queue.push(job).is_err() {
        return write_line(
            writer,
            &protocol::job_err_frame(job_id, StatusCode::Io, "daemon is shutting down"),
        )
        .is_ok();
    }
    true
}

/// Raises the shutdown flag, closes both queues, and unblocks the
/// accept loop with a throwaway self-connection.
fn initiate_shutdown(state: &DaemonState) {
    state.shutdown.store(true, Ordering::SeqCst);
    for queue in &state.queues {
        queue.close();
    }
    let _ = TcpStream::connect(state.addr);
}

/// The `STATS` response frame. The persisted counts are 0 for a daemon
/// without a state dir (nothing is, and nothing will be).
fn stats_frame(state: &DaemonState) -> String {
    let (persisted_results, persisted_traces) = state
        .store
        .as_ref()
        .map_or((0, 0), |s| (s.persisted_results(), s.persisted_traces()));
    format!(
        "STATS jobs={} executed={} result_hits={} result_entries={} warm_hits={} warm_misses={} warm_entries={} traces={} persisted_results={persisted_results} persisted_traces={persisted_traces}",
        state.jobs.load(Ordering::Relaxed),
        state.executed.load(Ordering::Relaxed),
        state.results.hits(),
        state.results.len(),
        state.env.warm.hits(),
        state.env.warm.misses(),
        state.env.warm.len(),
        state.env.traces.len(),
    )
}

/// Daemon counters, parsed from a `STATS` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// `JOB` submissions accepted (hits and misses alike).
    pub jobs: u64,
    /// Jobs actually executed (cache misses).
    pub executed: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Distinct results stored.
    pub result_entries: u64,
    /// Warm-start cache hits across all jobs.
    pub warm_hits: u64,
    /// Warm-start cache misses (cold solves).
    pub warm_misses: u64,
    /// Warm-start states stored.
    pub warm_entries: u64,
    /// Recorded traces stored.
    pub traces: u64,
    /// Result records persisted in the state dir (0 without one).
    pub persisted_results: u64,
    /// Trace records persisted in the state dir (0 without one).
    pub persisted_traces: u64,
}

impl DaemonStats {
    /// Parses a `STATS` frame.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] for anything else.
    pub fn parse(frame: &str) -> io::Result<DaemonStats> {
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad STATS frame {frame:?}"),
            )
        };
        let mut stats = DaemonStats::default();
        let rest = frame.strip_prefix("STATS ").ok_or_else(bad)?;
        for token in rest.split_ascii_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(bad)?;
            let value: u64 = value.parse().map_err(|_| bad())?;
            match key {
                "jobs" => stats.jobs = value,
                "executed" => stats.executed = value,
                "result_hits" => stats.result_hits = value,
                "result_entries" => stats.result_entries = value,
                "warm_hits" => stats.warm_hits = value,
                "warm_misses" => stats.warm_misses = value,
                "warm_entries" => stats.warm_entries = value,
                "traces" => stats.traces = value,
                "persisted_results" => stats.persisted_results = value,
                "persisted_traces" => stats.persisted_traces = value,
                _ => return Err(bad()),
            }
        }
        Ok(stats)
    }
}

/// One completed `JOB` exchange, as seen by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResponse {
    /// The job's terminal status (from `DONE` or `ERR`).
    pub status: StatusCode,
    /// Whether the daemon served stored frames (`DONE … cached=1`).
    pub cached: bool,
    /// Total cells in the grid.
    pub cells: usize,
    /// Cells that failed.
    pub failed: usize,
    /// CSV rows from `CELL` frames, canonical grid order (no header).
    pub csv_rows: Vec<String>,
    /// The result frames verbatim — `CELL`/`ERRCELL` lines plus the
    /// `DONE` line with its run-specific `cached=` token stripped. Two
    /// responses to the same spec compare equal here whatever the worker
    /// count, job class, or cache state: this is the byte-identity
    /// surface.
    pub result_lines: Vec<String>,
    /// The `ERR` message, when the job never ran.
    pub error: Option<String>,
}

impl JobResponse {
    /// The accumulator a job's frames fold into.
    fn pending() -> JobResponse {
        JobResponse {
            status: StatusCode::Io,
            cached: false,
            cells: 0,
            failed: 0,
            csv_rows: Vec::new(),
            result_lines: Vec::new(),
            error: None,
        }
    }

    /// Folds one already-untagged result frame in; `true` means the
    /// frame was terminal (`DONE`/`ERR`) and the response is complete.
    ///
    /// # Errors
    ///
    /// Rejects malformed and unknown frames.
    fn apply_frame(&mut self, line: &str) -> io::Result<bool> {
        let bad = || io::Error::new(io::ErrorKind::InvalidData, format!("bad frame {line:?}"));
        if let Some(row) = line.strip_prefix("CELL ") {
            self.csv_rows.push(row.to_string());
            self.result_lines.push(line.to_string());
        } else if line.starts_with("ERRCELL ") {
            self.result_lines.push(line.to_string());
        } else if let Some(rest) = line.strip_prefix("DONE ") {
            let mut done_line = String::from("DONE");
            for token in rest.split_ascii_whitespace() {
                let (key, value) = token.split_once('=').ok_or_else(bad)?;
                match key {
                    "status" => {
                        let code = value.parse::<u8>().map_err(|_| bad())?;
                        self.status = StatusCode::from_code(code).ok_or_else(bad)?;
                    }
                    "cells" => self.cells = value.parse().map_err(|_| bad())?,
                    "failed" => self.failed = value.parse().map_err(|_| bad())?,
                    "cached" => self.cached = value == "1",
                    _ => return Err(bad()),
                }
                if key != "cached" {
                    done_line.push(' ');
                    done_line.push_str(token);
                }
            }
            self.result_lines.push(done_line);
            return Ok(true);
        } else if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
            let code = code.parse::<u8>().map_err(|_| bad())?;
            self.status = StatusCode::from_code(code).ok_or_else(bad)?;
            self.error = Some(msg.to_string());
            return Ok(true);
        } else {
            return Err(bad());
        }
        Ok(false)
    }
}

/// A client connection to a running daemon — what `--connect` and the
/// integration tests drive.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    /// Mirror of the daemon's per-connection job sequence counter: the
    /// id the *next* `JOB` sent on this connection will be tagged with.
    next_job: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(TcpStream::connect(addr)?),
            next_job: 0,
        })
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")
    }

    fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// Submits a job and blocks until its terminal frame, discarding
    /// progress.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and malformed frames; a job that *ran* and
    /// failed is an `Ok` response with a non-[`Ok`](StatusCode::Ok)
    /// status.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<JobResponse> {
        self.submit_streaming(spec, |_| {})
    }

    /// [`submit`](Self::submit) with a frame callback: `on_frame` sees
    /// every `PROGRESS` line as it arrives (completion order).
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_streaming(
        &mut self,
        spec: &JobSpec,
        mut on_frame: impl FnMut(&str),
    ) -> io::Result<JobResponse> {
        self.send(&Command::Job(spec.clone()).encode())?;
        self.next_job += 1;
        let mut response = JobResponse::pending();
        loop {
            let raw = self.recv()?;
            // One job in flight: the tag is informational, strip it.
            let (_, line) = protocol::split_job_tag(&raw);
            if line.starts_with("QUEUED ") {
                continue;
            } else if line.starts_with("PROGRESS ") {
                on_frame(&line);
            } else if response.apply_frame(&line)? {
                return Ok(response);
            }
        }
    }

    /// Submits every spec back-to-back on the pipelined connection —
    /// the daemon starts (or cache-serves) them all without waiting —
    /// then demultiplexes the interleaved frames by their `job=` tags.
    /// Responses come back in submission order, each exactly what
    /// [`submit`](Self::submit) would have returned.
    ///
    /// # Errors
    ///
    /// I/O errors, malformed frames, and any *untagged* `ERR` (a
    /// connection-level failure that cannot be attributed to one job)
    /// fail the whole batch.
    pub fn submit_batch(&mut self, specs: &[JobSpec]) -> io::Result<Vec<JobResponse>> {
        let base = self.next_job;
        for spec in specs {
            self.send(&Command::Job(spec.clone()).encode())?;
            self.next_job += 1;
        }
        let mut responses = vec![JobResponse::pending(); specs.len()];
        let mut terminal = vec![false; specs.len()];
        let mut outstanding = specs.len();
        while outstanding > 0 {
            let raw = self.recv()?;
            let (tag, line) = protocol::split_job_tag(&raw);
            let idx = tag
                .and_then(|id| id.checked_sub(base))
                .map(|i| i as usize)
                .filter(|i| *i < specs.len())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame outside the batch: {raw:?}"),
                    )
                })?;
            if line.starts_with("QUEUED ") || line.starts_with("PROGRESS ") {
                continue;
            }
            if responses[idx].apply_frame(&line)? && !std::mem::replace(&mut terminal[idx], true) {
                outstanding -= 1;
            }
        }
        Ok(responses)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails if the daemon is unreachable or answers anything but
    /// `PONG`.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send("PING")?;
        match self.recv()?.as_str() {
            "PONG" => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected PONG, got {other:?}"),
            )),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// Propagates I/O and frame-parse failures.
    pub fn stats(&mut self) -> io::Result<DaemonStats> {
        self.send("STATS")?;
        let line = self.recv()?;
        DaemonStats::parse(&line)
    }

    /// Asks the daemon to drain and exit; consumes the client (the
    /// connection is closed by the exchange).
    ///
    /// # Errors
    ///
    /// Fails if the daemon does not acknowledge with `BYE`.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.send("SHUTDOWN")?;
        match self.recv()?.as_str() {
            "BYE" => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected BYE, got {other:?}"),
            )),
        }
    }
}
