//! The daemon's content-addressed result cache.
//!
//! Maps a [`JobSpec::fingerprint`](crate::job::JobSpec::fingerprint) —
//! which covers every result-affecting input including the `DFAT`
//! trace-format version and the leakage-model bits, and excludes every
//! scheduling knob — to the job's serialized result frames
//! (`CELL`/`ERRCELL`/`DONE` lines in canonical grid order, see
//! [`protocol`](super::protocol)). A hit replays the stored lines
//! verbatim, which is what makes the cached response byte-identical to
//! the first one: the bytes *are* the first one's.
//!
//! Deterministic failures are results too: a job whose cells all fail
//! (the fault-injection scenario) caches its `ERRCELL` frames like any
//! other outcome — resubmitting it is served without re-solving, with
//! the same per-cell errors and `DONE status=2`. Only jobs that never
//! ran (`ERR` frames: unresolvable spec, unknown name) bypass the cache,
//! since there is no result to address.
//!
//! # Persistence
//!
//! A cache opened through [`ResultCache::persistent`] is backed by a
//! [`DurableStore`]: it starts pre-seeded with every result a previous
//! daemon life persisted (so a restart serves the same bytes), and
//! every [`insert`](ResultCache::insert) of a *new* fingerprint appends
//! the frames to the store. Appends become durable at the daemon's
//! batch boundary ([`DurableStore::flush`] before the terminal frame is
//! sent), not here — the cache only writes. A store I/O failure is
//! logged and degrades the daemon to in-memory service for that entry;
//! it never fails the job.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::store::DurableStore;

/// Fingerprint-keyed store of serialized result frames.
///
/// Concurrency note: lookup and insert are separate operations, so two
/// *concurrent* identical submissions may both execute and both insert —
/// benign, because the engine's bit-identity contract makes their frames
/// equal and the second insert overwrites with identical bytes (and is
/// not re-appended to a backing store). The cache guarantee the daemon
/// advertises is for resubmission: a job whose twin has *completed* is
/// always served stored frames.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, Arc<Vec<String>>>>,
    /// Fingerprints restored from a previous life's store — what lets
    /// the daemon log a *disk* cache hit distinctly.
    disk: Mutex<HashSet<u64>>,
    store: Option<Arc<DurableStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty, in-memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache backed by `store`, pre-seeded with `loaded` entries from
    /// it (append order; the newest record for a fingerprint wins).
    pub fn persistent(store: Arc<DurableStore>, loaded: Vec<(u64, Vec<String>)>) -> Self {
        let mut map = HashMap::new();
        let mut disk = HashSet::new();
        for (fingerprint, frames) in loaded {
            map.insert(fingerprint, Arc::new(frames));
            disk.insert(fingerprint);
        }
        ResultCache {
            map: Mutex::new(map),
            disk: Mutex::new(disk),
            store: Some(store),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The stored frames for a fingerprint, counting a hit or miss.
    pub fn lookup(&self, fingerprint: u64) -> Option<Arc<Vec<String>>> {
        let found = self
            .map
            .lock()
            .expect("result cache poisoned")
            .get(&fingerprint)
            .cloned();
        match found {
            Some(frames) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(frames)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether this fingerprint's entry was restored from disk rather
    /// than computed in this daemon life.
    pub fn from_disk(&self, fingerprint: u64) -> bool {
        self.disk
            .lock()
            .expect("result cache poisoned")
            .contains(&fingerprint)
    }

    /// Stores a completed job's frames under its fingerprint, appending
    /// them to the backing store (if any) when the fingerprint is new.
    pub fn insert(&self, fingerprint: u64, frames: Vec<String>) {
        let fresh = self
            .map
            .lock()
            .expect("result cache poisoned")
            .insert(fingerprint, Arc::new(frames.clone()))
            .is_none();
        if fresh {
            if let Some(store) = &self.store {
                if let Err(e) = store.append_result(fingerprint, &frames) {
                    eprintln!("[sweepd] result persist failed fp={fingerprint:016x}: {e}");
                }
            }
        }
    }

    /// Distinct results stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("result cache poisoned").len()
    }

    /// Whether nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let cache = ResultCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(7).is_none());
        cache.insert(7, vec!["CELL a".into(), "DONE status=0".into()]);
        let frames = cache.lookup(7).expect("stored");
        assert_eq!(frames.len(), 2);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!(cache.lookup(8).is_none());
        assert_eq!(cache.misses(), 2);
        assert!(!cache.from_disk(7));
    }

    #[test]
    fn persistent_cache_round_trips_through_the_store() {
        let dir =
            std::env::temp_dir().join(format!("distfront-result-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let (store, snapshot) = DurableStore::open(&dir).unwrap();
        let cache = ResultCache::persistent(Arc::new(store), snapshot.results);
        assert!(cache.is_empty());
        let frames = vec!["CELL a,b".to_string(), "DONE status=0".to_string()];
        cache.insert(42, frames.clone());
        // A re-insert of the same fingerprint must not append again.
        cache.insert(42, frames.clone());
        drop(cache);

        let (store, snapshot) = DurableStore::open(&dir).unwrap();
        assert_eq!(store.persisted_results(), 1);
        let cache = ResultCache::persistent(Arc::new(store), snapshot.results);
        assert_eq!(cache.lookup(42).expect("restored").as_slice(), frames);
        assert!(cache.from_disk(42));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
