//! The daemon's content-addressed result cache.
//!
//! Maps a [`JobSpec::fingerprint`](crate::job::JobSpec::fingerprint) —
//! which covers every result-affecting input including the `DFAT`
//! trace-format version and the leakage-model bits, and excludes every
//! scheduling knob — to the job's serialized result frames
//! (`CELL`/`ERRCELL`/`DONE` lines in canonical grid order, see
//! [`protocol`](super::protocol)). A hit replays the stored lines
//! verbatim, which is what makes the cached response byte-identical to
//! the first one: the bytes *are* the first one's.
//!
//! Deterministic failures are results too: a job whose cells all fail
//! (the fault-injection scenario) caches its `ERRCELL` frames like any
//! other outcome — resubmitting it is served without re-solving, with
//! the same per-cell errors and `DONE status=2`. Only jobs that never
//! ran (`ERR` frames: unresolvable spec, unknown name) bypass the cache,
//! since there is no result to address.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fingerprint-keyed store of serialized result frames.
///
/// Concurrency note: lookup and insert are separate operations, so two
/// *concurrent* identical submissions may both execute and both insert —
/// benign, because the engine's bit-identity contract makes their frames
/// equal and the second insert overwrites with identical bytes. The
/// cache guarantee the daemon advertises is for resubmission: a job
/// whose twin has *completed* is always served stored frames.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, Arc<Vec<String>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored frames for a fingerprint, counting a hit or miss.
    pub fn lookup(&self, fingerprint: u64) -> Option<Arc<Vec<String>>> {
        let found = self
            .map
            .lock()
            .expect("result cache poisoned")
            .get(&fingerprint)
            .cloned();
        match found {
            Some(frames) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(frames)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a completed job's frames under its fingerprint.
    pub fn insert(&self, fingerprint: u64, frames: Vec<String>) {
        self.map
            .lock()
            .expect("result cache poisoned")
            .insert(fingerprint, Arc::new(frames));
    }

    /// Distinct results stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("result cache poisoned").len()
    }

    /// Whether nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let cache = ResultCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(7).is_none());
        cache.insert(7, vec!["CELL a".into(), "DONE status=0".into()]);
        let frames = cache.lookup(7).expect("stored");
        assert_eq!(frames.len(), 2);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!(cache.lookup(8).is_none());
        assert_eq!(cache.misses(), 2);
    }
}
