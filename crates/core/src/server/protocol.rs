//! The `distfront-sweepd` wire protocol: newline-delimited UTF-8 frames.
//!
//! # Framing
//!
//! Every message — both directions — is one line, terminated by `\n`,
//! whose first space-separated token names the frame. The protocol is
//! deliberately the same shape as the [`JobSpec`] line codec (and embeds
//! it verbatim in `JOB` frames): debuggable with `nc`, no length
//! prefixes, no binary.
//!
//! Client → server commands:
//!
//! | line | meaning |
//! |---|---|
//! | `JOB <jobspec-line>` | submit a job; the spec is [`JobSpec::encode_line`] verbatim |
//! | `PING` | liveness probe; answered with `PONG` |
//! | `STATS` | one `STATS` frame of daemon counters |
//! | `SHUTDOWN` | stop accepting, drain executors, exit cleanly |
//!
//! Server → client responses to `JOB`, in order:
//!
//! | line | meaning |
//! |---|---|
//! | `QUEUED job=<n> fp=<hex16> class=<class>` | accepted; content address echoed |
//! | `PROGRESS job=<n> <config> <app> <status>` | advisory, **completion order**; `ok`/`failed <msg>` |
//! | `CELL job=<n> <csv-row>` | one result row, **canonical grid order** |
//! | `ERRCELL job=<n> <config> <app> <msg>` | one failed cell, canonical grid order |
//! | `DONE job=<n> status=<code> cells=<n> failed=<n> cached=<0\|1>` | terminal |
//! | `ERR job=<n> <status-code> <msg>` | terminal: the job never ran |
//! | `ERR <status-code> <msg>` | connection-level: the line was not a command |
//!
//! `PROGRESS` frames stream live as cells complete and are excluded from
//! the byte-identity contract (their order is scheduling-dependent, and
//! a cache hit replays none). `CELL`/`ERRCELL`/`DONE` are the result
//! proper: emitted in canonical grid order after the job completes, they
//! are byte-identical across runs, worker counts, job classes and cache
//! hits — a replayed `DONE` differs only in its `cached=` token, which
//! is why that token exists (and sits last on the line).
//!
//! # Pipelining
//!
//! A connection may have **multiple jobs in flight**: the daemon reads
//! the next command as soon as a `JOB` is queued, instead of blocking
//! the connection until its terminal frame. Every job-scoped frame
//! (the table above) therefore carries a `job=<n>` token right after
//! the frame name, where `n` is the connection's job sequence id —
//! monotonic from 0 in `JOB` submission order, assigned at parse time —
//! so a client that pipelines can demultiplex interleaved responses.
//! One job's `CELL …DONE` result batch is written atomically (never
//! interleaved with another job's batch); only `QUEUED`/`PROGRESS`
//! frames from other jobs may appear between batches. A client that
//! submits one job at a time sees exactly the old frame sequence, ids
//! counting up from 0, and can simply ignore the token. Connection-level
//! `ERR` frames (a line that never parsed as a command) carry no job id.
//!
//! # Version policy
//!
//! The frame vocabulary is versioned *through* the embedded jobspec line:
//! a `JOB` frame carries `v=<n>` and the daemon rejects versions it does
//! not speak with `ERR 64 …` (see [`JobSpecError::UnsupportedVersion`]).
//! Frame names themselves are append-only — an existing name never
//! changes meaning; new capabilities get new tokens appended after the
//! existing ones (`job=` rode in exactly this way) — mirroring the
//! `DFAT` trace-format policy in [`distfront_trace::record`].
//!
//! [`JobSpecError::UnsupportedVersion`]: crate::job::JobSpecError::UnsupportedVersion

use crate::engine::CellOutcome;
use crate::job::{JobClass, JobReport, JobSpec, StatusCode};

/// A parsed client → server command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `JOB <jobspec-line>`: run (or serve from cache) the spec.
    Job(JobSpec),
    /// `PING`: answer `PONG` without touching the queues.
    Ping,
    /// `STATS`: report daemon counters.
    Stats,
    /// `SHUTDOWN`: drain and exit.
    Shutdown,
}

impl Command {
    /// Parses one command line.
    ///
    /// # Errors
    ///
    /// Returns the `ERR` frame to answer with: [`StatusCode::Usage`] and
    /// a message, for unknown verbs and malformed jobspecs alike.
    pub fn parse(line: &str) -> Result<Command, (StatusCode, String)> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "JOB" => JobSpec::parse_line(rest)
                .map(Command::Job)
                .map_err(|e| (StatusCode::Usage, e.to_string())),
            "PING" if rest.is_empty() => Ok(Command::Ping),
            "STATS" if rest.is_empty() => Ok(Command::Stats),
            "SHUTDOWN" if rest.is_empty() => Ok(Command::Shutdown),
            _ => Err((
                StatusCode::Usage,
                format!("unknown command {verb:?} (expected JOB/PING/STATS/SHUTDOWN)"),
            )),
        }
    }

    /// Serializes the command to its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Command::Job(spec) => format!("JOB {}", spec.encode_line()),
            Command::Ping => "PING".to_string(),
            Command::Stats => "STATS".to_string(),
            Command::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

/// The `QUEUED` acknowledgement frame.
pub fn queued_frame(job: u64, fingerprint: u64, class: JobClass) -> String {
    format!("QUEUED job={job} fp={fingerprint:016x} class={class}")
}

/// One advisory `PROGRESS` frame (completion order, not part of the
/// byte-identity contract).
pub fn progress_frame(job: u64, cell: &CellOutcome) -> String {
    match &cell.result {
        Ok(_) => format!(
            "PROGRESS job={job} {} {} ok",
            cell.config_name, cell.app_name
        ),
        Err(e) => format!(
            "PROGRESS job={job} {} {} failed {e}",
            cell.config_name, cell.app_name
        ),
    }
}

/// Inserts the per-connection `job=<n>` token after a frame's name —
/// how stored (untagged) result frames pick up their connection-scoped
/// identity at send time, keeping the cached bytes connection-free.
pub fn tag_frame(job: u64, frame: &str) -> String {
    match frame.split_once(' ') {
        Some((verb, rest)) => format!("{verb} job={job} {rest}"),
        None => format!("{frame} job={job}"),
    }
}

/// Splits a frame's `job=<n>` token (if its second token is one) from
/// the rest of the line — the client-side inverse of [`tag_frame`].
pub fn split_job_tag(line: &str) -> (Option<u64>, String) {
    if let Some((verb, rest)) = line.split_once(' ') {
        let (token, tail) = match rest.split_once(' ') {
            Some((t, tail)) => (t, Some(tail)),
            None => (rest, None),
        };
        if let Some(id) = token.strip_prefix("job=").and_then(|v| v.parse().ok()) {
            return match tail {
                Some(tail) => (Some(id), format!("{verb} {tail}")),
                None => (Some(id), verb.to_string()),
            };
        }
    }
    (None, line.to_string())
}

/// The result frames a completed job serializes to: `CELL`/`ERRCELL`
/// lines in canonical grid order followed by the terminal `DONE` —
/// exactly the lines the daemon caches and replays on a hit, minus the
/// `DONE` frame's `cached=` suffix, which the sender appends (see the
/// module docs).
pub fn result_frames(report: &JobReport) -> Vec<String> {
    let mut frames = Vec::new();
    let mut cells = 0usize;
    let mut failed = 0usize;
    for cell in report.report.cells() {
        cells += 1;
        match &cell.result {
            Ok(r) => frames.push(format!(
                "CELL {}",
                crate::scenarios::csv_row(report.row_label(cell), r)
            )),
            Err(e) => {
                failed += 1;
                frames.push(format!(
                    "ERRCELL {} {} {e}",
                    report.row_label(cell),
                    cell.app_name
                ));
            }
        }
    }
    frames.push(format!(
        "DONE status={} cells={cells} failed={failed}",
        report.status().code()
    ));
    frames
}

/// One shard result-cell frame: `SCELL <index> <csv-row>`, where
/// `index` is the cell's canonical flat grid index (`config * apps +
/// app`). Shard workers persist these lines — not bare CSV — into their
/// per-shard [`DurableStore`](crate::store::DurableStore) record so the
/// coordinator can merge shards by index into canonical grid order
/// without re-deriving geometry.
pub fn shard_cell_frame(index: usize, row: &str) -> String {
    format!("SCELL {index} {row}")
}

/// One shard failed-cell frame: `SERRCELL <index> <label> <app> <msg>`
/// — the sharded counterpart of `ERRCELL`, carrying the flat grid index
/// so error cells merge by the same rule as result cells.
pub fn shard_err_frame(index: usize, label: &str, app: &str, msg: &str) -> String {
    format!("SERRCELL {index} {label} {app} {msg}")
}

/// The terminal frame of a shard artifact:
/// `SDONE start=<s> end=<e> cells=<n> failed=<n> status=<code>`.
/// `start..end` is the contiguous index range the shard owned; a
/// coordinator rejects an artifact whose `SDONE` range disagrees with
/// the partition it assigned (a stale record from an earlier layout).
pub fn shard_done_frame(
    range: &std::ops::Range<usize>,
    cells: usize,
    failed: usize,
    status: StatusCode,
) -> String {
    format!(
        "SDONE start={} end={} cells={cells} failed={failed} status={}",
        range.start,
        range.end,
        status.code()
    )
}

/// A parsed shard artifact frame — the decode side of
/// [`shard_cell_frame`]/[`shard_err_frame`]/[`shard_done_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFrame {
    /// `SCELL`: one successful cell's CSV row at a flat grid index.
    Cell {
        /// Canonical flat grid index (`config * apps + app`).
        index: usize,
        /// The CSV row, byte-identical to a serial run's.
        row: String,
    },
    /// `SERRCELL`: one failed cell at a flat grid index.
    ErrCell {
        /// Canonical flat grid index (`config * apps + app`).
        index: usize,
        /// Row label (scenario or configuration name).
        label: String,
        /// Application name.
        app: String,
        /// The cell's error message.
        msg: String,
    },
    /// `SDONE`: the shard completed and its record is whole.
    Done {
        /// First flat index the shard owned.
        start: usize,
        /// One past the last flat index the shard owned.
        end: usize,
        /// Cells computed (`end - start`).
        cells: usize,
        /// Cells whose result was an error.
        failed: usize,
        /// The worker's per-cell status (`ok` or `cells-failed`).
        status: u8,
    },
}

impl ShardFrame {
    /// Parses one shard artifact line; `None` for anything else —
    /// a coordinator treats an unparseable record as an invalid
    /// artifact and re-queues the shard.
    pub fn parse(line: &str) -> Option<ShardFrame> {
        let (verb, rest) = line.split_once(' ')?;
        match verb {
            "SCELL" => {
                let (index, row) = rest.split_once(' ')?;
                Some(ShardFrame::Cell {
                    index: index.parse().ok()?,
                    row: row.to_string(),
                })
            }
            "SERRCELL" => {
                let mut parts = rest.splitn(4, ' ');
                let index = parts.next()?.parse().ok()?;
                let label = parts.next()?.to_string();
                let app = parts.next()?.to_string();
                let msg = parts.next()?.to_string();
                Some(ShardFrame::ErrCell {
                    index,
                    label,
                    app,
                    msg,
                })
            }
            "SDONE" => {
                let mut start = None;
                let mut end = None;
                let mut cells = None;
                let mut failed = None;
                let mut status = None;
                for token in rest.split(' ') {
                    let (key, value) = token.split_once('=')?;
                    match key {
                        "start" => start = value.parse().ok(),
                        "end" => end = value.parse().ok(),
                        "cells" => cells = value.parse().ok(),
                        "failed" => failed = value.parse().ok(),
                        "status" => status = value.parse().ok(),
                        _ => return None,
                    }
                }
                Some(ShardFrame::Done {
                    start: start?,
                    end: end?,
                    cells: cells?,
                    failed: failed?,
                    status: status?,
                })
            }
            _ => None,
        }
    }
}

/// The connection-level `ERR` frame (a line that never became a job
/// carries no job id).
pub fn err_frame(status: StatusCode, msg: &str) -> String {
    format!("ERR {} {msg}", status.code())
}

/// The terminal `ERR` frame for a job that never ran (tagged with the
/// connection's job sequence id).
pub fn job_err_frame(job: u64, status: StatusCode, msg: &str) -> String {
    format!("ERR job={job} {} {msg}", status.code())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpecError;

    #[test]
    fn commands_roundtrip() {
        let spec = JobSpec::scenario("baseline").with_smoke(true);
        for cmd in [
            Command::Job(spec),
            Command::Ping,
            Command::Stats,
            Command::Shutdown,
        ] {
            assert_eq!(Command::parse(&cmd.encode()), Ok(cmd));
        }
    }

    #[test]
    fn parse_tolerates_line_endings_and_rejects_junk() {
        assert_eq!(Command::parse("PING\r\n"), Ok(Command::Ping));
        assert!(Command::parse("EVAL rm -rf /").is_err());
        assert!(Command::parse("PING extra").is_err());
        let (status, msg) = Command::parse("JOB v=9 kind=scenario name=x").unwrap_err();
        assert_eq!(status, StatusCode::Usage);
        assert_eq!(msg, JobSpecError::UnsupportedVersion(9).to_string());
    }

    #[test]
    fn queued_frame_is_fixed_width_hex() {
        let frame = queued_frame(3, 0xAB, JobClass::Deferrable);
        assert_eq!(frame, "QUEUED job=3 fp=00000000000000ab class=deferrable");
    }

    #[test]
    fn job_tags_round_trip() {
        assert_eq!(tag_frame(7, "CELL a,b,c"), "CELL job=7 a,b,c");
        assert_eq!(
            split_job_tag("CELL job=7 a,b,c"),
            (Some(7), "CELL a,b,c".to_string())
        );
        assert_eq!(
            tag_frame(0, "DONE status=0 cells=1 failed=0"),
            "DONE job=0 status=0 cells=1 failed=0"
        );
        // Untagged (connection-level) frames pass through unchanged.
        assert_eq!(split_job_tag("ERR 64 nope"), (None, "ERR 64 nope".into()));
        assert_eq!(split_job_tag("PONG"), (None, "PONG".into()));
        // A job= mid-line is not a tag.
        assert_eq!(
            split_job_tag("ERR 64 bad key job=x"),
            (None, "ERR 64 bad key job=x".into())
        );
    }

    #[test]
    fn shard_frames_round_trip() {
        let cell = shard_cell_frame(7, "baseline,gzip,1.23,4.56");
        assert_eq!(cell, "SCELL 7 baseline,gzip,1.23,4.56");
        assert_eq!(
            ShardFrame::parse(&cell),
            Some(ShardFrame::Cell {
                index: 7,
                row: "baseline,gzip,1.23,4.56".into()
            })
        );

        let err = shard_err_frame(3, "fault-injection", "mcf", "thermal solver: not converged");
        assert_eq!(
            ShardFrame::parse(&err),
            Some(ShardFrame::ErrCell {
                index: 3,
                label: "fault-injection".into(),
                app: "mcf".into(),
                msg: "thermal solver: not converged".into(),
            })
        );

        let done = shard_done_frame(&(4..9), 5, 1, StatusCode::CellsFailed);
        assert_eq!(done, "SDONE start=4 end=9 cells=5 failed=1 status=2");
        assert_eq!(
            ShardFrame::parse(&done),
            Some(ShardFrame::Done {
                start: 4,
                end: 9,
                cells: 5,
                failed: 1,
                status: 2
            })
        );

        // Non-shard frames and malformed lines parse to None.
        assert_eq!(ShardFrame::parse("CELL a,b,c"), None);
        assert_eq!(ShardFrame::parse("SCELL x row"), None);
        assert_eq!(ShardFrame::parse("SDONE start=0 bogus=1"), None);
        assert_eq!(ShardFrame::parse("SDONE start=0 end=1"), None);
    }
}
