//! The experiment runner: couples the cycle simulator, the power model and
//! the thermal solver, and drives the thermal-management control loop
//! (mapping rebalance + bank hopping) at every interval, exactly as §4
//! describes.
//!
//! Per application the runner:
//!
//! 1. runs a **pilot** to measure nominal average dynamic power (the paper
//!    uses its first 50 M instructions),
//! 2. **warm-starts** the thermal state: steady state under nominal power
//!    with the leakage↔temperature fixed point iterated to convergence
//!    ("simulations are started with the processor already warm"),
//! 3. runs the **evaluation**, updating block power and temperature every
//!    interval, recording the AbsMax/Average/AvgMax metrics, recomputing
//!    the thermal-aware bank mapping from the bank sensors, and rotating
//!    the gated bank when hopping is enabled.

use distfront_power::{BlockId, EnergyTable, LeakageModel, Machine, PowerModel};
use distfront_thermal::{
    Floorplan, GroupMetrics, PackageConfig, TemperatureTracker, ThermalNetwork, ThermalSolver,
};
use distfront_trace::AppProfile;
use distfront_uarch::Simulator;

use crate::emergency::EmergencyController;
use crate::experiment::ExperimentConfig;

/// Temperature metrics for the block groups the paper reports on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TempReport {
    /// The reorder buffer (all partitions).
    pub rob: GroupMetrics,
    /// The rename table (all partitions).
    pub rat: GroupMetrics,
    /// The trace cache (all physical banks).
    pub trace_cache: GroupMetrics,
    /// The whole frontend strip.
    pub frontend: GroupMetrics,
    /// All backend-cluster blocks.
    pub backend: GroupMetrics,
    /// The UL2.
    pub ul2: GroupMetrics,
    /// Every block on the die.
    pub processor: GroupMetrics,
}

/// Result of one application run under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AppResult {
    /// Application name.
    pub app: &'static str,
    /// Total cycles to commit the budget.
    pub cycles: u64,
    /// Micro-ops committed.
    pub uops: u64,
    /// Committed micro-ops per cycle.
    pub ipc: f64,
    /// Cycles per micro-op (the slowdown basis).
    pub cpi: f64,
    /// Trace-cache hit rate over the run.
    pub tc_hit_rate: f64,
    /// Branch misprediction rate over the run.
    pub mispredict_rate: f64,
    /// Average total (dynamic + leakage + background) power in Watts.
    pub avg_power_w: f64,
    /// Wall-clock seconds of the run (longer than `cycles / f` when the
    /// DTM throttle engaged).
    pub wall_time_s: f64,
    /// Distinct thermal emergencies triggered (0 without a DTM policy).
    pub emergencies: u64,
    /// Intervals spent throttled by the DTM mechanism.
    pub throttled_intervals: u64,
    /// Temperature metrics per block group.
    pub temps: TempReport,
}

/// The canonical block groups of a machine.
#[derive(Debug, Clone)]
pub struct BlockGroups {
    /// ROB partitions.
    pub rob: Vec<usize>,
    /// RAT partitions.
    pub rat: Vec<usize>,
    /// Trace-cache banks.
    pub trace_cache: Vec<usize>,
    /// All frontend blocks.
    pub frontend: Vec<usize>,
    /// All backend blocks.
    pub backend: Vec<usize>,
    /// The UL2 (singleton).
    pub ul2: Vec<usize>,
    /// Everything.
    pub processor: Vec<usize>,
}

impl BlockGroups {
    /// Derives the groups for a machine shape.
    pub fn for_machine(machine: Machine) -> Self {
        let blocks = machine.blocks();
        let of = |pred: &dyn Fn(BlockId) -> bool| -> Vec<usize> {
            blocks
                .iter()
                .enumerate()
                .filter(|(_, b)| pred(**b))
                .map(|(i, _)| i)
                .collect()
        };
        BlockGroups {
            rob: of(&|b| matches!(b, BlockId::Rob(_))),
            rat: of(&|b| matches!(b, BlockId::Rat(_))),
            trace_cache: of(&|b| matches!(b, BlockId::TcBank(_))),
            frontend: of(&|b| b.is_frontend()),
            backend: of(&|b| b.is_backend()),
            ul2: of(&|b| b == BlockId::Ul2),
            processor: (0..machine.block_count()).collect(),
        }
    }
}

/// Runs one application under one configuration.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_app(cfg: &ExperimentConfig, profile: &AppProfile) -> AppResult {
    cfg.validate().unwrap_or_else(|e| panic!("bad config: {e}"));
    let pc = &cfg.processor;
    let machine = Machine::new(
        pc.frontend_mode.partitions(),
        pc.backends,
        pc.trace_cache.physical_banks(),
    );
    let fp = Floorplan::for_machine(machine);
    let areas = fp.areas();
    let pkg = PackageConfig::paper();
    let mut model = PowerModel::new(machine, EnergyTable::nm65(), LeakageModel::paper(), pc.frequency_hz);
    let groups = BlockGroups::for_machine(machine);

    // Background (clock-tree) power per block; trace-cache banks under
    // hopping are on only `logical/physical` of the time, so their
    // time-averaged background power scales accordingly.
    let duty = pc.trace_cache.logical_banks as f64 / pc.trace_cache.physical_banks() as f64;
    let idle: Vec<f64> = machine
        .blocks()
        .iter()
        .zip(&areas)
        .map(|(b, a)| {
            let d = if matches!(b, BlockId::TcBank(_)) { duty } else { 1.0 };
            a * cfg.idle_density_w_mm2 * d
        })
        .collect();

    // --- Pilot: nominal average dynamic power ---------------------------
    let mut pilot = Simulator::new(pc.clone(), profile, cfg.seed);
    let mut pilot_act = None::<distfront_uarch::ActivityCounters>;
    loop {
        let target = pilot.current_cycle() + cfg.interval_cycles;
        let r = pilot.step(target, cfg.pilot_uops());
        match &mut pilot_act {
            Some(acc) => acc.merge(&r.activity),
            None => pilot_act = Some(r.activity),
        }
        // Exercise the same control decisions so per-bank activity is the
        // honest time average (temperatures are not known yet: balanced).
        let banks = pc.trace_cache.physical_banks();
        pilot.trace_cache_mut().rebalance(&vec![pkg.ambient_c; banks]);
        if cfg.hop {
            pilot.trace_cache_mut().hop();
        }
        if r.done {
            break;
        }
    }
    let pilot_act = pilot_act.expect("pilot ran at least one interval");
    let mut nominal = model.dynamic_power(&pilot_act);
    for (n, i) in nominal.iter_mut().zip(&idle) {
        *n += i;
    }
    model.set_nominal_dynamic(nominal.clone());

    // --- Warm start: leakage/temperature fixed point ---------------------
    let net = ThermalNetwork::from_floorplan(&fp, &pkg);
    let mut solver = ThermalSolver::new(net);
    let leak = model.leakage_model();
    let mut temps = vec![pkg.ambient_c; machine.block_count()];
    for _ in 0..40 {
        let p: Vec<f64> = nominal
            .iter()
            .zip(&temps)
            .map(|(&n, &t)| n + leak.leakage_watts(n, t))
            .collect();
        solver.set_steady_state(&p);
        let new_temps = solver.block_temperatures().to_vec();
        let delta = new_temps
            .iter()
            .zip(&temps)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        temps = new_temps;
        if delta < 0.01 {
            break;
        }
    }

    // --- Evaluation run ---------------------------------------------------
    let mut sim = Simulator::new(pc.clone(), profile, cfg.seed);
    let mut tracker = TemperatureTracker::new(areas);
    let mut power_time_sum = 0.0f64;
    let mut time_sum = 0.0f64;
    let mut dtm = cfg.emergency.map(EmergencyController::new);
    let mut throttle = 1.0f64;
    loop {
        let target = sim.current_cycle() + cfg.interval_cycles;
        let mut r = sim.step(target, cfg.uops_per_app);
        // DTM throttling: the same work takes 1/throttle the wall time,
        // spreading its switching energy over the longer interval.
        if throttle < 1.0 {
            r.activity.cycles = (r.activity.cycles as f64 / throttle).round() as u64;
        }
        let gated: Vec<BlockId> = sim
            .trace_cache()
            .gated_bank()
            .map(|b| BlockId::TcBank(b as u8))
            .into_iter()
            .collect();
        let temps_now = solver.block_temperatures().to_vec();
        let mut power = model.total_power(&r.activity, &temps_now, &gated);
        for (p, i) in power.iter_mut().zip(&idle) {
            *p += i;
        }
        for g in &gated {
            power[machine.index_of(*g)] = 0.0;
        }
        let dt = r.activity.cycles as f64 / pc.frequency_hz;
        power_time_sum += power.iter().sum::<f64>() * dt;
        time_sum += dt;
        // Two half-steps so intra-interval transients are sampled.
        solver.advance(&power, dt / 2.0);
        tracker.record(solver.block_temperatures(), dt / 2.0);
        solver.advance(&power, dt / 2.0);
        tracker.record(solver.block_temperatures(), dt / 2.0);
        tracker.end_interval();

        // Thermal management control (§3.2): remap from bank sensors, then
        // rotate the gated bank.
        let bank_temps: Vec<f64> = (0..pc.trace_cache.physical_banks())
            .map(|k| solver.block_temperatures()[machine.index_of(BlockId::TcBank(k as u8))])
            .collect();
        sim.trace_cache_mut().rebalance(&bank_temps);
        if cfg.hop {
            sim.trace_cache_mut().hop();
        }
        if let Some(ctrl) = &mut dtm {
            throttle = ctrl.observe(solver.block_temperatures());
        }
        if r.done {
            break;
        }
    }

    let cycles = sim.current_cycle();
    let uops = sim.total_committed();
    let g = |idx: &[usize]| tracker.group_metrics(idx);
    AppResult {
        app: profile.name,
        cycles,
        uops,
        ipc: uops as f64 / cycles.max(1) as f64,
        cpi: cycles as f64 / uops.max(1) as f64,
        tc_hit_rate: sim.tc_hit_rate(),
        mispredict_rate: sim.mispredict_rate(),
        avg_power_w: power_time_sum / time_sum.max(1e-12),
        wall_time_s: time_sum,
        emergencies: dtm.as_ref().map_or(0, |c| c.triggers()),
        throttled_intervals: dtm.as_ref().map_or(0, |c| c.throttled_intervals()),
        temps: TempReport {
            rob: g(&groups.rob),
            rat: g(&groups.rat),
            trace_cache: g(&groups.trace_cache),
            frontend: g(&groups.frontend),
            backend: g(&groups.backend),
            ul2: g(&groups.ul2),
            processor: g(&groups.processor),
        },
    }
}

/// Runs a whole application suite under one configuration.
pub fn run_suite(cfg: &ExperimentConfig, apps: &[AppProfile]) -> Vec<AppResult> {
    apps.iter().map(|p| run_app(cfg, p)).collect()
}

/// Averages group metrics across applications (each app weighted equally,
/// as the paper averages its 26 benchmarks).
pub fn average_temps(results: &[AppResult]) -> TempReport {
    assert!(!results.is_empty(), "no results to average");
    let n = results.len() as f64;
    let avg = |f: &dyn Fn(&TempReport) -> GroupMetrics| {
        let mut acc = GroupMetrics {
            abs_max_c: 0.0,
            average_c: 0.0,
            avg_max_c: 0.0,
        };
        for r in results {
            let m = f(&r.temps);
            acc.abs_max_c += m.abs_max_c / n;
            acc.average_c += m.average_c / n;
            acc.avg_max_c += m.avg_max_c / n;
        }
        acc
    };
    TempReport {
        rob: avg(&|t| t.rob),
        rat: avg(&|t| t.rat),
        trace_cache: avg(&|t| t.trace_cache),
        frontend: avg(&|t| t.frontend),
        backend: avg(&|t| t.backend),
        ul2: avg(&|t| t.ul2),
        processor: avg(&|t| t.processor),
    }
}

/// Mean cycles-per-micro-op over a suite (the slowdown basis).
pub fn mean_cpi(results: &[AppResult]) -> f64 {
    assert!(!results.is_empty());
    results.iter().map(|r| r.cpi).sum::<f64>() / results.len() as f64
}

/// Relative slowdown of `technique` over `baseline` (e.g. `0.02` = 2 %).
pub fn slowdown(baseline: &[AppResult], technique: &[AppResult]) -> f64 {
    mean_cpi(technique) / mean_cpi(baseline) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: ExperimentConfig) -> AppResult {
        run_app(&cfg.with_uops(60_000), &AppProfile::test_tiny())
    }

    #[test]
    fn baseline_runs_and_heats_up() {
        let r = quick(ExperimentConfig::baseline());
        assert!(r.uops >= 60_000);
        assert!(r.ipc > 0.0);
        // Warm processor: everything above ambient.
        assert!(r.temps.processor.average_c > 45.0);
        assert!(r.temps.processor.abs_max_c >= r.temps.processor.average_c);
        assert!(r.temps.processor.abs_max_c >= r.temps.processor.avg_max_c);
    }

    #[test]
    fn determinism() {
        let a = quick(ExperimentConfig::baseline());
        let b = quick(ExperimentConfig::baseline());
        assert_eq!(a, b);
    }

    #[test]
    fn block_groups_cover_machine() {
        let m = Machine::new(2, 4, 3);
        let g = BlockGroups::for_machine(m);
        assert_eq!(g.rob.len(), 2);
        assert_eq!(g.rat.len(), 2);
        assert_eq!(g.trace_cache.len(), 3);
        assert_eq!(g.ul2.len(), 1);
        assert_eq!(
            g.frontend.len() + g.backend.len() + g.ul2.len(),
            g.processor.len()
        );
    }

    #[test]
    fn distributed_reduces_rob_rat_temps() {
        let base = quick(ExperimentConfig::baseline());
        let drc = quick(ExperimentConfig::distributed_rename_commit());
        assert!(
            drc.temps.rob.avg_max_c < base.temps.rob.avg_max_c,
            "ROB: {} vs {}",
            drc.temps.rob.avg_max_c,
            base.temps.rob.avg_max_c
        );
        assert!(drc.temps.rat.avg_max_c < base.temps.rat.avg_max_c);
    }

    #[test]
    fn hopping_reduces_tc_average() {
        let base = quick(ExperimentConfig::baseline());
        let bh = quick(ExperimentConfig::bank_hopping());
        assert!(
            bh.temps.trace_cache.average_c < base.temps.trace_cache.average_c,
            "TC avg: {} vs {}",
            bh.temps.trace_cache.average_c,
            base.temps.trace_cache.average_c
        );
    }

    #[test]
    fn techniques_cost_little_performance() {
        let base = quick(ExperimentConfig::baseline());
        for cfg in [
            ExperimentConfig::distributed_rename_commit(),
            ExperimentConfig::hopping_and_biasing(),
        ] {
            let name = cfg.name;
            let r = quick(cfg);
            let slow = r.cpi / base.cpi - 1.0;
            assert!(
                (-0.05..0.20).contains(&slow),
                "{name} slowdown {slow}"
            );
        }
    }

    #[test]
    fn average_temps_means_groups() {
        let a = quick(ExperimentConfig::baseline());
        let mut b = a.clone();
        b.temps.rob.abs_max_c += 10.0;
        let avg = average_temps(&[a.clone(), b]);
        assert!((avg.rob.abs_max_c - (a.temps.rob.abs_max_c + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn slowdown_of_identical_suites_is_zero() {
        let a = quick(ExperimentConfig::baseline());
        assert!(slowdown(&[a.clone()], &[a]).abs() < 1e-12);
    }
}
