//! The experiment runner: result types, block groups and the serial
//! entry points over the staged [`engine`](crate::engine).
//!
//! Per application the pipeline (see [`crate::engine`] for the staged
//! form):
//!
//! 1. runs a **pilot** to measure nominal average dynamic power (the paper
//!    uses its first 50 M instructions),
//! 2. **warm-starts** the thermal state: steady state under nominal power
//!    with the leakage↔temperature fixed point iterated to convergence
//!    ("simulations are started with the processor already warm"),
//! 3. runs the **evaluation**, updating block power and temperature every
//!    interval, recording the AbsMax/Average/AvgMax metrics, recomputing
//!    the thermal-aware bank mapping from the bank sensors, and rotating
//!    the gated bank when hopping is enabled.
//!
//! The per-interval transient solve defaults to the cached
//! matrix-exponential propagator
//! ([`ExpPropagator`](distfront_thermal::ExpPropagator) — exact for the
//! piecewise-constant interval power, two dense mat-vecs per advance);
//! [`ExperimentConfig::with_integrator`] switches a run back to the
//! sub-stepped RK4 reference
//! ([`Integrator::Rk4`](distfront_thermal::Integrator)) for cross-checks.
//!
//! [`run_app`] is the one-cell convenience wrapper; grids and suites
//! parallelize through [`SweepRunner`](crate::engine::SweepRunner) with
//! bit-identical results.

use distfront_power::{BlockId, Machine};
use distfront_thermal::GroupMetrics;
use distfront_trace::AppProfile;

use crate::engine::{CoupledEngine, EngineError};
use crate::experiment::ExperimentConfig;

/// Temperature metrics for the block groups the paper reports on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TempReport {
    /// The reorder buffer (all partitions).
    pub rob: GroupMetrics,
    /// The rename table (all partitions).
    pub rat: GroupMetrics,
    /// The trace cache (all physical banks).
    pub trace_cache: GroupMetrics,
    /// The whole frontend strip.
    pub frontend: GroupMetrics,
    /// All backend-cluster blocks.
    pub backend: GroupMetrics,
    /// The UL2.
    pub ul2: GroupMetrics,
    /// Every block on the die.
    pub processor: GroupMetrics,
}

/// Result of one application run under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AppResult {
    /// Application name.
    pub app: &'static str,
    /// Total cycles to commit the budget.
    pub cycles: u64,
    /// Micro-ops committed.
    pub uops: u64,
    /// Committed micro-ops per cycle.
    pub ipc: f64,
    /// Cycles per micro-op (the slowdown basis).
    pub cpi: f64,
    /// Trace-cache hit rate over the run.
    pub tc_hit_rate: f64,
    /// Branch misprediction rate over the run.
    pub mispredict_rate: f64,
    /// Average total (dynamic + leakage + background) power in Watts.
    pub avg_power_w: f64,
    /// Wall-clock seconds of the run (longer than `cycles / f` when the
    /// DTM throttle engaged).
    pub wall_time_s: f64,
    /// Distinct thermal emergencies triggered (0 without a DTM policy).
    pub emergencies: u64,
    /// Intervals spent throttled by the DTM mechanism.
    pub throttled_intervals: u64,
    /// Seconds spent in intervals whose hottest block reached the 381 K
    /// emergency limit (violation residency — the per-policy metric DTM
    /// alternatives are compared on).
    pub over_limit_s: f64,
    /// Temperature metrics per block group.
    pub temps: TempReport,
}

/// The canonical block groups of a machine.
#[derive(Debug, Clone)]
pub struct BlockGroups {
    /// ROB partitions.
    pub rob: Vec<usize>,
    /// RAT partitions.
    pub rat: Vec<usize>,
    /// Trace-cache banks.
    pub trace_cache: Vec<usize>,
    /// All frontend blocks.
    pub frontend: Vec<usize>,
    /// All backend blocks.
    pub backend: Vec<usize>,
    /// The UL2 (singleton).
    pub ul2: Vec<usize>,
    /// Everything.
    pub processor: Vec<usize>,
}

impl BlockGroups {
    /// Derives the groups for a machine shape.
    pub fn for_machine(machine: Machine) -> Self {
        let blocks = machine.blocks();
        let of = |pred: &dyn Fn(BlockId) -> bool| -> Vec<usize> {
            blocks
                .iter()
                .enumerate()
                .filter(|(_, b)| pred(**b))
                .map(|(i, _)| i)
                .collect()
        };
        BlockGroups {
            rob: of(&|b| matches!(b, BlockId::Rob(_))),
            rat: of(&|b| matches!(b, BlockId::Rat(_))),
            trace_cache: of(&|b| matches!(b, BlockId::TcBank(_))),
            frontend: of(&|b| b.is_frontend()),
            backend: of(&|b| b.is_backend()),
            ul2: of(&|b| b == BlockId::Ul2),
            processor: (0..machine.block_count()).collect(),
        }
    }
}

/// Runs one application under one configuration through the default
/// staged engine (pilot → warm start → interval loop).
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails (e.g. a
/// non-converged warm start); use [`try_run_app`] to handle
/// [`EngineError`]s instead.
pub fn run_app(cfg: &ExperimentConfig, profile: &AppProfile) -> AppResult {
    try_run_app(cfg, profile)
        .unwrap_or_else(|e| panic!("engine failed for {}/{}: {e}", cfg.name, profile.name))
}

/// The fault-tolerant [`run_app`]: one application under one configuration
/// through the default staged engine, with failures surfaced as
/// [`EngineError`]s (the per-cell semantics grids get from
/// [`SweepRunner::try_grid`](crate::engine::SweepRunner::try_grid)).
///
/// # Errors
///
/// Returns an error when the configuration is invalid, a stage's
/// prerequisites are missing, or an iterative phase fails to converge.
pub fn try_run_app(cfg: &ExperimentConfig, profile: &AppProfile) -> Result<AppResult, EngineError> {
    CoupledEngine::new(cfg, profile).run()
}

/// Runs a whole application suite under one configuration, serially (the
/// reference ordering; [`SweepRunner`](crate::engine::SweepRunner)
/// produces bit-identical results in parallel).
pub fn run_suite(cfg: &ExperimentConfig, apps: &[AppProfile]) -> Vec<AppResult> {
    apps.iter().map(|p| run_app(cfg, p)).collect()
}

/// Averages group metrics across applications (each app weighted equally,
/// as the paper averages its 26 benchmarks).
pub fn average_temps(results: &[AppResult]) -> TempReport {
    assert!(!results.is_empty(), "no results to average");
    let n = results.len() as f64;
    let avg = |f: &dyn Fn(&TempReport) -> GroupMetrics| {
        let mut acc = GroupMetrics {
            abs_max_c: 0.0,
            average_c: 0.0,
            avg_max_c: 0.0,
        };
        for r in results {
            let m = f(&r.temps);
            acc.abs_max_c += m.abs_max_c / n;
            acc.average_c += m.average_c / n;
            acc.avg_max_c += m.avg_max_c / n;
        }
        acc
    };
    TempReport {
        rob: avg(&|t| t.rob),
        rat: avg(&|t| t.rat),
        trace_cache: avg(&|t| t.trace_cache),
        frontend: avg(&|t| t.frontend),
        backend: avg(&|t| t.backend),
        ul2: avg(&|t| t.ul2),
        processor: avg(&|t| t.processor),
    }
}

/// Mean cycles-per-micro-op over a suite (the slowdown basis).
pub fn mean_cpi(results: &[AppResult]) -> f64 {
    assert!(!results.is_empty());
    results.iter().map(|r| r.cpi).sum::<f64>() / results.len() as f64
}

/// Relative slowdown of `technique` over `baseline` (e.g. `0.02` = 2 %).
pub fn slowdown(baseline: &[AppResult], technique: &[AppResult]) -> f64 {
    mean_cpi(technique) / mean_cpi(baseline) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: ExperimentConfig) -> AppResult {
        run_app(&cfg.with_uops(60_000), &AppProfile::test_tiny())
    }

    #[test]
    fn baseline_runs_and_heats_up() {
        let r = quick(ExperimentConfig::baseline());
        assert!(r.uops >= 60_000);
        assert!(r.ipc > 0.0);
        // Warm processor: everything above ambient.
        assert!(r.temps.processor.average_c > 45.0);
        assert!(r.temps.processor.abs_max_c >= r.temps.processor.average_c);
        assert!(r.temps.processor.abs_max_c >= r.temps.processor.avg_max_c);
    }

    #[test]
    fn determinism() {
        let a = quick(ExperimentConfig::baseline());
        let b = quick(ExperimentConfig::baseline());
        assert_eq!(a, b);
    }

    #[test]
    fn block_groups_cover_machine() {
        let m = Machine::new(2, 4, 3);
        let g = BlockGroups::for_machine(m);
        assert_eq!(g.rob.len(), 2);
        assert_eq!(g.rat.len(), 2);
        assert_eq!(g.trace_cache.len(), 3);
        assert_eq!(g.ul2.len(), 1);
        assert_eq!(
            g.frontend.len() + g.backend.len() + g.ul2.len(),
            g.processor.len()
        );
    }

    #[test]
    fn distributed_reduces_rob_rat_temps() {
        let base = quick(ExperimentConfig::baseline());
        let drc = quick(ExperimentConfig::distributed_rename_commit());
        assert!(
            drc.temps.rob.avg_max_c < base.temps.rob.avg_max_c,
            "ROB: {} vs {}",
            drc.temps.rob.avg_max_c,
            base.temps.rob.avg_max_c
        );
        assert!(drc.temps.rat.avg_max_c < base.temps.rat.avg_max_c);
    }

    #[test]
    fn hopping_reduces_tc_average() {
        let base = quick(ExperimentConfig::baseline());
        let bh = quick(ExperimentConfig::bank_hopping());
        assert!(
            bh.temps.trace_cache.average_c < base.temps.trace_cache.average_c,
            "TC avg: {} vs {}",
            bh.temps.trace_cache.average_c,
            base.temps.trace_cache.average_c
        );
    }

    #[test]
    fn techniques_cost_little_performance() {
        let base = quick(ExperimentConfig::baseline());
        for cfg in [
            ExperimentConfig::distributed_rename_commit(),
            ExperimentConfig::hopping_and_biasing(),
        ] {
            let name = cfg.name;
            let r = quick(cfg);
            let slow = r.cpi / base.cpi - 1.0;
            assert!((-0.05..0.20).contains(&slow), "{name} slowdown {slow}");
        }
    }

    #[test]
    fn average_temps_means_groups() {
        let a = quick(ExperimentConfig::baseline());
        let mut b = a.clone();
        b.temps.rob.abs_max_c += 10.0;
        let avg = average_temps(&[a.clone(), b]);
        assert!((avg.rob.abs_max_c - (a.temps.rob.abs_max_c + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn slowdown_of_identical_suites_is_zero() {
        let a = quick(ExperimentConfig::baseline());
        let suite = [a];
        assert!(slowdown(&suite, &suite).abs() < 1e-12);
    }
}
