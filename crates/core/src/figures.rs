//! Regeneration of every figure in the paper's evaluation (§4).
//!
//! Each `figureN` function runs the configurations that figure compares,
//! over the application set given, and returns a [`FigureTable`] whose rows
//! mirror the bars of the original plot:
//!
//! * [`figure1`] — baseline temperature of Processor / Frontend / Backend /
//!   UL2 (peak and average ΔT over the 45 °C ambient),
//! * [`figure12`] — distributed rename and commit: % reduction of
//!   AbsMax/Average/AvgMax for ROB, RAT and trace cache, plus slowdown,
//! * [`figure13`] — the four trace-cache techniques (address biasing,
//!   blank silicon, bank hopping, BH+AB) with the same metrics,
//! * [`figure14`] — the combined distributed frontend.
//!
//! Run lengths are scaled down from the paper's 200 M instructions per
//! application; pass a larger `uops_per_app` to converge further.
//!
//! Every figure executes its whole app × config grid through a parallel
//! [`SweepRunner`] — rows are bit-identical to the old serial collection,
//! just produced across however many cores the host has.

use distfront_trace::AppProfile;

use crate::engine::{CellOutcome, SweepRunner};
use crate::experiment::ExperimentConfig;
use crate::report::{FigureRow, FigureTable};
use crate::runner::{average_temps, slowdown, AppResult, TempReport};

/// Ambient temperature the paper measures rises against.
pub const AMBIENT_C: f64 = 45.0;

/// Raw data behind a technique-comparison figure.
#[derive(Debug, Clone)]
pub struct ComparisonData {
    /// Per-app results for the baseline.
    pub baseline: Vec<AppResult>,
    /// `(config name, per-app results)` per technique, in figure order.
    pub techniques: Vec<(&'static str, Vec<AppResult>)>,
}

impl ComparisonData {
    /// Runs the baseline plus `configs` over `apps` at `uops_per_app`,
    /// fanning the whole grid out over a parallel [`SweepRunner`].
    pub fn collect(apps: &[AppProfile], configs: &[ExperimentConfig], uops_per_app: u64) -> Self {
        Self::collect_with(&SweepRunner::new(), apps, configs, uops_per_app)
    }

    /// [`collect`](Self::collect) on a caller-supplied runner (e.g.
    /// [`SweepRunner::serial`] for a reference run, or a shared runner
    /// whose warm-start cache spans several figures).
    ///
    /// # Panics
    ///
    /// Panics if any cell fails, listing every failed cell — a figure's
    /// reductions are relative to the baseline row, so a partial grid
    /// cannot be plotted. Use [`try_collect_with`](Self::try_collect_with)
    /// to handle the failures instead.
    pub fn collect_with(
        runner: &SweepRunner,
        apps: &[AppProfile],
        configs: &[ExperimentConfig],
        uops_per_app: u64,
    ) -> Self {
        Self::try_collect_with(runner, apps, configs, uops_per_app).unwrap_or_else(|failed| {
            let list: Vec<String> = failed.iter().map(CellOutcome::failure_line).collect();
            panic!("{} figure cells failed:\n{}", failed.len(), list.join("\n"))
        })
    }

    /// The fault-tolerant [`collect_with`](Self::collect_with): runs the
    /// grid through [`SweepRunner::try_grid`] and, when any cell fails,
    /// returns the failed cells instead of panicking (a figure needs its
    /// full grid — reductions are computed against the baseline row — so
    /// there is no partial `ComparisonData`).
    ///
    /// # Errors
    ///
    /// Returns every failed [`CellOutcome`] when the grid is incomplete.
    pub fn try_collect_with(
        runner: &SweepRunner,
        apps: &[AppProfile],
        configs: &[ExperimentConfig],
        uops_per_app: u64,
    ) -> Result<Self, Vec<CellOutcome>> {
        let mut grid_cfgs = Vec::with_capacity(configs.len() + 1);
        grid_cfgs.push(ExperimentConfig::baseline().with_uops(uops_per_app));
        grid_cfgs.extend(configs.iter().map(|c| c.clone().with_uops(uops_per_app)));
        let report = runner.try_grid(&grid_cfgs, apps);
        if !report.is_complete() {
            return Err(report.failures().cloned().collect());
        }
        let mut rows = report.strict().into_iter();
        let baseline = rows.next().expect("baseline row");
        let techniques = grid_cfgs[1..].iter().map(|c| c.name).zip(rows).collect();
        Ok(ComparisonData {
            baseline,
            techniques,
        })
    }

    /// One figure row per technique: the nine reduction percentages
    /// (ROB/RAT/TC × AbsMax/Average/AvgMax) followed by the slowdown.
    pub fn reduction_rows(&self) -> Vec<FigureRow> {
        let base = average_temps(&self.baseline);
        self.techniques
            .iter()
            .map(|(name, results)| {
                let t = average_temps(results);
                let mut values = Vec::with_capacity(10);
                for (b, m) in [
                    (&base.rob, &t.rob),
                    (&base.rat, &t.rat),
                    (&base.trace_cache, &t.trace_cache),
                ] {
                    let r = b.reduction_vs(m, AMBIENT_C);
                    values.push(r.abs_max_c * 100.0);
                    values.push(r.average_c * 100.0);
                    values.push(r.avg_max_c * 100.0);
                }
                values.push(slowdown(&self.baseline, results) * 100.0);
                FigureRow {
                    label: (*name).to_string(),
                    values,
                }
            })
            .collect()
    }
}

fn reduction_columns() -> Vec<String> {
    let mut cols = Vec::new();
    for group in ["ROB", "RAT", "TC"] {
        for metric in ["AbsMax", "Average", "AvgMax"] {
            cols.push(format!("{group} {metric} %"));
        }
    }
    cols.push("Slowdown %".to_string());
    cols
}

/// Figure 1: temperature comparison of the processor elements on the
/// baseline — peak and average increase over the 45 °C ambient.
pub fn figure1(apps: &[AppProfile], uops_per_app: u64) -> FigureTable {
    let cfg = ExperimentConfig::baseline().with_uops(uops_per_app);
    let results = SweepRunner::new().suite(&cfg, apps);
    let t = average_temps(&results);
    let row = |label: &str, m: &distfront_thermal::GroupMetrics| FigureRow {
        label: label.to_string(),
        values: vec![m.abs_max_c - AMBIENT_C, m.average_c - AMBIENT_C],
    };
    FigureTable {
        id: "figure1",
        title: "Temperature increase over ambient (45C), baseline, SPEC2000 average".into(),
        columns: vec!["Peak (C)".into(), "Average (C)".into()],
        rows: vec![
            row("Processor", &t.processor),
            row("Frontend", &t.frontend),
            row("Backend", &t.backend),
            row("UL2", &t.ul2),
        ],
    }
}

/// Figure 1's underlying per-group averages (for tests and EXPERIMENTS.md).
pub fn figure1_report(apps: &[AppProfile], uops_per_app: u64) -> TempReport {
    let cfg = ExperimentConfig::baseline().with_uops(uops_per_app);
    average_temps(&SweepRunner::new().suite(&cfg, apps))
}

/// Figure 12: temperature reductions of distributed renaming and commit.
pub fn figure12(apps: &[AppProfile], uops_per_app: u64) -> FigureTable {
    let data = ComparisonData::collect(
        apps,
        &[ExperimentConfig::distributed_rename_commit()],
        uops_per_app,
    );
    FigureTable {
        id: "figure12",
        title: "Distributed renaming and commit: reduction of temperature rise".into(),
        columns: reduction_columns(),
        rows: data.reduction_rows(),
    }
}

/// Figure 13: the sub-banked thermal-aware trace-cache techniques.
pub fn figure13(apps: &[AppProfile], uops_per_app: u64) -> FigureTable {
    let data = ComparisonData::collect(apps, &ExperimentConfig::figure13_set(), uops_per_app);
    FigureTable {
        id: "figure13",
        title: "Sub-banked trace cache: reduction of temperature rise".into(),
        columns: reduction_columns(),
        rows: data.reduction_rows(),
    }
}

/// Figure 14: the combined distributed frontend.
pub fn figure14(apps: &[AppProfile], uops_per_app: u64) -> FigureTable {
    let data = ComparisonData::collect(
        apps,
        &[
            ExperimentConfig::hopping_and_biasing(),
            ExperimentConfig::distributed_rename_commit(),
            ExperimentConfig::combined(),
        ],
        uops_per_app,
    );
    FigureTable {
        id: "figure14",
        title: "Distributed frontend: overall temperature reductions".into(),
        columns: reduction_columns(),
        rows: data.reduction_rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_apps() -> Vec<AppProfile> {
        vec![AppProfile::test_tiny()]
    }

    #[test]
    fn figure1_shape() {
        let t = figure1(&tiny_apps(), 50_000);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.columns.len(), 2);
        for row in &t.rows {
            assert!(
                row.values[0] >= row.values[1],
                "{}: peak < average",
                row.label
            );
            assert!(row.values[1] > 0.0, "{} below ambient", row.label);
        }
    }

    #[test]
    fn figure1_frontend_among_hottest() {
        let t = figure1(&tiny_apps(), 50_000);
        let get = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .map(|r| r.values[0])
                .unwrap()
        };
        assert!(get("Frontend") > get("UL2"), "frontend cooler than UL2");
    }

    #[test]
    fn figure12_reduces_rob_and_rat() {
        let t = figure12(&tiny_apps(), 50_000);
        assert_eq!(t.rows.len(), 1);
        let v = &t.rows[0].values;
        // ROB AbsMax and RAT AbsMax reductions are positive.
        assert!(v[0] > 0.0, "ROB AbsMax reduction {}", v[0]);
        assert!(v[3] > 0.0, "RAT AbsMax reduction {}", v[3]);
        // Slowdown is small.
        assert!(v[9].abs() < 20.0, "slowdown {}%", v[9]);
    }

    #[test]
    fn figure13_has_four_techniques() {
        let t = figure13(&tiny_apps(), 40_000);
        let labels: Vec<_> = t.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["address-biasing", "blank-silicon", "bank-hopping", "bh+ab"]
        );
        assert_eq!(t.columns.len(), 10);
    }

    #[test]
    fn parallel_collection_matches_serial_reference() {
        let apps = tiny_apps();
        let cfgs = [ExperimentConfig::distributed_rename_commit()];
        let parallel = ComparisonData::collect(&apps, &cfgs, 40_000);
        let serial = ComparisonData::collect_with(&SweepRunner::serial(), &apps, &cfgs, 40_000);
        assert_eq!(parallel.baseline, serial.baseline);
        assert_eq!(parallel.techniques, serial.techniques);
    }

    #[test]
    fn figure14_combined_beats_parts_on_tc() {
        let t = figure14(&tiny_apps(), 50_000);
        assert_eq!(t.rows.len(), 3);
        let tc_avg = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .map(|r| r.values[7])
                .unwrap()
        };
        // The combination should at least match DRC alone on the TC.
        assert!(tc_avg("drc+bh+ab") > tc_avg("drc") - 5.0);
    }
}
