//! Multi-process sweep sharding: a coordinator that splits one sweep
//! grid across N worker *processes* on the same host and merges their
//! results back into a report byte-identical to a serial run.
//!
//! # Why processes
//!
//! The thread-pool executor in [`SweepRunner`](crate::engine::SweepRunner)
//! already parallelizes a grid, but every cell shares one address space —
//! one allocator, one warm-start cache, one set of page tables. Sharding
//! across OS processes is the only way to measure real multi-core
//! contention (the sweep bench's serial vs threads vs processes
//! head-to-head), and it lifts PR 4's fault-isolation contract from cell
//! granularity to process granularity: a worker that dies mid-cell — OOM
//! kill, SIGKILL, a crash in native code — cannot poison the cells of any
//! other shard.
//!
//! # Protocol
//!
//! Everything moves through artifacts in one shared state directory;
//! there are no pipes or sockets to lose data in when a worker dies:
//!
//! ```text
//! <dir>/
//!   shard-000.job      work order: one JobSpec line (workers=1)
//!   shard-000/         the shard's DurableStore
//!     results.dfsg       ... holding one record of SCELL/SERRCELL/SDONE
//!   shard-000.kill     test hook: present => worker self-SIGKILLs
//!   shard-001.job      ...
//! ```
//!
//! The coordinator ([`ShardRunner`]) partitions the grid's flat index
//! space `0..configs*apps` into contiguous ranges ([`partition`]), writes
//! one `.job` file per shard, and launches one worker per shard
//! (`distfront-scenarios --shard i/N --shard-dir <dir>`). Each worker
//! ([`run_worker`]) computes only its range via
//! [`SweepRunner::try_cells`](crate::engine::SweepRunner::try_cells) and
//! persists its result as **one atomic record** in its own
//! [`DurableStore`] segment, keyed by the job's content fingerprint. DFSG
//! records are checksummed and indivisible, so the record *exists* iff
//! the worker finished — a worker killed mid-write leaves a repairable
//! tail, not a half-result, and the coordinator's validity check is
//! simply "is there a complete record covering exactly the range I
//! assigned".
//!
//! Invalid or missing artifacts get the shard re-queued with bounded
//! retries; a shard still failing after its last retry is reported in
//! [`ShardOutcome::failed_shards`] with status
//! [`StatusCode::ShardFailed`], and every *surviving* shard is still
//! merged. Merging sorts cell frames by flat grid index, which
//! reconstructs canonical grid order exactly — the merged CSV rows and
//! failure lines are byte-identical to [`JobSpec::execute`] run
//! serially, whatever order shards finished or retried in.

use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use crate::job::{JobEnv, JobSpec, JobSpecError, StatusCode};
use crate::scenarios::csv_row;
use crate::server::protocol::{shard_cell_frame, shard_done_frame, shard_err_frame, ShardFrame};
use crate::store::DurableStore;

/// Splits `cells` flat grid indices into exactly `shards` contiguous
/// ranges that cover `0..cells` with no gap and no overlap. Sizes
/// differ by at most one, larger ranges first; with more shards than
/// cells the tail ranges are empty.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn partition(cells: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "cannot partition into zero shards");
    let base = cells / shards;
    let extra = cells % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// One worker's identity in a sharded run: shard `index` of `of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This worker's shard number (zero-based).
    pub index: usize,
    /// Total shard count.
    pub of: usize,
}

impl ShardSpec {
    /// Parses the CLI form `i/N` (e.g. `--shard 1/3`).
    ///
    /// # Errors
    ///
    /// Returns a usage message for malformed input, `N == 0`, or
    /// `i >= N`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (index, of) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard {s:?} (expected i/N, e.g. 1/3)"))?;
        let index: usize = index
            .parse()
            .map_err(|_| format!("bad shard index in {s:?}"))?;
        let of: usize = of
            .parse()
            .map_err(|_| format!("bad shard count in {s:?}"))?;
        if of == 0 {
            return Err("shard count must be positive".to_string());
        }
        if index >= of {
            return Err(format!("shard index {index} out of range for {of} shards"));
        }
        Ok(ShardSpec { index, of })
    }

    /// The contiguous flat-index range this shard owns in a grid of
    /// `cells` total cells — [`partition`]'s `index`-th range.
    pub fn range(&self, cells: usize) -> Range<usize> {
        partition(cells, self.of).swap_remove(self.index)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

fn job_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}.job"))
}

fn store_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}"))
}

fn kill_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}.kill"))
}

/// Runs one shard worker to completion: reads the work order
/// `shard-<i>.job` under `dir`, computes the shard's index range, and
/// persists the result record into `shard-<i>/`. This is the body of
/// `distfront-scenarios --shard i/N --shard-dir <dir>`.
///
/// If a `shard-<i>.kill` marker is present the worker removes it, does
/// the work, then SIGKILLs itself **before persisting** — a
/// deterministic stand-in for an OOM kill mid-shard that the
/// fault-injection tests and the CI gate use to exercise the
/// coordinator's re-queue path (the removed marker makes the retry
/// succeed).
///
/// Returns the exit status for the process: per-cell failures are
/// [`StatusCode::CellsFailed`] (the record is still complete — the
/// coordinator treats the shard as done), unreadable or malformed work
/// orders are [`StatusCode::Usage`], and persistence failures are
/// [`StatusCode::Io`].
pub fn run_worker(dir: &Path, shard: ShardSpec) -> StatusCode {
    let path = job_path(dir, shard.index);
    let line = match std::fs::read_to_string(&path) {
        Ok(line) => line,
        Err(e) => {
            eprintln!("shard {shard}: cannot read {}: {e}", path.display());
            return StatusCode::Io;
        }
    };
    let spec = match JobSpec::parse_line(line.trim()) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("shard {shard}: bad work order: {e}");
            return StatusCode::Usage;
        }
    };
    let (fingerprint, resolved) = match spec
        .fingerprint()
        .and_then(|fp| spec.resolve().map(|r| (fp, r)))
    {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("shard {shard}: unresolvable work order: {e}");
            return StatusCode::Usage;
        }
    };
    let apps = resolved.workloads.len();
    let range = shard.range(resolved.configs.len() * apps);

    // Arm the kill hook *before* computing so a retry (which sees no
    // marker) runs the exact same work unperturbed.
    let kill = kill_path(dir, shard.index);
    let die_before_persist = kill.exists() && std::fs::remove_file(&kill).is_ok();

    let env = JobEnv::default();
    let runner =
        crate::engine::SweepRunner::from_spec(&spec).with_trace_mode(spec.trace.bind(&env.traces));
    let cells = runner.try_cells(&resolved.configs, &resolved.workloads, range.clone());

    if die_before_persist {
        // std has no raise(2); go through kill(1) so the process dies by
        // genuine SIGKILL — no destructors, no buffered writes, exactly
        // the mid-shard death the coordinator must survive.
        let _ = Command::new("kill")
            .args(["-KILL", &std::process::id().to_string()])
            .status();
        std::thread::sleep(std::time::Duration::from_secs(5));
        std::process::exit(137); // fallback if kill(1) is unavailable
    }

    let mut failed = 0usize;
    let mut frames = Vec::with_capacity(cells.len() + 1);
    for cell in &cells {
        let index = cell.config * apps + cell.app;
        match &cell.result {
            Ok(r) => frames.push(shard_cell_frame(
                index,
                &csv_row(resolved.row_label(cell), r),
            )),
            Err(e) => {
                failed += 1;
                frames.push(shard_err_frame(
                    index,
                    resolved.row_label(cell),
                    cell.app_name,
                    &e.to_string(),
                ));
            }
        }
    }
    let status = if failed > 0 {
        StatusCode::CellsFailed
    } else {
        StatusCode::Ok
    };
    frames.push(shard_done_frame(&range, cells.len(), failed, status));

    let persisted = DurableStore::open(store_path(dir, shard.index)).and_then(|(store, _)| {
        store.append_result(fingerprint, &frames)?;
        store.flush()
    });
    if let Err(e) = persisted {
        eprintln!("shard {shard}: cannot persist result: {e}");
        return StatusCode::Io;
    }
    status
}

/// Why a sharded run could not even start (once workers are launched,
/// failures become re-queues and [`ShardOutcome::failed_shards`], never
/// an `Err`).
#[derive(Debug)]
pub enum ShardError {
    /// The job spec does not validate or resolve.
    Spec(JobSpecError),
    /// The shared state directory or a work order could not be written.
    Io(io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Spec(e) => write!(f, "{e}"),
            ShardError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<JobSpecError> for ShardError {
    fn from(e: JobSpecError) -> Self {
        ShardError::Spec(e)
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// What a sharded run produced, merged across every surviving shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// CSV rows of every successful cell, canonical grid order —
    /// byte-identical to [`JobReport::csv_rows`](crate::job::JobReport::csv_rows)
    /// for the same spec run in one process.
    pub csv_rows: Vec<String>,
    /// `(label, app, message)` for every failed cell, canonical grid
    /// order — matching
    /// [`JobReport::failure_lines`](crate::job::JobReport::failure_lines).
    pub failures: Vec<(String, String, String)>,
    /// The run's exit status: [`StatusCode::ShardFailed`] if any shard
    /// died permanently, else [`StatusCode::CellsFailed`] if any cell
    /// failed, else [`StatusCode::Ok`].
    pub status: StatusCode,
    /// Worker launches per shard (1 = clean first run).
    pub attempts: Vec<usize>,
    /// Shards that failed permanently after exhausting retries.
    pub failed_shards: Vec<usize>,
    /// Total cells in the grid.
    pub cells: usize,
    /// Cells actually merged (`== cells` iff no shard died).
    pub merged: usize,
}

/// The coordinator: partitions a [`JobSpec`]'s grid, drives worker
/// processes, re-queues failures, and merges the shard artifacts.
#[derive(Debug)]
pub struct ShardRunner {
    spec: JobSpec,
    processes: usize,
    retries: usize,
    dir: Option<PathBuf>,
    worker: Option<PathBuf>,
}

impl ShardRunner {
    /// A coordinator for `spec` across `processes` worker processes.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is zero.
    pub fn new(spec: JobSpec, processes: usize) -> ShardRunner {
        assert!(processes > 0, "need at least one worker process");
        ShardRunner {
            spec,
            processes,
            retries: 2,
            dir: None,
            worker: None,
        }
    }

    /// Sets how many times a failed shard is re-queued before being
    /// declared dead (default 2, i.e. up to three launches per shard).
    #[must_use]
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the shared state directory (default: a per-process path
    /// under the system temp dir). The directory and its artifacts are
    /// left in place after the run — they *are* the audit trail.
    #[must_use]
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Sets the worker binary to launch (default: this executable —
    /// correct when the coordinator *is* `distfront-scenarios`; tests
    /// and benches point this at the built binary explicitly).
    #[must_use]
    pub fn with_worker(mut self, worker: impl Into<PathBuf>) -> Self {
        self.worker = Some(worker.into());
        self
    }

    /// Runs the sharded sweep to completion and merges the artifacts.
    ///
    /// # Errors
    ///
    /// Only setup can fail: an invalid spec, or I/O writing the state
    /// directory and work orders. Worker deaths are handled by re-queue
    /// and surface in [`ShardOutcome::failed_shards`].
    pub fn run(&self) -> Result<ShardOutcome, ShardError> {
        let fingerprint = self.spec.fingerprint()?;
        let resolved = self.spec.resolve()?;
        let cells = resolved.configs.len() * resolved.workloads.len();
        let n = self.processes;
        let ranges = partition(cells, n);

        let dir = match &self.dir {
            Some(dir) => dir.clone(),
            None => std::env::temp_dir().join(format!("distfront-shard-{}", std::process::id())),
        };
        let worker = match &self.worker {
            Some(path) => path.clone(),
            None => std::env::current_exe()?,
        };
        std::fs::create_dir_all(&dir)?;
        // Ship each worker the same job at workers=1 — scheduling knobs
        // are excluded from the fingerprint, so the shipped spec's
        // content address still matches `fingerprint` above, and the
        // processes themselves are the parallelism.
        let mut order = self.spec.clone().with_workers(1).encode_line();
        order.push('\n');
        for i in 0..n {
            std::fs::write(job_path(&dir, i), &order)?;
        }

        let mut pending: Vec<usize> = (0..n).collect();
        let mut attempts = vec![0usize; n];
        let mut completed: Vec<Option<Vec<ShardFrame>>> = (0..n).map(|_| None).collect();
        let mut failed_shards = Vec::new();
        while !pending.is_empty() {
            // Launch the whole wave before waiting on any of it, so
            // shards genuinely run concurrently.
            let wave: Vec<(usize, io::Result<Child>)> = pending
                .iter()
                .map(|&i| (i, self.spawn(&worker, &dir, i, n)))
                .collect();
            let mut requeue = Vec::new();
            for (i, child) in wave {
                attempts[i] += 1;
                let exit = describe_exit(child);
                // A complete, range-exact record trumps the exit code:
                // a worker that exited `cells-failed` still finished its
                // shard, and per-cell errors are outcomes, not crashes.
                match read_artifact(&dir, i, fingerprint, &ranges[i]) {
                    Ok(frames) => completed[i] = Some(frames),
                    Err(reason) if attempts[i] > self.retries => {
                        eprintln!(
                            "shard {i}/{n}: {exit}; {reason}; giving up after {} attempts",
                            attempts[i]
                        );
                        failed_shards.push(i);
                    }
                    Err(reason) => {
                        eprintln!(
                            "shard {i}/{n}: {exit}; {reason}; re-queuing (attempt {} of {})",
                            attempts[i],
                            self.retries + 1
                        );
                        requeue.push(i);
                    }
                }
            }
            pending = requeue;
        }

        // Merge: strip each shard's terminal SDONE, then sort every cell
        // frame by flat grid index. Ranges are disjoint and validated
        // exactly-once per shard, so the sort alone restores canonical
        // grid order.
        let mut merged: Vec<ShardFrame> = completed
            .into_iter()
            .flatten()
            .flat_map(|mut frames| {
                frames.pop();
                frames
            })
            .collect();
        merged.sort_by_key(|frame| match frame {
            ShardFrame::Cell { index, .. } | ShardFrame::ErrCell { index, .. } => *index,
            ShardFrame::Done { .. } => usize::MAX,
        });
        let mut csv_rows = Vec::new();
        let mut failures = Vec::new();
        for frame in merged {
            match frame {
                ShardFrame::Cell { row, .. } => csv_rows.push(row),
                ShardFrame::ErrCell {
                    label, app, msg, ..
                } => failures.push((label, app, msg)),
                ShardFrame::Done { .. } => {}
            }
        }
        let status = if !failed_shards.is_empty() {
            StatusCode::ShardFailed
        } else if !failures.is_empty() {
            StatusCode::CellsFailed
        } else {
            StatusCode::Ok
        };
        Ok(ShardOutcome {
            merged: csv_rows.len() + failures.len(),
            csv_rows,
            failures,
            status,
            attempts,
            failed_shards,
            cells,
        })
    }

    fn spawn(&self, worker: &Path, dir: &Path, index: usize, of: usize) -> io::Result<Child> {
        Command::new(worker)
            .arg("--shard")
            .arg(format!("{index}/{of}"))
            .arg("--shard-dir")
            .arg(dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
    }
}

fn describe_exit(child: io::Result<Child>) -> String {
    match child {
        Ok(mut child) => match child.wait() {
            Ok(status) => match status.code() {
                Some(code) => format!("exit {code}"),
                None => "killed by signal".to_string(),
            },
            Err(e) => format!("wait failed: {e}"),
        },
        Err(e) => format!("spawn failed: {e}"),
    }
}

/// Loads and validates shard `index`'s result artifact: the newest
/// record under the job's fingerprint must parse as shard frames, end in
/// an `SDONE` whose range equals the assigned one, and cover every index
/// of that range exactly once. Anything less is grounds for re-queue.
fn read_artifact(
    dir: &Path,
    index: usize,
    fingerprint: u64,
    range: &Range<usize>,
) -> Result<Vec<ShardFrame>, String> {
    let (_, snapshot) = DurableStore::open(store_path(dir, index))
        .map_err(|e| format!("cannot open shard store: {e}"))?;
    let lines = snapshot
        .last_result(fingerprint)
        .ok_or_else(|| "no completed result record".to_string())?;
    let mut frames = Vec::with_capacity(lines.len());
    for line in lines {
        frames.push(
            ShardFrame::parse(line).ok_or_else(|| format!("unparseable artifact line {line:?}"))?,
        );
    }
    let Some(ShardFrame::Done {
        start, end, cells, ..
    }) = frames.last()
    else {
        return Err("record missing terminal SDONE".to_string());
    };
    if (*start, *end) != (range.start, range.end) {
        return Err(format!(
            "stale record covers {start}..{end}, assigned {}..{}",
            range.start, range.end
        ));
    }
    if *cells != range.len() {
        return Err(format!(
            "record claims {cells} cells for a {}-cell range",
            range.len()
        ));
    }
    let mut seen = vec![false; range.len()];
    for frame in &frames[..frames.len() - 1] {
        let i = match frame {
            ShardFrame::Cell { index, .. } | ShardFrame::ErrCell { index, .. } => *index,
            ShardFrame::Done { .. } => return Err("SDONE before end of record".to_string()),
        };
        if i < range.start || i >= range.end {
            return Err(format!(
                "cell index {i} outside assigned range {}..{}",
                range.start, range.end
            ));
        }
        if seen[i - range.start] {
            return Err(format!("duplicate cell index {i}"));
        }
        seen[i - range.start] = true;
    }
    if seen.iter().any(|covered| !covered) {
        return Err("record is missing cells of its range".to_string());
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_once_and_balances() {
        assert_eq!(partition(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(partition(6, 3), vec![0..2, 2..4, 4..6]);
        assert_eq!(partition(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
        assert_eq!(partition(0, 2), vec![0..0, 0..0]);
        let ranges = partition(52, 7);
        assert_eq!(ranges.len(), 7);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 52);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn shard_spec_parses_the_cli_form() {
        let spec = ShardSpec::parse("1/3").unwrap();
        assert_eq!(spec, ShardSpec { index: 1, of: 3 });
        assert_eq!(spec.to_string(), "1/3");
        assert_eq!(spec.range(10), 4..7);
        assert!(ShardSpec::parse("3/3").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("x/2").is_err());
        assert!(ShardSpec::parse("2").is_err());
    }

    #[test]
    fn artifact_validation_rejects_bad_records() {
        let dir = std::env::temp_dir().join(format!(
            "distfront-shard-unit-{}-validation",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = DurableStore::open(store_path(&dir, 0)).unwrap();

        // No record at all.
        assert!(read_artifact(&dir, 0, 1, &(0..2)).is_err());

        // A stale record under a different fingerprint stays invisible.
        store
            .append_result(
                99,
                &[
                    "SCELL 0 a,b".into(),
                    "SDONE start=0 end=1 cells=1 failed=0 status=0".into(),
                ],
            )
            .unwrap();
        store.flush().unwrap();
        assert!(read_artifact(&dir, 0, 1, &(0..2)).is_err());

        // Wrong range: rejected as stale.
        store
            .append_result(
                1,
                &[
                    "SCELL 0 a,b".into(),
                    "SDONE start=0 end=1 cells=1 failed=0 status=0".into(),
                ],
            )
            .unwrap();
        store.flush().unwrap();
        let err = read_artifact(&dir, 0, 1, &(0..2)).unwrap_err();
        assert!(err.contains("stale record"), "{err}");

        // Complete and range-exact: accepted, last-wins over the stale one.
        store
            .append_result(
                1,
                &[
                    "SCELL 0 a,b".into(),
                    "SERRCELL 1 lbl app solver diverged".into(),
                    "SDONE start=0 end=2 cells=2 failed=1 status=2".into(),
                ],
            )
            .unwrap();
        store.flush().unwrap();
        let frames = read_artifact(&dir, 0, 1, &(0..2)).unwrap();
        assert_eq!(frames.len(), 3);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
