//! `distfront-scenarios` — run named experiment scenarios from the
//! command line.
//!
//! ```text
//! distfront-scenarios --list
//! distfront-scenarios --run NAME [--run NAME ...] [options]
//! distfront-scenarios --all [options]
//!
//! Options:
//!   --smoke          4-app smoke suite instead of the full 26
//!   --uops N         micro-ops per application (default 200000; smoke 40000)
//!   --workers N      sweep workers (default: all hardware threads)
//!   --integrator I   transient integrator: expm (default) or rk4
//!   --csv PATH       write results as CSV
//!   --json PATH      write results as JSON
//!   --verify         also run serially and fail unless the bytes match
//! ```
//!
//! Exit status: 0 on success, 1 when `--verify` detects a divergence,
//! 2 on a usage error.

use std::process::ExitCode;

use distfront::scenarios::{self, RunOptions, Scenario, ScenarioReport};
use distfront_thermal::Integrator;

struct Args {
    list: bool,
    all: bool,
    run: Vec<String>,
    smoke: bool,
    uops: Option<u64>,
    workers: Option<usize>,
    integrator: Option<Integrator>,
    csv: Option<String>,
    json: Option<String>,
    verify: bool,
}

fn usage() -> &'static str {
    "usage: distfront-scenarios --list | --all | --run NAME [--run NAME ...]\n\
     options: [--smoke] [--uops N] [--workers N] [--integrator rk4|expm] \
     [--csv PATH] [--json PATH] [--verify]"
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        all: false,
        run: Vec::new(),
        smoke: false,
        uops: None,
        workers: None,
        integrator: None,
        csv: None,
        json: None,
        verify: false,
    };
    argv.next(); // program name
    while let Some(a) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--list" => args.list = true,
            "--all" => args.all = true,
            "--run" => args.run.push(value("--run")?),
            "--smoke" => args.smoke = true,
            "--uops" => {
                let v = value("--uops")?;
                args.uops = Some(v.parse().map_err(|_| format!("bad --uops value {v}"))?);
            }
            "--workers" => {
                let v = value("--workers")?;
                let w: usize = v.parse().map_err(|_| format!("bad --workers value {v}"))?;
                if w == 0 {
                    return Err("--workers must be at least 1".into());
                }
                args.workers = Some(w);
            }
            "--integrator" => {
                let v = value("--integrator")?;
                args.integrator = Some(v.parse()?);
            }
            "--csv" => args.csv = Some(value("--csv")?),
            "--json" => args.json = Some(value("--json")?),
            "--verify" => args.verify = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if !args.list && !args.all && args.run.is_empty() {
        return Err("nothing to do".into());
    }
    Ok(args)
}

fn list() {
    println!("{:<16} summary", "name");
    for s in scenarios::registry() {
        println!("{:<16} {}", s.name, s.summary);
    }
}

fn options(args: &Args) -> RunOptions {
    let mut opts = if args.smoke {
        RunOptions::smoke()
    } else {
        RunOptions::full()
    };
    if let Some(uops) = args.uops {
        opts = opts.with_uops(uops);
    }
    if let Some(workers) = args.workers {
        opts = opts.with_workers(workers);
    }
    if let Some(integrator) = args.integrator {
        opts = opts.with_integrator(integrator);
    }
    opts
}

fn run_all(selected: &[Scenario], opts: &RunOptions) -> Vec<ScenarioReport> {
    selected
        .iter()
        .map(|s| {
            println!(
                "running {:<16} ({} apps x {} uops, {} workers, {} integrator)",
                s.name,
                opts.apps().len(),
                opts.uops,
                opts.workers,
                opts.integrator
            );
            s.run(opts)
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.list {
        list();
        if !args.all && args.run.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    let selected: Vec<Scenario> = if args.all {
        scenarios::registry()
    } else {
        let mut picked = Vec::new();
        for name in &args.run {
            match scenarios::by_name(name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("error: unknown scenario {name} (try --list)");
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let opts = options(&args);
    let reports = run_all(&selected, &opts);
    let csv = scenarios::to_csv(&reports);

    if args.verify {
        println!("verify: re-running serially to check byte identity...");
        let serial = run_all(&selected, &opts.with_workers(1));
        if scenarios::to_csv(&serial) != csv {
            eprintln!(
                "error: serial and {}-worker results diverge — the bit-identity \
                 guarantee is broken",
                opts.workers
            );
            return ExitCode::FAILURE;
        }
        println!(
            "verify: serial and {}-worker CSV are byte-identical",
            opts.workers
        );
    }

    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, &csv) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, scenarios::to_json(&reports)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    println!("\n{}", scenarios::summary_table(&reports));
    ExitCode::SUCCESS
}
