//! `distfront-scenarios` — run named experiment scenarios from the
//! command line.
//!
//! ```text
//! distfront-scenarios --list
//! distfront-scenarios --run NAME [--run NAME ...] [options]
//! distfront-scenarios --all [options]
//!
//! Options:
//!   --smoke          4-app smoke suite instead of the full 26
//!   --uops N         micro-ops per application (default 200000; smoke 40000)
//!   --workers N      sweep workers (default: all hardware threads)
//!   --integrator I   transient integrator: expm (default) or rk4
//!   --csv PATH       write results as CSV (rows stream to the file as cells
//!                    complete; rewritten in canonical order at the end)
//!   --json PATH      write results as JSON
//!   --progress       print one line per cell as it completes
//!   --verify         also run serially and fail unless the bytes match
//!   --inject-fail    append a divergent-leakage scenario whose cells all
//!                    fail (exercises the partial-results path; CI uses it)
//!   --record DIR     simulate live and write one .dft activity trace per
//!                    successful cell into DIR
//!   --replay DIR     load .dft traces from DIR and replay compatible cells
//!                    instead of re-simulating the core (live fallback
//!                    otherwise); byte-identical output, several times
//!                    faster per replayed cell
//!   --batch          lockstep batched replay: advance cohorts of
//!                    replay-mode cells through one shared batched
//!                    propagator (default when --replay is given; inert
//!                    otherwise)
//!   --no-batch       disable batched replay
//!   --state-dir DIR  run against DIR's crash-safe segment store (the
//!                    same layout `distfront-sweepd --state-dir` uses):
//!                    scenarios whose content fingerprint is already
//!                    stored are served from disk byte-identically, new
//!                    ones run and are appended (local-only; excludes
//!                    --record/--replay/--verify/--json)
//!
//! Multi-process mode (see [`distfront::shard`]):
//!   --processes N    shard each scenario's grid across N worker
//!                    processes sharing one state directory; the merged
//!                    report is byte-identical to a serial run and dead
//!                    workers are re-queued with bounded retries
//!                    (excludes --connect/--state-dir/--record/--replay/
//!                    --json; --verify compares against an in-process
//!                    serial rerun)
//!   --shard-retries N  re-queue a failed shard up to N times before
//!                    declaring it dead (default 2)
//!   --shard-dir DIR  the shared state directory (default: under the
//!                    system temp dir); each scenario gets a subdirectory
//!   --shard i/N      worker mode — run one shard of DIR's work order and
//!                    exit (launched by the coordinator; needs
//!                    --shard-dir)
//!
//! Server-client mode (see `distfront-sweepd`):
//!   --connect ADDR   submit the selected scenarios as jobs to a running
//!                    sweep daemon instead of executing locally; streams
//!                    results back and honors --smoke/--uops/--workers/
//!                    --integrator/--batch/--csv/--progress (--record,
//!                    --replay, --json and --verify are local-only)
//!   --class C        job class for --connect: interactive (default,
//!                    run-ahead) or deferrable (queued bulk work)
//!   --shutdown       after any jobs complete, ask the daemon to drain
//!                    and exit (usable alone: --connect ADDR --shutdown)
//! ```
//!
//! Exit status — the [`StatusCode`] vocabulary, shared verbatim with the
//! daemon's `DONE`/`ERR` frames so client and server cannot disagree:
//! 0 on success, 1 when `--verify` detects a divergence between the run
//! and a serial live re-run, 2 when any cell failed (the failed
//! coordinates are listed on stderr and the surviving cells are still
//! written), 3 when writing an output file or reaching the daemon
//! failed, 4 when `--verify` detects batched replay diverging from
//! serial replay (checked before the live comparison, so a batching bug
//! is distinguishable from a replay-vs-live one), 5 when `--processes`
//! lost a whole shard after exhausting its retries (survivors are still
//! merged and written — distinct from 2, where every cell *ran*),
//! 64 on a usage error.

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use distfront::engine::{CellOutcome, TraceMode, TraceStore};
use distfront::job::{JobClass, JobEnv, JobSpec, StatusCode};
use distfront::scenarios::{self, RunOptions, Scenario, ScenarioReport};
use distfront::server::{protocol, Client};
use distfront::shard::{self, ShardError, ShardRunner, ShardSpec};
use distfront::store::DurableStore;
use distfront_thermal::Integrator;
use distfront_trace::ActivityTrace;

struct Args {
    list: bool,
    all: bool,
    run: Vec<String>,
    smoke: bool,
    uops: Option<u64>,
    workers: Option<usize>,
    integrator: Option<Integrator>,
    csv: Option<String>,
    json: Option<String>,
    progress: bool,
    verify: bool,
    inject_fail: bool,
    record: Option<String>,
    replay: Option<String>,
    batch: Option<bool>,
    state_dir: Option<String>,
    connect: Option<String>,
    class: JobClass,
    shutdown: bool,
    processes: Option<usize>,
    shard_retries: Option<usize>,
    shard_dir: Option<String>,
    shard: Option<String>,
}

fn usage() -> &'static str {
    "usage: distfront-scenarios --list | --all | --run NAME [--run NAME ...]\n\
     options: [--smoke] [--uops N] [--workers N] [--integrator rk4|expm] \
     [--csv PATH] [--json PATH] [--progress] [--verify] [--inject-fail] \
     [--record DIR | --replay DIR] [--batch | --no-batch] [--state-dir DIR]\n\
     multi-process: [--processes N [--shard-retries N] [--shard-dir DIR]]\n\
     worker:  [--shard i/N --shard-dir DIR]\n\
     client:  [--connect ADDR [--class interactive|deferrable] [--shutdown]]"
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        all: false,
        run: Vec::new(),
        smoke: false,
        uops: None,
        workers: None,
        integrator: None,
        csv: None,
        json: None,
        progress: false,
        verify: false,
        inject_fail: false,
        record: None,
        replay: None,
        batch: None,
        state_dir: None,
        connect: None,
        class: JobClass::Interactive,
        shutdown: false,
        processes: None,
        shard_retries: None,
        shard_dir: None,
        shard: None,
    };
    argv.next(); // program name
    while let Some(a) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--list" => args.list = true,
            "--all" => args.all = true,
            "--run" => args.run.push(value("--run")?),
            "--smoke" => args.smoke = true,
            "--uops" => {
                let v = value("--uops")?;
                args.uops = Some(v.parse().map_err(|_| format!("bad --uops value {v}"))?);
            }
            "--workers" => {
                let v = value("--workers")?;
                let w: usize = v.parse().map_err(|_| format!("bad --workers value {v}"))?;
                if w == 0 {
                    return Err("--workers must be at least 1".into());
                }
                args.workers = Some(w);
            }
            "--integrator" => {
                let v = value("--integrator")?;
                args.integrator = Some(v.parse()?);
            }
            "--csv" => args.csv = Some(value("--csv")?),
            "--json" => args.json = Some(value("--json")?),
            "--progress" => args.progress = true,
            "--verify" => args.verify = true,
            "--inject-fail" => args.inject_fail = true,
            "--record" => args.record = Some(value("--record")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--batch" => args.batch = Some(true),
            "--no-batch" => args.batch = Some(false),
            "--state-dir" => args.state_dir = Some(value("--state-dir")?),
            "--connect" => args.connect = Some(value("--connect")?),
            "--class" => {
                let v = value("--class")?;
                args.class = JobClass::parse(&v).ok_or_else(|| format!("bad --class value {v}"))?;
            }
            "--shutdown" => args.shutdown = true,
            "--processes" => {
                let v = value("--processes")?;
                let p: usize = v
                    .parse()
                    .map_err(|_| format!("bad --processes value {v}"))?;
                if p == 0 {
                    return Err("--processes must be at least 1".into());
                }
                args.processes = Some(p);
            }
            "--shard-retries" => {
                let v = value("--shard-retries")?;
                args.shard_retries = Some(
                    v.parse()
                        .map_err(|_| format!("bad --shard-retries value {v}"))?,
                );
            }
            "--shard-dir" => args.shard_dir = Some(value("--shard-dir")?),
            "--shard" => args.shard = Some(value("--shard")?),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let shutdown_only = args.shutdown && args.connect.is_some();
    if !args.list
        && !args.all
        && args.run.is_empty()
        && !args.inject_fail
        && !shutdown_only
        && args.shard.is_none()
    {
        return Err("nothing to do".into());
    }
    if args.shard.is_some() {
        if args.shard_dir.is_none() {
            return Err("--shard (worker mode) needs --shard-dir".into());
        }
        if args.processes.is_some() || args.connect.is_some() || args.state_dir.is_some() {
            return Err("--shard is worker mode; only --shard-dir applies".into());
        }
    }
    if args.shard_dir.is_some() && args.shard.is_none() && args.processes.is_none() {
        return Err("--shard-dir needs --processes or --shard".into());
    }
    if args.shard_retries.is_some() && args.processes.is_none() {
        return Err("--shard-retries needs --processes".into());
    }
    if args.processes.is_some()
        && (args.connect.is_some()
            || args.state_dir.is_some()
            || args.record.is_some()
            || args.replay.is_some()
            || args.json.is_some())
    {
        return Err("--processes excludes --connect/--state-dir/--record/--replay/--json".into());
    }
    if args.record.is_some() && args.replay.is_some() {
        return Err("--record and --replay are mutually exclusive".into());
    }
    if args.shutdown && args.connect.is_none() {
        return Err("--shutdown needs --connect".into());
    }
    if args.connect.is_some()
        && (args.record.is_some() || args.replay.is_some() || args.verify || args.json.is_some())
    {
        return Err("--record/--replay/--verify/--json are local-only (not with --connect)".into());
    }
    if args.state_dir.is_some()
        && (args.record.is_some()
            || args.replay.is_some()
            || args.verify
            || args.json.is_some()
            || args.connect.is_some())
    {
        return Err(
            "--state-dir excludes --record/--replay/--verify/--json/--connect \
             (point --connect at a `sweepd --state-dir` instead)"
                .into(),
        );
    }
    Ok(args)
}

fn list() {
    println!("{:<16} summary", "name");
    for s in scenarios::registry() {
        println!("{:<16} {}", s.name, s.summary);
    }
}

fn options(args: &Args) -> RunOptions {
    let mut opts = if args.smoke {
        RunOptions::smoke()
    } else {
        RunOptions::full()
    };
    if let Some(uops) = args.uops {
        opts = opts.with_uops(uops);
    }
    if let Some(workers) = args.workers {
        opts = opts.with_workers(workers);
    }
    if let Some(integrator) = args.integrator {
        opts = opts.with_integrator(integrator);
    }
    // Batched lockstep replay defaults on whenever cells can actually
    // replay; an explicit --batch/--no-batch always wins.
    opts.with_batch(args.batch.unwrap_or(args.replay.is_some()))
}

/// Streams per-cell progress lines and (optionally) CSV rows to `csv` as
/// cells complete, so a killed run still leaves partial results on disk.
/// Rows arrive in completion order; `main` rewrites the file in canonical
/// order once the run finishes.
struct CellStream {
    scenario: &'static str,
    progress: bool,
    csv: Option<Arc<Mutex<std::fs::File>>>,
}

impl CellStream {
    fn observe(&self, cell: &CellOutcome) {
        if self.progress {
            match &cell.result {
                Ok(_) => eprintln!(
                    "  [{}/{}] ok in {:.2}s{}{}",
                    self.scenario,
                    cell.app_name,
                    cell.wall_time_s,
                    if cell.warm_hit { " (warm hit)" } else { "" },
                    if cell.replayed { " (replayed)" } else { "" }
                ),
                Err(e) => eprintln!("  [{}/{}] FAILED: {e}", self.scenario, cell.app_name),
            }
        }
        if let (Some(file), Ok(r)) = (&self.csv, &cell.result) {
            let mut file = file.lock().expect("csv stream poisoned");
            let row = scenarios::csv_row(self.scenario, r);
            if let Err(e) = writeln!(file, "{row}").and_then(|()| file.flush()) {
                eprintln!("warning: streaming CSV row: {e}");
            }
        }
    }
}

/// Reads every `.dft` trace under `dir` into a store for replay;
/// undecodable files warn and are skipped (their cells fall back to live
/// simulation).
fn load_traces(dir: &str) -> Result<Arc<TraceStore>, String> {
    let store = TraceStore::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {dir}: {e}"))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("reading {dir}: {e}"))?.path();
        if path.extension().is_none_or(|ext| ext != "dft") {
            continue;
        }
        match std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|b| ActivityTrace::decode(&b).map_err(|e| e.to_string()))
        {
            Ok(trace) => store.insert(trace),
            Err(e) => eprintln!("warning: skipping {}: {e}", path.display()),
        }
    }
    Ok(Arc::new(store))
}

/// Writes every recorded trace to `dir` as
/// `<config>__<workload>__<capability>.dft` — the capability id keeps two
/// point families of the same cell (say, a nominal-only baseline recording
/// and a DVFS-family one) from clobbering each other on disk, mirroring
/// the store's keying.
fn save_traces(dir: &str, store: &TraceStore) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let traces = store.traces();
    for trace in &traces {
        let file = format!(
            "{}__{}__{}.dft",
            trace.meta.config,
            trace.meta.workload,
            trace.meta.capability_id()
        )
        .replace(['/', '\\'], "-");
        let path = Path::new(dir).join(file);
        std::fs::write(&path, trace.encode())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(traces.len())
}

fn run_all(
    selected: &[Scenario],
    opts: &RunOptions,
    mode: &TraceMode,
    progress: bool,
    csv_path: Option<&str>,
) -> Vec<ScenarioReport> {
    // The streaming CSV starts with the header so a partial file is
    // self-describing even if the run dies on the first scenario. One
    // shared handle serves every scenario's stream.
    let csv = csv_path.and_then(|path| {
        match std::fs::File::create(path)
            .and_then(|mut f| writeln!(f, "{}", scenarios::CSV_HEADER).map(|()| f))
        {
            Ok(f) => Some(Arc::new(Mutex::new(f))),
            Err(e) => {
                eprintln!("warning: cannot stream CSV to {path}: {e}");
                None
            }
        }
    });
    selected
        .iter()
        .map(|s| {
            println!(
                "running {:<16} ({} workloads x {} uops, {} workers, {} integrator)",
                s.name,
                s.workloads(opts).len(),
                opts.uops,
                opts.workers,
                opts.integrator
            );
            let stream = CellStream {
                scenario: s.name,
                progress,
                csv: csv.clone(),
            };
            s.run_traced(opts, mode.clone(), move |cell| stream.observe(cell))
        })
        .collect()
}

/// The job a scenario selection + CLI flags describe — the same
/// [`JobSpec`] the daemon executes and the local path sizes its runner
/// from, which is the point of the unified API: `--connect` changes
/// where the spec runs, never what it means.
fn spec_for(args: &Args, scenario: &str) -> JobSpec {
    let mut spec = JobSpec::scenario(scenario)
        .with_smoke(args.smoke)
        .with_class(args.class)
        .with_batch(args.batch.unwrap_or(false));
    if let Some(uops) = args.uops {
        spec = spec.with_uops(uops);
    }
    if let Some(workers) = args.workers {
        spec = spec.with_workers(workers);
    }
    if let Some(integrator) = args.integrator {
        spec = spec.with_integrator(integrator);
    }
    spec
}

/// Submits the selected scenarios to a running daemon and streams the
/// results back; the thin-client half of the CLI.
fn client_main(args: &Args, selected: &[Scenario]) -> StatusCode {
    let addr = args.connect.as_deref().expect("checked by caller");
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: connecting to {addr}: {e}");
            return StatusCode::Io;
        }
    };
    let mut status = StatusCode::Ok;
    let mut rows: Vec<String> = Vec::new();
    for s in selected {
        let spec = spec_for(args, s.name);
        println!("submitting {:<16} to {addr} ({} class)", s.name, spec.class);
        let progress = args.progress;
        let response = match client.submit_streaming(&spec, |frame| {
            if progress {
                eprintln!("  {frame}");
            }
        }) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("error: job {}: {e}", s.name);
                return StatusCode::Io;
            }
        };
        if let Some(msg) = &response.error {
            eprintln!("error: daemon rejected {}: {msg}", s.name);
        } else {
            println!(
                "  {}: {} cell(s), {} failed{}",
                s.name,
                response.cells,
                response.failed,
                if response.cached {
                    " (served from daemon cache)"
                } else {
                    ""
                }
            );
        }
        for line in &response.result_lines {
            if let Some(err) = line.strip_prefix("ERRCELL ") {
                eprintln!("error: cell {err}");
            }
        }
        rows.extend(response.csv_rows.iter().cloned());
        status = status.worst(response.status);
    }
    if let Some(path) = &args.csv {
        let mut csv = String::from(scenarios::CSV_HEADER);
        csv.push('\n');
        for row in &rows {
            csv.push_str(row);
            csv.push('\n');
        }
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error: writing {path}: {e}");
            return status.worst(StatusCode::Io);
        }
        println!("wrote {path}");
    }
    if args.shutdown {
        match client.shutdown() {
            Ok(()) => println!("daemon at {addr} acknowledged shutdown"),
            Err(e) => {
                eprintln!("error: shutting down daemon at {addr}: {e}");
                return status.worst(StatusCode::Io);
            }
        }
    }
    status
}

/// Runs the selected scenarios against a local [`DurableStore`]: jobs
/// already persisted are served from disk (byte-identical frames, no
/// cells solved), novel ones execute and are appended + flushed — the
/// daemon's cache semantics without the daemon, on the same state-dir
/// layout `sweepd --state-dir` reads and writes.
fn state_dir_main(args: &Args, selected: &[Scenario]) -> StatusCode {
    let dir = args.state_dir.as_deref().expect("checked by caller");
    let (store, snapshot) = match DurableStore::open(dir) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("error: opening state dir {dir}: {e}");
            return StatusCode::Io;
        }
    };
    let store = Arc::new(store);
    // Append order makes this map last-wins, matching the daemon's load.
    let results: std::collections::HashMap<u64, Vec<String>> =
        snapshot.results.into_iter().collect();
    println!(
        "state dir {dir}: {} result(s), {} trace(s) loaded ({} records skipped)",
        results.len(),
        snapshot.traces.len(),
        snapshot.skipped
    );
    let env = JobEnv {
        traces: Arc::new(TraceStore::persistent(Arc::clone(&store), snapshot.traces)),
        ..JobEnv::default()
    };

    let mut status = StatusCode::Ok;
    let mut rows: Vec<String> = Vec::new();
    for s in selected {
        let spec = spec_for(args, s.name);
        let fingerprint = match spec.fingerprint() {
            Ok(fingerprint) => fingerprint,
            Err(e) => {
                eprintln!("error: {e}");
                return StatusCode::Usage;
            }
        };
        let frames = if let Some(frames) = results.get(&fingerprint) {
            println!(
                "  {}: served from state dir (fp={fingerprint:016x})",
                s.name
            );
            frames.clone()
        } else {
            println!("running {:<16} (fp={fingerprint:016x})", s.name);
            let stream = CellStream {
                scenario: s.name,
                progress: args.progress,
                csv: None,
            };
            let report = match spec.execute(&env, move |cell| stream.observe(cell)) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("error: {e}");
                    return StatusCode::Usage;
                }
            };
            let frames = protocol::result_frames(&report);
            // The daemon's insert-batch boundary: durable before the
            // result is reported anywhere.
            if let Err(e) = store
                .append_result(fingerprint, &frames)
                .and_then(|()| store.flush())
            {
                eprintln!("warning: persisting {}: {e}", s.name);
            }
            frames
        };
        for line in &frames {
            if let Some(row) = line.strip_prefix("CELL ") {
                rows.push(row.to_string());
            } else if let Some(err) = line.strip_prefix("ERRCELL ") {
                eprintln!("error: cell {err}");
            } else if let Some(rest) = line.strip_prefix("DONE ") {
                for token in rest.split_ascii_whitespace() {
                    if let Some(code) = token
                        .strip_prefix("status=")
                        .and_then(|v| v.parse().ok())
                        .and_then(StatusCode::from_code)
                    {
                        status = status.worst(code);
                    }
                }
            }
        }
    }
    if let Some(path) = &args.csv {
        let mut csv = String::from(scenarios::CSV_HEADER);
        csv.push('\n');
        for row in &rows {
            csv.push_str(row);
            csv.push('\n');
        }
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error: writing {path}: {e}");
            return status.worst(StatusCode::Io);
        }
        println!("wrote {path}");
    }
    status
}

/// Runs the selected scenarios sharded across `--processes` worker
/// processes via [`ShardRunner`], merging each scenario's shard
/// artifacts into rows byte-identical to a serial run. `--verify`
/// cross-checks that claim against an in-process serial live rerun.
fn processes_main(args: &Args, selected: &[Scenario]) -> StatusCode {
    let n = args.processes.expect("checked by caller");
    let base = match &args.shard_dir {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("distfront-shard-{}", std::process::id())),
    };
    let mut status = StatusCode::Ok;
    let mut rows: Vec<String> = Vec::new();
    for s in selected {
        let mut runner = ShardRunner::new(spec_for(args, s.name), n).with_dir(base.join(s.name));
        if let Some(retries) = args.shard_retries {
            runner = runner.with_retries(retries);
        }
        println!(
            "sharding {:<16} across {n} process(es) under {}",
            s.name,
            base.display()
        );
        let outcome = match runner.run() {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("error: {e}");
                return match e {
                    ShardError::Spec(_) => StatusCode::Usage,
                    ShardError::Io(_) => StatusCode::Io,
                };
            }
        };
        println!(
            "  {}: merged {}/{} cell(s), {} failed, launches per shard {:?}",
            s.name,
            outcome.merged,
            outcome.cells,
            outcome.failures.len(),
            outcome.attempts
        );
        for (label, app, msg) in &outcome.failures {
            eprintln!("error: cell {label}/{app}: {msg}");
        }
        if !outcome.failed_shards.is_empty() {
            eprintln!(
                "error: {}: shard(s) {:?} failed permanently; the merged report \
                 is missing their cells",
                s.name, outcome.failed_shards
            );
        }
        rows.extend(outcome.csv_rows);
        status = status.worst(outcome.status);
    }
    let mut merged = String::from(scenarios::CSV_HEADER);
    merged.push('\n');
    for row in &rows {
        merged.push_str(row);
        merged.push('\n');
    }
    if args.verify {
        println!("verify: re-running serially in-process to check byte identity...");
        let serial = run_all(
            selected,
            &options(args).with_workers(1),
            &TraceMode::Live,
            false,
            None,
        );
        if scenarios::to_csv(&serial) != merged {
            eprintln!(
                "error: serial and {n}-process results diverge — the bit-identity \
                 guarantee is broken"
            );
            return status.worst(StatusCode::VerifyDiverged);
        }
        println!("verify: serial and {n}-process CSV are byte-identical");
    }
    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, &merged) {
            eprintln!("error: writing {path}: {e}");
            return status.worst(StatusCode::Io);
        }
        println!("wrote {path}");
    }
    status
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return StatusCode::Usage.into();
        }
    };
    // Worker mode: run one shard of a coordinator's work order and exit.
    // No selection flags apply — the work arrives as a JobSpec artifact.
    if let Some(shard) = &args.shard {
        let spec = match ShardSpec::parse(shard) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {e}\n{}", usage());
                return StatusCode::Usage.into();
            }
        };
        let dir = args.shard_dir.as_deref().expect("checked by parse");
        return shard::run_worker(Path::new(dir), spec).into();
    }

    if args.list {
        list();
        if !args.all && args.run.is_empty() && !args.inject_fail {
            return StatusCode::Ok.into();
        }
    }

    let mut selected: Vec<Scenario> = if args.all {
        scenarios::registry()
    } else {
        let mut picked = Vec::new();
        for name in &args.run {
            match scenarios::by_name(name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("error: unknown scenario {name} (try --list)");
                    return StatusCode::Usage.into();
                }
            }
        }
        picked
    };
    if args.inject_fail {
        selected.push(scenarios::fault_injection());
    }

    if args.connect.is_some() {
        return client_main(&args, &selected).into();
    }
    if args.state_dir.is_some() {
        return state_dir_main(&args, &selected).into();
    }
    if args.processes.is_some() {
        return processes_main(&args, &selected).into();
    }

    let opts = options(&args);
    let mode = if args.record.is_some() {
        TraceMode::Record(Arc::new(TraceStore::new()))
    } else if let Some(dir) = &args.replay {
        match load_traces(dir) {
            Ok(store) => {
                println!("replay: loaded {} trace(s) from {dir}", store.len());
                TraceMode::Replay(store)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return StatusCode::Io.into();
            }
        }
    } else {
        TraceMode::Live
    };
    let reports = run_all(&selected, &opts, &mode, args.progress, args.csv.as_deref());
    let csv = scenarios::to_csv(&reports);

    if let (Some(dir), TraceMode::Record(store)) = (&args.record, &mode) {
        match save_traces(dir, store) {
            Ok(n) => println!("recorded {n} trace(s) to {dir}"),
            Err(e) => {
                eprintln!("error: {e}");
                return StatusCode::Io.into();
            }
        }
    }
    if matches!(mode, TraceMode::Replay(_)) {
        let replayed: usize = reports.iter().map(|r| r.report.replayed()).sum();
        let cells: usize = reports.iter().map(|r| r.outcomes().len()).sum();
        println!("replay: {replayed}/{cells} cell(s) replayed, the rest ran live");
    }

    if args.verify {
        // With batching on, first cross-check batched against *serial
        // unbatched replay* of the same store: any divergence here is a
        // batching bug by construction (same traces, same arithmetic
        // contract), and gets its own exit code so CI can tell it apart
        // from the replay-vs-live comparison below.
        if opts.batch && matches!(mode, TraceMode::Replay(_)) {
            println!("verify: re-replaying serially without batching...");
            let unbatched = run_all(
                &selected,
                &opts.with_workers(1).with_batch(false),
                &mode,
                false,
                None,
            );
            if scenarios::to_csv(&unbatched) != csv {
                eprintln!(
                    "error: batched and serial replay results diverge — the \
                     batch propagator's bit-identity contract is broken"
                );
                return StatusCode::BatchDiverged.into();
            }
            println!("verify: batched and serial replay CSV are byte-identical");
        }
        // The serial verify rerun is always live, so with --replay it
        // independently checks the replayed bytes against a live
        // simulation, not just against another replay.
        println!("verify: re-running serially to check byte identity...");
        let serial = run_all(
            &selected,
            &opts.with_workers(1),
            &TraceMode::Live,
            false,
            None,
        );
        if scenarios::to_csv(&serial) != csv {
            eprintln!(
                "error: serial and {}-worker results diverge — the bit-identity \
                 guarantee is broken",
                opts.workers
            );
            return StatusCode::VerifyDiverged.into();
        }
        println!(
            "verify: serial and {}-worker CSV are byte-identical",
            opts.workers
        );
    }

    // Rewrite the streamed CSV in canonical (suite) order: the streaming
    // writes above are completion-ordered crash insurance; the final file
    // is deterministic, byte-identical across worker counts.
    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, &csv) {
            eprintln!("error: writing {path}: {e}");
            return StatusCode::Io.into();
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, scenarios::to_json(&reports)) {
            eprintln!("error: writing {path}: {e}");
            return StatusCode::Io.into();
        }
        println!("wrote {path}");
    }

    println!("\n{}", scenarios::summary_table(&reports));

    let mut failed = 0usize;
    for rep in &reports {
        for cell in rep.failures() {
            failed += 1;
            eprintln!(
                "error: cell {}/{} (config {}, app {}): {}",
                rep.scenario,
                cell.app_name,
                cell.config,
                cell.app,
                cell.result.as_ref().unwrap_err()
            );
        }
    }
    if failed > 0 {
        eprintln!(
            "error: {failed} cell(s) failed; surviving results were written \
             (see rows above)"
        );
        return StatusCode::CellsFailed.into();
    }
    StatusCode::Ok.into()
}
