//! `distfront-sweepd` — the persistent sweep daemon.
//!
//! ```text
//! distfront-sweepd [--addr HOST:PORT]
//!
//! Options:
//!   --addr A   listen address (default 127.0.0.1:4705; port 0 picks an
//!              ephemeral port, printed on the "listening" line)
//! ```
//!
//! Serves the newline-delimited protocol documented in
//! [`distfront::server::protocol`]: `JOB <jobspec>` submissions are
//! deduped against a content-addressed result cache and executed on two
//! class executors (interactive run-ahead, deferrable queue) sharing one
//! process-wide warm-start cache and trace store. Drive it with
//! `distfront-scenarios --connect ADDR` or raw `nc`.
//!
//! Exits 0 after a `SHUTDOWN` command drains both executors (std-only
//! builds cannot trap signals, so SIGTERM just kills the process — safe,
//! the caches are in-memory and rebuilt on demand). Usage errors exit
//! 64, bind failures 3, per the shared [`StatusCode`] vocabulary.

use std::process::ExitCode;

use distfront::job::StatusCode;
use distfront::server::SweepDaemon;

/// Default listen address: loopback only (the protocol is
/// unauthenticated), on an arbitrary fixed port.
const DEFAULT_ADDR: &str = "127.0.0.1:4705";

fn usage() -> &'static str {
    "usage: distfront-sweepd [--addr HOST:PORT]"
}

fn parse_addr(mut argv: std::env::Args) -> Result<String, String> {
    let mut addr = DEFAULT_ADDR.to_string();
    argv.next(); // program name
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--addr" => {
                addr = argv.next().ok_or("--addr needs a value")?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(addr)
}

fn main() -> ExitCode {
    let addr = match parse_addr(std::env::args()) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return StatusCode::Usage.into();
        }
    };
    let daemon = match SweepDaemon::bind(&addr) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return StatusCode::Io.into();
        }
    };
    match daemon.run() {
        Ok(()) => StatusCode::Ok.into(),
        Err(e) => {
            eprintln!("error: {e}");
            StatusCode::Io.into()
        }
    }
}
