//! `distfront-sweepd` — the persistent sweep daemon.
//!
//! ```text
//! distfront-sweepd [--addr HOST:PORT] [--state-dir DIR]
//!
//! Options:
//!   --addr A       listen address (default 127.0.0.1:4705; port 0 picks
//!                  an ephemeral port, printed on the "listening" line)
//!   --state-dir D  persist the result cache and trace store as segment
//!                  files under D, and load them back on startup
//! ```
//!
//! Serves the newline-delimited protocol documented in
//! [`distfront::server::protocol`]: `JOB <jobspec>` submissions are
//! deduped against a content-addressed result cache and executed on two
//! class executors (interactive run-ahead, deferrable queue) sharing one
//! process-wide warm-start cache and trace store. Drive it with
//! `distfront-scenarios --connect ADDR` or raw `nc`.
//!
//! With `--state-dir`, solved results and recorded traces are also
//! appended to crash-safe segment files and `fsync`ed *before* each
//! job's terminal frame is sent — so a daemon restarted on the same
//! directory serves resubmitted jobs as disk cache hits, byte-identical
//! to its previous life (see [`distfront::store`]).
//!
//! Exits 0 after a `SHUTDOWN` command drains both executors and settles
//! the store. std-only builds cannot trap signals, so SIGTERM just kills
//! the process — still safe: without a state dir the caches are
//! in-memory and rebuilt on demand, and with one, durability rides the
//! pre-acknowledgement flush, not the exit path. Usage errors exit 64,
//! bind failures 3, per the shared [`StatusCode`] vocabulary.

use std::process::ExitCode;

use distfront::job::StatusCode;
use distfront::server::SweepDaemon;

/// Default listen address: loopback only (the protocol is
/// unauthenticated), on an arbitrary fixed port.
const DEFAULT_ADDR: &str = "127.0.0.1:4705";

fn usage() -> &'static str {
    "usage: distfront-sweepd [--addr HOST:PORT] [--state-dir DIR]"
}

struct Args {
    addr: String,
    state_dir: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let mut args = Args {
        addr: DEFAULT_ADDR.to_string(),
        state_dir: None,
    };
    argv.next(); // program name
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--addr" => {
                args.addr = argv.next().ok_or("--addr needs a value")?;
            }
            "--state-dir" => {
                args.state_dir = Some(argv.next().ok_or("--state-dir needs a value")?);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return StatusCode::Usage.into();
        }
    };
    let daemon = match &args.state_dir {
        Some(dir) => SweepDaemon::bind_persistent(&args.addr, dir),
        None => SweepDaemon::bind(&args.addr),
    };
    let daemon = match daemon {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("error: binding {}: {e}", args.addr);
            return StatusCode::Io.into();
        }
    };
    match daemon.run() {
        Ok(()) => StatusCode::Ok.into(),
        Err(e) => {
            eprintln!("error: {e}");
            StatusCode::Io.into()
        }
    }
}
