//! The shared state stages hand each other.

use distfront_power::{BlockId, EnergyTable, Machine, PowerModel};
use distfront_thermal::{
    ExpPropagator, Floorplan, Integrator, PackageConfig, TemperatureTracker, ThermalNetwork,
    ThermalSolver,
};
use distfront_trace::record::FinalStats;
use distfront_trace::Workload;
use distfront_uarch::Simulator;

use super::replay::TraceRecorder;
use super::traits::{DtmPolicy, ThermalBackend};
use super::EngineError;
use crate::experiment::ExperimentConfig;
use crate::runner::BlockGroups;

/// Everything an experiment's stages share: the machine under test, the
/// coupled models, and the accumulators the final
/// [`AppResult`](crate::runner::AppResult) is assembled from.
///
/// Fields are public so custom [`Stage`](super::Stage) implementations can
/// reach whatever they need.
pub struct EngineCx<'a> {
    /// The experiment configuration.
    pub cfg: &'a ExperimentConfig,
    /// The workload under test (a single application or a phased
    /// composition).
    pub workload: &'a Workload,
    /// The machine shape (fixes the canonical block order).
    pub machine: Machine,
    /// The thermal package (supplies the ambient temperature).
    pub pkg: PackageConfig,
    /// Block groups the paper reports on.
    pub groups: BlockGroups,
    /// Un-gateable background power per block, in Watts.
    pub idle: Vec<f64>,
    /// Activity → Watts conversion.
    pub model: PowerModel,
    /// The timing simulator (reset by stages as needed).
    pub sim: Simulator,
    /// The thermal solver in use.
    pub thermal: Box<dyn ThermalBackend>,
    /// AbsMax/Average/AvgMax bookkeeping over the evaluation run.
    pub tracker: TemperatureTracker,
    /// Optional dynamic-thermal-management policy.
    pub dtm: Option<Box<dyn DtmPolicy>>,
    /// Nominal (pilot-measured) per-block power, set by the pilot stage.
    pub nominal: Option<Vec<f64>>,
    /// ∫ total power dt over the evaluation, in Joules.
    pub power_time_sum: f64,
    /// Evaluated wall-clock seconds.
    pub time_sum: f64,
    /// Whether the warm start was satisfied from a shared cache.
    pub warm_start_hit: bool,
    /// When present, the pilot and interval-loop stages append the run's
    /// activity here ([`CoupledEngine::run_recorded`](super::CoupledEngine)
    /// installs it). Recording only observes: a recorded run's result is
    /// bit-identical to an unrecorded one.
    pub recorder: Option<TraceRecorder>,
    /// Core-side final statistics injected by a replay (the replayed
    /// pipeline never runs `sim`, so the report reads these instead).
    pub replay_finals: Option<FinalStats>,
}

impl<'a> EngineCx<'a> {
    /// Builds the context for a configuration and workload, optionally
    /// overriding the thermal backend and DTM policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] when the configuration or
    /// the workload (every application profile it involves) fails
    /// validation.
    pub fn build(
        cfg: &'a ExperimentConfig,
        workload: &'a Workload,
        thermal: Option<Box<dyn ThermalBackend>>,
        dtm: Option<Box<dyn DtmPolicy>>,
    ) -> Result<Self, EngineError> {
        cfg.validate().map_err(EngineError::InvalidConfig)?;
        workload.validate().map_err(EngineError::InvalidConfig)?;
        let pc = &cfg.processor;
        let machine = Machine::new(
            pc.frontend_mode.partitions(),
            pc.backends,
            pc.trace_cache.physical_banks(),
        );
        let fp = Floorplan::for_machine(machine);
        let areas = fp.areas();
        let pkg = PackageConfig::paper();
        let model = PowerModel::new(machine, EnergyTable::nm65(), cfg.leakage, pc.frequency_hz);
        let groups = BlockGroups::for_machine(machine);

        // Background (clock-tree) power per block; trace-cache banks under
        // hopping are on only `logical/physical` of the time, so their
        // time-averaged background power scales accordingly.
        let duty = pc.trace_cache.logical_banks as f64 / pc.trace_cache.physical_banks() as f64;
        let idle: Vec<f64> = machine
            .blocks()
            .iter()
            .zip(&areas)
            .map(|(b, a)| {
                let d = if matches!(b, BlockId::TcBank(_)) {
                    duty
                } else {
                    1.0
                };
                a * cfg.idle_density_w_mm2 * d
            })
            .collect();

        // The default backend follows the configured integrator: the cached
        // matrix-exponential propagator for production runs, the RK4
        // reference when cross-checking. Both share the same LU-factored
        // steady-state path, so warm starts are bit-identical either way.
        let thermal = thermal.unwrap_or_else(|| {
            let net = ThermalNetwork::from_floorplan(&fp, &pkg);
            match cfg.integrator {
                Integrator::Rk4 => Box::new(ThermalSolver::new(net)) as Box<dyn ThermalBackend>,
                Integrator::Expm => Box::new(ExpPropagator::new(net)),
            }
        });
        let dtm = dtm.or_else(|| cfg.dtm.map(|spec| spec.build(machine)));

        Ok(EngineCx {
            cfg,
            workload,
            machine,
            pkg,
            groups,
            idle,
            model,
            sim: Simulator::with_workload(pc.clone(), workload, cfg.seed),
            thermal,
            tracker: TemperatureTracker::new(areas),
            dtm,
            nominal: None,
            power_time_sum: 0.0,
            time_sum: 0.0,
            warm_start_hit: false,
            recorder: None,
            replay_finals: None,
        })
    }

    /// The pilot-measured nominal power profile.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingPhase`] when the pilot has not run.
    pub fn nominal(&self) -> Result<&[f64], EngineError> {
        self.nominal.as_deref().ok_or(EngineError::MissingPhase(
            "pilot has not measured nominal power",
        ))
    }
}
