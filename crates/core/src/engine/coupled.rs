//! The engine that builds a context, runs a stage pipeline and finalizes
//! an [`AppResult`].

use std::sync::Arc;

use distfront_trace::AppProfile;

use super::context::EngineCx;
use super::stages::{IntervalLoopStage, PilotStage, WarmStartStage};
use super::sweep::WarmStartCache;
use super::traits::{DtmPolicy, Stage, ThermalBackend};
use super::EngineError;
use crate::experiment::ExperimentConfig;
use crate::runner::{AppResult, TempReport};

/// Couples the cycle simulator, power model and thermal solver for one
/// application under one configuration, as a pipeline of [`Stage`]s.
///
/// The default pipeline ([`PilotStage`] → [`WarmStartStage`] →
/// [`IntervalLoopStage`]) reproduces the paper's §4 methodology exactly;
/// every piece is swappable.
///
/// # Examples
///
/// ```
/// use distfront::engine::CoupledEngine;
/// use distfront::ExperimentConfig;
/// use distfront_trace::AppProfile;
///
/// let cfg = ExperimentConfig::baseline().with_uops(30_000);
/// let result = CoupledEngine::new(&cfg, &AppProfile::test_tiny())
///     .run()
///     .unwrap();
/// assert!(result.temps.processor.average_c > 45.0);
/// ```
pub struct CoupledEngine<'a> {
    cfg: &'a ExperimentConfig,
    profile: &'a AppProfile,
    warm_cache: Option<Arc<WarmStartCache>>,
    thermal: Option<Box<dyn ThermalBackend>>,
    dtm: Option<Box<dyn DtmPolicy>>,
    stages: Option<Vec<Box<dyn Stage>>>,
}

/// Per-run execution statistics: how a run executed, as opposed to what it
/// simulated (that is the [`AppResult`]). Collected even when the run
/// fails, so sweep reports can attribute cache behavior to error cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Whether the warm start was served from a shared [`WarmStartCache`].
    pub warm_start_hit: bool,
}

impl<'a> CoupledEngine<'a> {
    /// An engine with the default stage pipeline.
    pub fn new(cfg: &'a ExperimentConfig, profile: &'a AppProfile) -> Self {
        CoupledEngine {
            cfg,
            profile,
            warm_cache: None,
            thermal: None,
            dtm: None,
            stages: None,
        }
    }

    /// Shares warm-start state with other engines through `cache`.
    ///
    /// The cache stores the default
    /// [`ThermalSolver`](distfront_thermal::ThermalSolver)'s node state, keyed
    /// by (machine shape, leakage model, nominal power); when a custom
    /// thermal backend is substituted via [`with_thermal`](Self::with_thermal)
    /// the cache is ignored, since another backend's node layout need not
    /// match.
    #[must_use]
    pub fn with_warm_cache(mut self, cache: Arc<WarmStartCache>) -> Self {
        self.warm_cache = Some(cache);
        self
    }

    /// Substitutes an alternative thermal solver.
    ///
    /// The backend must model the same machine's block count.
    #[must_use]
    pub fn with_thermal(mut self, thermal: Box<dyn ThermalBackend>) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// Substitutes a dynamic-thermal-management policy (overriding the
    /// configuration's [`dtm`](ExperimentConfig::dtm) field).
    #[must_use]
    pub fn with_dtm(mut self, dtm: Box<dyn DtmPolicy>) -> Self {
        self.dtm = Some(dtm);
        self
    }

    /// Replaces the stage pipeline entirely.
    #[must_use]
    pub fn with_stages(mut self, stages: Vec<Box<dyn Stage>>) -> Self {
        self.stages = Some(stages);
        self
    }

    /// The default pilot → warm-start → interval-loop pipeline, with the
    /// warm start optionally backed by a shared cache.
    pub fn default_stages(cache: Option<Arc<WarmStartCache>>) -> Vec<Box<dyn Stage>> {
        let warm = match cache {
            Some(c) => WarmStartStage::with_cache(c),
            None => WarmStartStage::new(),
        };
        vec![
            Box::new(PilotStage),
            Box::new(warm),
            Box::new(IntervalLoopStage),
        ]
    }

    /// Runs the pipeline to completion.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, a stage's
    /// prerequisites are missing, or an iterative phase fails to converge.
    pub fn run(self) -> Result<AppResult, EngineError> {
        self.run_with_stats().0
    }

    /// Runs the pipeline to completion and also reports [`RunStats`].
    ///
    /// The stats are returned alongside — not inside — the result, so
    /// execution metadata is available for failed runs too (the sweep
    /// executor's per-cell reports want both).
    pub fn run_with_stats(self) -> (Result<AppResult, EngineError>, RunStats) {
        // A cached warm start is the default solver's node vector; never
        // restore it into a custom backend with its own node layout.
        let warm_cache = if self.thermal.is_some() {
            None
        } else {
            self.warm_cache
        };
        let mut cx = match EngineCx::build(self.cfg, self.profile, self.thermal, self.dtm) {
            Ok(cx) => cx,
            Err(e) => return (Err(e), RunStats::default()),
        };
        let mut stages = self
            .stages
            .unwrap_or_else(|| Self::default_stages(warm_cache));
        for stage in &mut stages {
            if let Err(e) = stage.run(&mut cx) {
                let stats = RunStats {
                    warm_start_hit: cx.warm_start_hit,
                };
                return (Err(e), stats);
            }
        }
        let stats = RunStats {
            warm_start_hit: cx.warm_start_hit,
        };
        (finish(&cx), stats)
    }
}

/// Assembles the final [`AppResult`] from the context the stages left.
///
/// Fails with [`EngineError::NoData`] when the stages closed no
/// measurement intervals (a custom pipeline that skipped the interval
/// loop): the temperature metrics would be undefined.
fn finish(cx: &EngineCx<'_>) -> Result<AppResult, EngineError> {
    let cycles = cx.sim.current_cycle();
    let uops = cx.sim.total_committed();
    let g = |idx: &[usize]| {
        cx.tracker.try_group_metrics(idx).ok_or(EngineError::NoData(
            "the pipeline closed no measurement intervals",
        ))
    };
    Ok(AppResult {
        app: cx.profile.name,
        cycles,
        uops,
        ipc: uops as f64 / cycles.max(1) as f64,
        cpi: cycles as f64 / uops.max(1) as f64,
        tc_hit_rate: cx.sim.tc_hit_rate(),
        mispredict_rate: cx.sim.mispredict_rate(),
        avg_power_w: cx.power_time_sum / cx.time_sum.max(1e-12),
        wall_time_s: cx.time_sum,
        emergencies: cx.dtm.as_ref().map_or(0, |c| c.triggers()),
        throttled_intervals: cx.dtm.as_ref().map_or(0, |c| c.throttled_intervals()),
        over_limit_s: cx
            .tracker
            .time_above(cx.model.leakage_model().emergency_c, &cx.groups.processor),
        temps: TempReport {
            rob: g(&cx.groups.rob)?,
            rat: g(&cx.groups.rat)?,
            trace_cache: g(&cx.groups.trace_cache)?,
            frontend: g(&cx.groups.frontend)?,
            backend: g(&cx.groups.backend)?,
            ul2: g(&cx.groups.ul2)?,
            processor: g(&cx.groups.processor)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app;

    #[test]
    fn explicit_stage_wiring_matches_default_pipeline() {
        // Two different construction paths — the implicit default pipeline
        // (what `run_app` uses) and an explicitly assembled stage list —
        // must produce the same result, so `default_stages` and `run`
        // cannot drift apart.
        let cfg = ExperimentConfig::baseline().with_uops(60_000);
        let app = AppProfile::test_tiny();
        let explicit = CoupledEngine::new(&cfg, &app)
            .with_stages(CoupledEngine::default_stages(None))
            .run()
            .unwrap();
        let implicit = run_app(&cfg, &app);
        assert_eq!(explicit, implicit);
        // And the run is physically sane, not just self-consistent.
        assert!(implicit.uops >= 60_000);
        assert!(implicit.temps.processor.average_c > 45.0);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = ExperimentConfig::baseline();
        cfg.uops_per_app = 0;
        let err = CoupledEngine::new(&cfg, &AppProfile::test_tiny())
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn warm_start_without_pilot_reports_missing_phase() {
        let cfg = ExperimentConfig::baseline().with_uops(30_000);
        let app = AppProfile::test_tiny();
        let err = CoupledEngine::new(&cfg, &app)
            .with_stages(vec![Box::new(WarmStartStage::new())])
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingPhase(_)));
    }

    #[test]
    fn custom_stage_pipeline_runs() {
        struct Nop;
        impl Stage for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn run(&mut self, _cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
                Ok(())
            }
        }
        let cfg = ExperimentConfig::baseline().with_uops(30_000);
        let app = AppProfile::test_tiny();
        let mut stages = CoupledEngine::default_stages(None);
        stages.insert(0, Box::new(Nop));
        let r = CoupledEngine::new(&cfg, &app)
            .with_stages(stages)
            .run()
            .unwrap();
        assert_eq!(r, run_app(&cfg, &app));
    }

    #[test]
    fn warm_cache_is_ignored_with_a_custom_thermal_backend() {
        use distfront_power::Machine;
        use distfront_thermal::{
            Floorplan, Integrator, PackageConfig, ThermalNetwork, ThermalSolver,
        };

        // RK4 on both sides: the custom backend below is a ThermalSolver,
        // so the default engine must integrate the same way to compare.
        let cfg = ExperimentConfig::baseline()
            .with_uops(30_000)
            .with_integrator(Integrator::Rk4);
        let app = AppProfile::test_tiny();
        let pc = &cfg.processor;
        let machine = Machine::new(
            pc.frontend_mode.partitions(),
            pc.backends,
            pc.trace_cache.physical_banks(),
        );
        let fp = Floorplan::for_machine(machine);
        let solver =
            ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()));
        let cache = Arc::new(WarmStartCache::new());
        let r = CoupledEngine::new(&cfg, &app)
            .with_thermal(Box::new(solver))
            .with_warm_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        // The cache must not capture (or serve) another backend's state.
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
        // A custom backend identical to the default gives the same result.
        assert_eq!(r, run_app(&cfg, &app));
    }

    #[test]
    fn dtm_policy_plugs_in() {
        use crate::emergency::{EmergencyController, EmergencyPolicy};
        let cfg = ExperimentConfig::baseline().with_uops(40_000);
        let app = AppProfile::test_tiny();
        // Threshold below ambient: every interval throttles.
        let ctrl = EmergencyController::new(EmergencyPolicy::with_threshold(40.0));
        let r = CoupledEngine::new(&cfg, &app)
            .with_dtm(Box::new(ctrl))
            .run()
            .unwrap();
        assert!(r.emergencies >= 1);
        assert!(r.throttled_intervals >= 1);
    }
}
