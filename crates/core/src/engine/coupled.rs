//! The engine that builds a context, runs a stage pipeline and finalizes
//! an [`AppResult`].

use std::sync::Arc;

use distfront_trace::record::{ActivityTrace, FinalStats};
use distfront_trace::{AppProfile, Workload};

use super::context::EngineCx;
use super::replay::{ReplayBackend, TraceRecorder};
use super::stages::{IntervalLoopStage, PilotStage, WarmStartStage};
use super::sweep::WarmStartCache;
use super::traits::{DtmPolicy, Stage, ThermalBackend};
use super::EngineError;
use crate::experiment::ExperimentConfig;
use crate::runner::{AppResult, TempReport};

/// Couples the cycle simulator, power model and thermal solver for one
/// workload under one configuration, as a pipeline of [`Stage`]s.
///
/// The default pipeline ([`PilotStage`] → [`WarmStartStage`] →
/// [`IntervalLoopStage`]) reproduces the paper's §4 methodology exactly;
/// every piece is swappable. [`run_recorded`](Self::run_recorded) captures
/// the run as an [`ActivityTrace`]; [`with_replay`](Self::with_replay)
/// substitutes the [`ReplayBackend`] pipeline that drives the
/// power/thermal/DTM loop from such a trace without re-simulating the
/// core.
///
/// # Examples
///
/// ```
/// use distfront::engine::CoupledEngine;
/// use distfront::ExperimentConfig;
/// use distfront_trace::AppProfile;
///
/// let cfg = ExperimentConfig::baseline().with_uops(30_000);
/// let result = CoupledEngine::new(&cfg, &AppProfile::test_tiny())
///     .run()
///     .unwrap();
/// assert!(result.temps.processor.average_c > 45.0);
/// ```
pub struct CoupledEngine<'a> {
    cfg: &'a ExperimentConfig,
    workload: Workload,
    warm_cache: Option<Arc<WarmStartCache>>,
    thermal: Option<Box<dyn ThermalBackend>>,
    dtm: Option<Box<dyn DtmPolicy>>,
    stages: Option<Vec<Box<dyn Stage>>>,
    replay: Option<Arc<ActivityTrace>>,
}

/// Per-run execution statistics: how a run executed, as opposed to what it
/// simulated (that is the [`AppResult`]). Collected even when the run
/// fails, so sweep reports can attribute cache behavior to error cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Whether the warm start was served from a shared [`WarmStartCache`].
    pub warm_start_hit: bool,
    /// Whether the run was driven from a recorded trace instead of the
    /// live core simulator.
    pub replayed: bool,
}

impl<'a> CoupledEngine<'a> {
    /// An engine with the default stage pipeline over a single
    /// application profile.
    pub fn new(cfg: &'a ExperimentConfig, profile: &AppProfile) -> Self {
        Self::for_workload(cfg, Workload::Single(*profile))
    }

    /// An engine with the default stage pipeline over any [`Workload`]
    /// (single-profile or phased).
    pub fn for_workload(cfg: &'a ExperimentConfig, workload: Workload) -> Self {
        CoupledEngine {
            cfg,
            workload,
            warm_cache: None,
            thermal: None,
            dtm: None,
            stages: None,
            replay: None,
        }
    }

    /// Shares warm-start state with other engines through `cache`.
    ///
    /// The cache stores the default
    /// [`ThermalSolver`](distfront_thermal::ThermalSolver)'s node state, keyed
    /// by (machine shape, leakage model, nominal power); when a custom
    /// thermal backend is substituted via [`with_thermal`](Self::with_thermal)
    /// the cache is ignored, since another backend's node layout need not
    /// match.
    #[must_use]
    pub fn with_warm_cache(mut self, cache: Arc<WarmStartCache>) -> Self {
        self.warm_cache = Some(cache);
        self
    }

    /// Substitutes an alternative thermal solver.
    ///
    /// The backend must model the same machine's block count.
    #[must_use]
    pub fn with_thermal(mut self, thermal: Box<dyn ThermalBackend>) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// Substitutes a dynamic-thermal-management policy (overriding the
    /// configuration's [`dtm`](ExperimentConfig::dtm) field).
    #[must_use]
    pub fn with_dtm(mut self, dtm: Box<dyn DtmPolicy>) -> Self {
        self.dtm = Some(dtm);
        self
    }

    /// Replaces the stage pipeline entirely (takes precedence over
    /// [`with_replay`](Self::with_replay)).
    #[must_use]
    pub fn with_stages(mut self, stages: Vec<Box<dyn Stage>>) -> Self {
        self.stages = Some(stages);
        self
    }

    /// Drives the run from a recorded trace through the [`ReplayBackend`]
    /// pipeline instead of the live core simulator.
    ///
    /// The trace must have been recorded for the same core-side
    /// configuration and workload, and the DTM policy (if any) must act
    /// purely at the power level; [`run`](Self::run) fails with
    /// [`EngineError::ReplayIncompatible`] otherwise.
    #[must_use]
    pub fn with_replay(mut self, trace: Arc<ActivityTrace>) -> Self {
        self.replay = Some(trace);
        self
    }

    /// The default pilot → warm-start → interval-loop pipeline, with the
    /// warm start optionally backed by a shared cache.
    pub fn default_stages(cache: Option<Arc<WarmStartCache>>) -> Vec<Box<dyn Stage>> {
        let warm = match cache {
            Some(c) => WarmStartStage::with_cache(c),
            None => WarmStartStage::new(),
        };
        vec![
            Box::new(PilotStage),
            Box::new(warm),
            Box::new(IntervalLoopStage),
        ]
    }

    /// Runs the pipeline to completion.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, a stage's
    /// prerequisites are missing, an iterative phase fails to converge, or
    /// a requested replay is incompatible.
    pub fn run(self) -> Result<AppResult, EngineError> {
        self.run_with_stats().0
    }

    /// Runs the pipeline to completion and also reports [`RunStats`].
    ///
    /// The stats are returned alongside — not inside — the result, so
    /// execution metadata is available for failed runs too (the sweep
    /// executor's per-cell reports want both).
    pub fn run_with_stats(self) -> (Result<AppResult, EngineError>, RunStats) {
        let (result, stats, _) = self.execute(false);
        (result, stats)
    }

    /// Runs the pipeline to completion while recording the run as an
    /// [`ActivityTrace`], plus [`RunStats`]. The recording taps only
    /// observe: the returned [`AppResult`] is bit-identical to
    /// [`run`](Self::run)'s.
    ///
    /// Recording a replayed run is refused (the replay pipeline never
    /// produces fresh activity), as is recording through a fully custom
    /// stage list that bypasses the default taps.
    pub fn run_recorded(self) -> (Result<(AppResult, ActivityTrace), EngineError>, RunStats) {
        if self.replay.is_some() || self.stages.is_some() {
            return (
                Err(EngineError::InvalidConfig(
                    "recording requires the default live pipeline".into(),
                )),
                RunStats::default(),
            );
        }
        let (result, stats, trace) = self.execute(true);
        let result = result.map(|r| (r, trace.expect("recording pipeline produced a trace")));
        (result, stats)
    }

    fn execute(
        self,
        record: bool,
    ) -> (
        Result<AppResult, EngineError>,
        RunStats,
        Option<ActivityTrace>,
    ) {
        // A cached warm start is the default solver's node vector; never
        // restore it into a custom backend with its own node layout.
        let warm_cache = if self.thermal.is_some() {
            None
        } else {
            self.warm_cache
        };
        let workload = self.workload;
        let replay = match (&self.stages, self.replay) {
            // An explicit stage list wins; replay otherwise, validated
            // before any model is built.
            (None, Some(trace)) => {
                if let Err(e) = ReplayBackend::validate(self.cfg, &workload, &trace) {
                    return (Err(e), RunStats::default(), None);
                }
                Some(trace)
            }
            _ => None,
        };
        // A policy installed via with_dtm is an arbitrary boxed object the
        // recorder cannot prove power-level-only; it taints the recording
        // as not replay-safe.
        let custom_dtm = self.dtm.is_some();
        let mut cx = match EngineCx::build(self.cfg, &workload, self.thermal, self.dtm) {
            Ok(cx) => cx,
            Err(e) => return (Err(e), RunStats::default(), None),
        };
        if record {
            cx.recorder = Some(TraceRecorder::new(self.cfg, &workload, custom_dtm));
        }
        let replayed = replay.is_some();
        let mut stages = match (self.stages, replay) {
            (Some(stages), _) => stages,
            (None, Some(trace)) => ReplayBackend::stages(trace, warm_cache),
            (None, None) => Self::default_stages(warm_cache),
        };
        for stage in &mut stages {
            if let Err(e) = stage.run(&mut cx) {
                let stats = RunStats {
                    warm_start_hit: cx.warm_start_hit,
                    replayed,
                };
                return (Err(e), stats, None);
            }
        }
        let stats = RunStats {
            warm_start_hit: cx.warm_start_hit,
            replayed,
        };
        let trace = cx.recorder.take().map(|rec| {
            rec.finish(FinalStats {
                cycles: cx.sim.current_cycle(),
                uops: cx.sim.total_committed(),
                tc_hit_rate: cx.sim.tc_hit_rate(),
                mispredict_rate: cx.sim.mispredict_rate(),
            })
        });
        (finish(&cx), stats, trace)
    }
}

/// Assembles the final [`AppResult`] from the context the stages left.
///
/// Core-side statistics come from the simulator — or, on a replay, from
/// the trace's recorded [`FinalStats`] (the replay pipeline never runs the
/// simulator). Fails with [`EngineError::NoData`] when the stages closed
/// no measurement intervals (a custom pipeline that skipped the interval
/// loop): the temperature metrics would be undefined. Shared with the
/// batched cohort scheduler, which finalizes each lane's context through
/// the exact same assembly.
pub(super) fn finish(cx: &EngineCx<'_>) -> Result<AppResult, EngineError> {
    let (cycles, uops, tc_hit_rate, mispredict_rate) = match &cx.replay_finals {
        Some(f) => (f.cycles, f.uops, f.tc_hit_rate, f.mispredict_rate),
        None => (
            cx.sim.current_cycle(),
            cx.sim.total_committed(),
            cx.sim.tc_hit_rate(),
            cx.sim.mispredict_rate(),
        ),
    };
    let g = |idx: &[usize]| {
        cx.tracker.try_group_metrics(idx).ok_or(EngineError::NoData(
            "the pipeline closed no measurement intervals",
        ))
    };
    Ok(AppResult {
        app: cx.workload.name(),
        cycles,
        uops,
        ipc: uops as f64 / cycles.max(1) as f64,
        cpi: cycles as f64 / uops.max(1) as f64,
        tc_hit_rate,
        mispredict_rate,
        avg_power_w: cx.power_time_sum / cx.time_sum.max(1e-12),
        wall_time_s: cx.time_sum,
        emergencies: cx.dtm.as_ref().map_or(0, |c| c.triggers()),
        throttled_intervals: cx.dtm.as_ref().map_or(0, |c| c.throttled_intervals()),
        over_limit_s: cx
            .tracker
            .time_above(cx.model.leakage_model().emergency_c, &cx.groups.processor),
        temps: TempReport {
            rob: g(&cx.groups.rob)?,
            rat: g(&cx.groups.rat)?,
            trace_cache: g(&cx.groups.trace_cache)?,
            frontend: g(&cx.groups.frontend)?,
            backend: g(&cx.groups.backend)?,
            ul2: g(&cx.groups.ul2)?,
            processor: g(&cx.groups.processor)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app;

    #[test]
    fn explicit_stage_wiring_matches_default_pipeline() {
        // Two different construction paths — the implicit default pipeline
        // (what `run_app` uses) and an explicitly assembled stage list —
        // must produce the same result, so `default_stages` and `run`
        // cannot drift apart.
        let cfg = ExperimentConfig::baseline().with_uops(60_000);
        let app = AppProfile::test_tiny();
        let explicit = CoupledEngine::new(&cfg, &app)
            .with_stages(CoupledEngine::default_stages(None))
            .run()
            .unwrap();
        let implicit = run_app(&cfg, &app);
        assert_eq!(explicit, implicit);
        // And the run is physically sane, not just self-consistent.
        assert!(implicit.uops >= 60_000);
        assert!(implicit.temps.processor.average_c > 45.0);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = ExperimentConfig::baseline();
        cfg.uops_per_app = 0;
        let err = CoupledEngine::new(&cfg, &AppProfile::test_tiny())
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn invalid_workload_profile_is_an_error_not_nonsense() {
        // AppProfile::validate is on the engine path: a profile violating
        // its invariants surfaces as a config error on every entry point
        // instead of silently simulating garbage.
        let cfg = ExperimentConfig::baseline().with_uops(30_000);
        let mut bad = AppProfile::test_tiny();
        bad.load_frac = 1.4;
        let err = CoupledEngine::new(&cfg, &bad).run().unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)), "{err:?}");
        let err = crate::runner::try_run_app(&cfg, &bad).unwrap_err();
        assert!(err.to_string().contains("mix fractions"), "{err}");
    }

    #[test]
    fn warm_start_without_pilot_reports_missing_phase() {
        let cfg = ExperimentConfig::baseline().with_uops(30_000);
        let app = AppProfile::test_tiny();
        let err = CoupledEngine::new(&cfg, &app)
            .with_stages(vec![Box::new(WarmStartStage::new())])
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingPhase(_)));
    }

    #[test]
    fn custom_stage_pipeline_runs() {
        struct Nop;
        impl Stage for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn run(&mut self, _cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
                Ok(())
            }
        }
        let cfg = ExperimentConfig::baseline().with_uops(30_000);
        let app = AppProfile::test_tiny();
        let mut stages = CoupledEngine::default_stages(None);
        stages.insert(0, Box::new(Nop));
        let r = CoupledEngine::new(&cfg, &app)
            .with_stages(stages)
            .run()
            .unwrap();
        assert_eq!(r, run_app(&cfg, &app));
    }

    #[test]
    fn warm_cache_is_ignored_with_a_custom_thermal_backend() {
        use distfront_power::Machine;
        use distfront_thermal::{
            Floorplan, Integrator, PackageConfig, ThermalNetwork, ThermalSolver,
        };

        // RK4 on both sides: the custom backend below is a ThermalSolver,
        // so the default engine must integrate the same way to compare.
        let cfg = ExperimentConfig::baseline()
            .with_uops(30_000)
            .with_integrator(Integrator::Rk4);
        let app = AppProfile::test_tiny();
        let pc = &cfg.processor;
        let machine = Machine::new(
            pc.frontend_mode.partitions(),
            pc.backends,
            pc.trace_cache.physical_banks(),
        );
        let fp = Floorplan::for_machine(machine);
        let solver =
            ThermalSolver::new(ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper()));
        let cache = Arc::new(WarmStartCache::new());
        let r = CoupledEngine::new(&cfg, &app)
            .with_thermal(Box::new(solver))
            .with_warm_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        // The cache must not capture (or serve) another backend's state.
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
        // A custom backend identical to the default gives the same result.
        assert_eq!(r, run_app(&cfg, &app));
    }

    #[test]
    fn dtm_policy_plugs_in() {
        use crate::emergency::{EmergencyController, EmergencyPolicy};
        let cfg = ExperimentConfig::baseline().with_uops(40_000);
        let app = AppProfile::test_tiny();
        // Threshold below ambient: every interval throttles.
        let ctrl = EmergencyController::new(EmergencyPolicy::with_threshold(40.0));
        let r = CoupledEngine::new(&cfg, &app)
            .with_dtm(Box::new(ctrl))
            .run()
            .unwrap();
        assert!(r.emergencies >= 1);
        assert!(r.throttled_intervals >= 1);
    }

    #[test]
    fn recording_is_invisible_and_replay_reproduces_the_run() {
        let cfg = ExperimentConfig::baseline().with_uops(40_000);
        let app = AppProfile::test_tiny();
        let plain = run_app(&cfg, &app);
        let (recorded, stats) = CoupledEngine::new(&cfg, &app).run_recorded();
        let (result, trace) = recorded.unwrap();
        assert!(!stats.replayed);
        assert_eq!(result, plain, "recording changed the run");
        assert_eq!(trace.meta.workload, "tiny");
        assert!(!trace.intervals.is_empty());
        assert!(trace.intervals.last().unwrap().points[0].done);

        let (replayed, stats) = CoupledEngine::new(&cfg, &app)
            .with_replay(Arc::new(trace))
            .run_with_stats();
        assert!(stats.replayed);
        assert_eq!(replayed.unwrap(), plain, "replay diverged from live");
    }

    #[test]
    fn replay_rejects_core_side_mismatches() {
        let cfg = ExperimentConfig::baseline().with_uops(40_000);
        let app = AppProfile::test_tiny();
        let (recorded, _) = CoupledEngine::new(&cfg, &app).run_recorded();
        let trace = Arc::new(recorded.unwrap().1);

        // Different run length.
        let longer = ExperimentConfig::baseline().with_uops(80_000);
        let err = CoupledEngine::new(&longer, &app)
            .with_replay(Arc::clone(&trace))
            .run()
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::ReplayIncompatible(m) if m.contains("uops_per_app")),
            "{err}"
        );

        // Different workload.
        let gzip = *AppProfile::by_name("gzip").unwrap();
        let err = CoupledEngine::new(&cfg, &gzip)
            .with_replay(Arc::clone(&trace))
            .run()
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::ReplayIncompatible(m) if m.contains("workload")),
            "{err}"
        );

        // A core-perturbing DTM policy names itself in the error.
        use crate::dtm::DvfsPolicy;
        use crate::experiment::DtmSpec;
        let dvfs = ExperimentConfig::baseline()
            .with_uops(40_000)
            .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::paper_limit()));
        let err = CoupledEngine::new(&dvfs, &app)
            .with_replay(Arc::clone(&trace))
            .run()
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::ReplayIncompatible(m) if m.contains("global-dvfs")),
            "{err}"
        );

        // Recording a replay makes no sense.
        let (res, _) = CoupledEngine::new(&cfg, &app)
            .with_replay(trace)
            .run_recorded();
        assert!(matches!(res, Err(EngineError::InvalidConfig(_))));
    }
}
