//! Trace record/replay: capturing a live run's per-interval activity and
//! driving the power/thermal/DTM loop from the recording, without
//! re-simulating the core.
//!
//! * [`TraceRecorder`] is the tap the default stages write into when
//!   [`CoupledEngine::run_recorded`](super::CoupledEngine::run_recorded)
//!   installs it: the pilot's merged activity, one record per evaluation
//!   interval — a **family of operating points** (DFAT v2), each a
//!   flattened counter row plus done flag — and the run's final core
//!   statistics. The live stream lands on the family point matching the
//!   interval's live DTM action; every other family point is captured by
//!   [`Simulator::probe_interval`](distfront_uarch::Simulator::probe_interval)
//!   on a throwaway fork, so recording only observes — a recorded run's
//!   [`AppResult`](crate::runner::AppResult) is bit-identical to an
//!   unrecorded one.
//! * [`ReplayBackend`] is the uarch-free stage pipeline that consumes a
//!   recorded [`ActivityTrace`]: a replay pilot re-derives the nominal
//!   power bit-exactly from the recorded pilot activity (so warm starts —
//!   and the shared [`WarmStartCache`] keys — are identical to live), the
//!   regular [`WarmStartStage`] runs unchanged, and the replay loop feeds
//!   each recorded interval through the same power/thermal/DTM arithmetic
//!   as the live interval loop, selecting the recorded operating point
//!   that matches the policy's [`DtmAction`] for that interval.
//!
//! # The capability model
//!
//! A trace *declares* what it can faithfully replay: its recorded point
//! family (see [`TraceMeta::points`]) is its capability set. Validation
//! derives the points the target configuration's DTM policy can demand
//! ([`ExperimentConfig::replay_points`]) and requires the family to cover
//! them, naming the missing capability — there is no blanket per-policy
//! rejection. A legacy v1 trace decodes with a `[Nominal]` family, so it
//! still replays power-level DTM (none / emergency throttle) and is
//! rejected, with the reason, for anything core-perturbing.
//!
//! # When replay is exact
//!
//! Replay is **byte-identical** to the live run whenever every interval's
//! replayed decision selects the point the live run actually took — in
//! particular, always, when replaying the recording configuration itself:
//! the replayed activity equals the live activity interval by interval, so
//! power, temperatures and the (deterministic) controller's decisions
//! reproduce by induction, and each decision selects the live point again.
//! This is the CI-verified path for the whole DTM ladder, DVFS, fetch
//! gating and migration included. When a replay *diverges* (a different
//! trip point, say, engages DVFS on an interval the recording ran
//! nominal), the selected variant point is the core's exact one-interval
//! response from the recorded trajectory's pipeline state; over the
//! remaining run it is a first-order approximation, because the recording
//! resumes from its own history rather than the divergent one. One further
//! deliberate approximation remains as in v1: a thermally-biased bank
//! mapping reacts to the replayed temperature trajectory, whose
//! bank-mapping decisions are baked into the recording.

use std::sync::Arc;

use distfront_power::{BlockId, Machine, OperatingPoint};
use distfront_trace::record::{
    ActivityTrace, FinalStats, IntervalRecord, PointKey, PointRecord, TraceMeta, TraceShape,
    TRACE_FORMAT_V1, TRACE_FORMAT_VERSION,
};
use distfront_trace::Workload;
use distfront_uarch::{record as tap, ActivityCounters, IntervalReport};

use super::stages::WarmStartStage;
use super::sweep::WarmStartCache;
use super::traits::{DtmAction, Stage};
use super::{EngineCx, EngineError};
use crate::experiment::ExperimentConfig;

/// Collects a live run's activity into an [`ActivityTrace`].
///
/// Installed in [`EngineCx::recorder`] by
/// [`CoupledEngine::run_recorded`](super::CoupledEngine::run_recorded);
/// the pilot and interval-loop stages feed it at each interval boundary.
#[derive(Debug)]
pub struct TraceRecorder {
    meta: TraceMeta,
    pilot: Vec<u64>,
    intervals: Vec<IntervalRecord>,
}

impl TraceRecorder {
    /// A recorder for a run of `workload` under `cfg`. The recorded point
    /// family is [`ExperimentConfig::replay_points`] — nominal plus
    /// whatever the configured DTM policy can engage.
    ///
    /// `custom_dtm` flags a DTM policy installed through
    /// [`CoupledEngine::with_dtm`](super::CoupledEngine::with_dtm) rather
    /// than the configuration's [`DtmSpec`](crate::experiment::DtmSpec):
    /// an arbitrary boxed policy's actions cannot be derived from the
    /// configuration, so such recordings capture the live stream only and
    /// are conservatively marked not replay-safe.
    pub fn new(cfg: &ExperimentConfig, workload: &Workload, custom_dtm: bool) -> Self {
        let pc = &cfg.processor;
        let points = if custom_dtm {
            vec![PointKey::Nominal]
        } else {
            cfg.replay_points()
        };
        TraceRecorder {
            meta: TraceMeta {
                version: TRACE_FORMAT_VERSION,
                workload: workload.name().to_string(),
                config: cfg.name.to_string(),
                processor_fingerprint: processor_fingerprint(cfg),
                seed: cfg.seed,
                uops_per_app: cfg.uops_per_app,
                interval_cycles: cfg.interval_cycles,
                shape: TraceShape {
                    partitions: pc.frontend_mode.partitions() as u32,
                    backends: pc.backends as u32,
                    tc_banks: pc.trace_cache.physical_banks() as u32,
                },
                hop: cfg.hop,
                replay_safe: !custom_dtm,
                dtm: cfg
                    .dtm
                    .as_ref()
                    .map(|d| d.name().to_string())
                    .or_else(|| custom_dtm.then(|| "custom".to_string())),
                points,
            },
            pilot: Vec::new(),
            intervals: Vec::new(),
        }
    }

    /// The operating-point family this recorder captures per interval.
    pub fn family(&self) -> &[PointKey] {
        &self.meta.points
    }

    /// Records the pilot phase's merged activity.
    pub fn record_pilot(&mut self, act: &ActivityCounters) {
        self.pilot = tap::flatten(act);
    }

    /// Records one evaluation interval from one report per family point,
    /// in [`family`](Self::family) order (the live step's report at the
    /// live action's point, fork probes elsewhere).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when the report count mismatches the family.
    pub fn record_interval(&mut self, points: &[&IntervalReport], gated_bank: Option<u8>) {
        debug_assert_eq!(points.len(), self.meta.points.len());
        self.intervals.push(IntervalRecord {
            points: points
                .iter()
                .map(|r| PointRecord {
                    counters: tap::flatten(&r.activity),
                    done: r.done,
                })
                .collect(),
            gated_bank,
        });
    }

    /// Finalizes the trace with the run's core statistics.
    pub fn finish(self, finals: FinalStats) -> ActivityTrace {
        ActivityTrace {
            meta: self.meta,
            pilot: self.pilot,
            intervals: self.intervals,
            finals,
        }
    }
}

/// The uarch-free replay pipeline over a recorded [`ActivityTrace`].
///
/// Use through
/// [`CoupledEngine::with_replay`](super::CoupledEngine::with_replay) (or a
/// replaying [`SweepRunner`](super::SweepRunner)); [`ReplayBackend::stages`]
/// exposes the raw stage list for custom pipelines.
#[derive(Debug)]
pub struct ReplayBackend;

impl ReplayBackend {
    /// Checks that replaying `trace` for (`cfg`, `workload`) is faithful.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ReplayIncompatible`] naming the first
    /// mismatch: an unsupported trace version, a core-side configuration
    /// difference (workload, seed, run length, interval, machine shape,
    /// hopping), a tainted (custom-DTM) recording, a required operating
    /// point the trace's capability set does not cover, or an empty
    /// recording.
    pub fn validate(
        cfg: &ExperimentConfig,
        workload: &Workload,
        trace: &ActivityTrace,
    ) -> Result<(), EngineError> {
        let m = &trace.meta;
        let fail = |msg: String| Err(EngineError::ReplayIncompatible(msg));
        if m.version < TRACE_FORMAT_V1 || m.version > TRACE_FORMAT_VERSION {
            return fail(format!(
                "trace format version {} (this build replays {TRACE_FORMAT_V1} \
                 through {TRACE_FORMAT_VERSION})",
                m.version
            ));
        }
        if m.workload != workload.name() {
            return fail(format!(
                "trace records workload {}, run wants {}",
                m.workload,
                workload.name()
            ));
        }
        // The fingerprint covers the *whole* core side: two processor
        // configurations sharing shape/seed/run-length but differing
        // anywhere else (say, only in the trace-cache mapping policy)
        // produce different activity streams and must never stand in for
        // each other.
        if m.processor_fingerprint != processor_fingerprint(cfg) {
            return fail(format!(
                "trace was recorded under processor configuration {} \
                 (fingerprint {:#018x}), which differs from this run's \
                 ({:#018x})",
                m.config,
                m.processor_fingerprint,
                processor_fingerprint(cfg)
            ));
        }
        let pc = &cfg.processor;
        let shape = TraceShape {
            partitions: pc.frontend_mode.partitions() as u32,
            backends: pc.backends as u32,
            tc_banks: pc.trace_cache.physical_banks() as u32,
        };
        if m.shape != shape {
            return fail(format!(
                "trace machine shape {:?} differs from the configuration's {shape:?}",
                m.shape
            ));
        }
        for (field, recorded, wanted) in [
            ("seed", m.seed, cfg.seed),
            ("uops_per_app", m.uops_per_app, cfg.uops_per_app),
            ("interval_cycles", m.interval_cycles, cfg.interval_cycles),
        ] {
            if recorded != wanted {
                return fail(format!("trace {field} {recorded} differs from {wanted}"));
            }
        }
        if m.hop != cfg.hop {
            return fail(format!(
                "trace records hop={}, configuration has hop={}",
                m.hop, cfg.hop
            ));
        }
        if !m.replay_safe {
            return fail(format!(
                "trace was recorded under the unverifiable custom DTM policy {} and \
                 cannot prove any operating point",
                m.dtm.as_deref().unwrap_or("<unknown>")
            ));
        }
        // Capability coverage: every point the target policy can demand
        // must have been recorded. The error names the missing capability
        // (and what the trace does have) so the fix — re-record under the
        // target policy — is obvious.
        let required = cfg.replay_points();
        if let Some(missing) = required.iter().find(|k| m.point_index(**k).is_none()) {
            let policy = cfg.dtm.as_ref().map_or("none", |d| d.name());
            return fail(format!(
                "DTM policy {policy} needs the {} operating point, but the trace \
                 only records [{}] (version {}); re-record under the target policy \
                 to capture it",
                missing.label(),
                m.capability_id(),
                m.version
            ));
        }
        if trace.intervals.is_empty() {
            return fail("trace records no evaluation intervals".to_string());
        }
        if trace.pilot.len() != m.shape.flat_len() {
            return fail("trace pilot record mismatches its declared shape".to_string());
        }
        Ok(())
    }

    /// The replay pipeline: replay-pilot → warm start → replay-loop.
    ///
    /// The warm start is the regular [`WarmStartStage`] — the replayed
    /// nominal power is bit-identical to the live pilot's, so live and
    /// replayed cells share [`WarmStartCache`] entries.
    pub fn stages(
        trace: Arc<ActivityTrace>,
        cache: Option<Arc<WarmStartCache>>,
    ) -> Vec<Box<dyn Stage>> {
        let warm = match cache {
            Some(c) => WarmStartStage::with_cache(c),
            None => WarmStartStage::new(),
        };
        vec![
            Box::new(ReplayPilotStage {
                trace: Arc::clone(&trace),
            }),
            Box::new(warm),
            Box::new(ReplayLoopStage { trace }),
        ]
    }
}

/// Re-derives the nominal power profile from the recorded pilot activity
/// (bit-identical to [`PilotStage`](super::PilotStage) on the same run).
#[derive(Debug)]
pub struct ReplayPilotStage {
    trace: Arc<ActivityTrace>,
}

impl ReplayPilotStage {
    /// A replay pilot over `trace`.
    pub fn new(trace: Arc<ActivityTrace>) -> Self {
        ReplayPilotStage { trace }
    }
}

impl Stage for ReplayPilotStage {
    fn name(&self) -> &'static str {
        "replay-pilot"
    }

    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
        let pilot_act = unflatten_for(cx.machine, &self.trace.pilot)?;
        let mut nominal = cx.model.dynamic_power(&pilot_act);
        for (n, i) in nominal.iter_mut().zip(&cx.idle) {
            *n += i;
        }
        cx.model.set_nominal_dynamic(nominal.clone());
        cx.nominal = Some(nominal);
        Ok(())
    }
}

/// Feeds recorded per-interval activity through the same power → thermal
/// → DTM arithmetic as the live
/// [`IntervalLoopStage`](super::IntervalLoopStage), skipping the core
/// simulator entirely. Each interval replays the recorded operating point
/// selected by the policy's action for that interval (power-level actions
/// ride the nominal point).
#[derive(Debug)]
pub struct ReplayLoopStage {
    trace: Arc<ActivityTrace>,
}

impl Stage for ReplayLoopStage {
    fn name(&self) -> &'static str {
        "replay-loop"
    }

    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
        let trace = Arc::clone(&self.trace);
        let mut action = DtmAction::Nominal;
        for rec in &trace.intervals {
            let point = select_point(&trace.meta, rec, action)?;
            apply_power_action(cx, action);
            let act = unflatten_for(cx.machine, &point.counters)?;
            let gated: Vec<BlockId> = rec.gated_bank.map(BlockId::TcBank).into_iter().collect();
            let temps_now = cx.thermal.block_temperatures().to_vec();
            let mut power = cx.model.total_power(&act, &temps_now, &gated);
            for (p, i) in power.iter_mut().zip(&cx.idle) {
                *p += i;
            }
            for g in &gated {
                power[cx.machine.index_of(*g)] = 0.0;
            }
            // Same wall-time accounting as the live loop: dt derives from
            // the selected point's cycle count at the model's effective
            // frequency, so power-level throttling and DVFS stretch
            // replayed intervals exactly as they stretch live ones.
            let dt = act.cycles as f64 / cx.model.effective_frequency_hz();
            cx.power_time_sum += power.iter().sum::<f64>() * dt;
            cx.time_sum += dt;
            cx.thermal.advance(&power, dt / 2.0);
            cx.tracker.record(cx.thermal.block_temperatures(), dt / 2.0);
            cx.thermal.advance(&power, dt / 2.0);
            cx.tracker.record(cx.thermal.block_temperatures(), dt / 2.0);
            cx.tracker.end_interval();
            // The live loop's bank rebalance/hop are core-side effects
            // already baked into the recorded activity; only the DTM
            // decision is re-taken (its trajectory is part of what a
            // replayed sweep varies). It runs on the final interval too,
            // exactly like the live loop, so trigger counts match.
            if let Some(ctrl) = &mut cx.dtm {
                action = ctrl.decide(cx.thermal.block_temperatures());
            }
            if point.done {
                break;
            }
        }
        cx.replay_finals = Some(trace.finals);
        Ok(())
    }
}

/// Opaque fingerprint of the full core-side processor configuration,
/// hashed over its canonical debug rendering (every field participates:
/// frontend mode, penalties, widths, cache and mapping configs, …).
/// Deliberately conservative — any core-side difference, even one that
/// might happen to be activity-neutral, forces a re-record rather than an
/// unproven replay. Stable within a toolchain; across toolchains a
/// mismatch merely falls back to live simulation.
fn processor_fingerprint(cfg: &ExperimentConfig) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}", cfg.processor).hash(&mut h);
    h.finish()
}

/// Reconstructs counters for the machine shape, surfacing layout
/// mismatches as [`EngineError::ReplayIncompatible`].
pub(super) fn unflatten_for(
    machine: Machine,
    flat: &[u64],
) -> Result<ActivityCounters, EngineError> {
    tap::unflatten(machine.partitions, machine.backends, machine.tc_banks, flat)
        .map_err(EngineError::ReplayIncompatible)
}

/// The operating point a DTM action runs the core at. Power-level actions
/// (nominal, emergency throttle) leave the pipeline on the nominal stream;
/// the core-perturbing actions map to their recorded variant points.
pub(super) fn point_key_of(action: DtmAction) -> PointKey {
    match action {
        DtmAction::Nominal | DtmAction::Throttle(_) => PointKey::Nominal,
        DtmAction::Dvfs { f_scale, v_scale } => PointKey::dvfs(f_scale, v_scale),
        DtmAction::FetchGate { open, period } => PointKey::FetchGate { open, period },
        DtmAction::MigrateTo(p) => PointKey::MigrateTo(p as u32),
    }
}

/// Selects the recorded point `action` demands from `rec` — the runtime
/// backstop behind [`ReplayBackend::validate`]'s coverage check (a
/// divergent policy can only demand points validation already proved
/// recorded, so a failure here means the trace and policy disagree about
/// the policy's action set).
///
/// # Errors
///
/// Returns [`EngineError::ReplayIncompatible`] naming the unrecorded
/// point.
pub(super) fn select_point<'t>(
    meta: &TraceMeta,
    rec: &'t IntervalRecord,
    action: DtmAction,
) -> Result<&'t PointRecord, EngineError> {
    let key = point_key_of(action);
    match meta.point_index(key) {
        Some(idx) => Ok(&rec.points[idx]),
        None => Err(EngineError::ReplayIncompatible(format!(
            "DTM action {action:?} demands the unrecorded operating point {} \
             (trace records [{}])",
            key.label(),
            meta.capability_id()
        ))),
    }
}

/// Applies the power-model half of a DTM action for the coming replayed
/// interval, releasing whatever the previous interval engaged — exactly
/// the live loop's operating-point translation. The core half of the
/// action is honored by [`select_point`] choosing the matching recorded
/// activity, so no simulator is needed.
pub(super) fn apply_power_action(cx: &mut EngineCx<'_>, action: DtmAction) {
    cx.model.set_operating_point(match action {
        DtmAction::Nominal | DtmAction::FetchGate { .. } | DtmAction::MigrateTo(_) => {
            OperatingPoint::nominal()
        }
        DtmAction::Throttle(factor) => OperatingPoint::scaled(factor, 1.0),
        DtmAction::Dvfs { f_scale, v_scale } => OperatingPoint::scaled(f_scale, v_scale),
    });
}
